#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Usage::

    python tools/check_links.py README.md EXPERIMENTS.md docs/

Directories are searched recursively for ``*.md``.  For every inline
markdown link or image, targets that are not external (``http://``,
``https://``, ``mailto:``) are resolved relative to the containing file
and must exist; ``#fragment`` suffixes on markdown targets (and bare
``#fragment`` self-links) must match a GitHub-style heading anchor in the
target document.  Anchor matching covers the full GitHub repertoire:
repeated headings get ``-1``/``-2``… suffixes exactly as GitHub numbers
them, and explicit ``<a id="...">`` / ``<a name="...">`` HTML anchors are
honoured verbatim.  Links inside fenced code blocks are ignored.  Exit code
is 0 when every link resolves, 1 otherwise (one ``file:line: message``
diagnostic per broken link).  Stdlib only, so CI can run it anywhere.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()\s]*\))?)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)\s*=\s*[\"']([^\"']+)[\"']", re.IGNORECASE)
EXTERNAL = ("http://", "https://", "mailto:")


def github_anchor(heading: str) -> str:
    """GitHub's heading→anchor slug: strip punctuation, spaces become dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def iter_markdown(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def document_lines(path: Path) -> list[tuple[int, str]]:
    """(line_number, text) pairs with fenced code blocks blanked out."""
    lines: list[tuple[int, str]] = []
    in_fence = False
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        if text.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append((number, text))
    return lines


def anchors_of(path: Path) -> set[str]:
    """Every anchor the rendered document exposes.

    Heading anchors follow GitHub's de-duplication: the first ``## Setup``
    is ``#setup``, the second ``#setup-1``, and so on in document order.
    Explicit ``<a id="...">`` / ``<a name="...">`` anchors are taken
    verbatim (GitHub does not slug them).
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for _, text in document_lines(path):
        if match := HEADING.match(text):
            slug = github_anchor(match.group(1))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        anchors.update(HTML_ANCHOR.findall(text))
    return anchors


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for number, text in document_lines(path):
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            base, _, fragment = target.partition("#")
            resolved = path if not base else (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{number}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                anchors = anchors_of(resolved)
                # Heading links arrive pre-slugged by authors with varying
                # care, so normalise; explicit HTML anchors match verbatim.
                if fragment not in anchors and github_anchor(fragment) not in anchors:
                    problems.append(
                        f"{path}:{number}: missing anchor -> {target}"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+", help="markdown files or directories to check"
    )
    args = parser.parse_args(argv)

    files = iter_markdown(args.paths)
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print("no such file:", ", ".join(missing), file=sys.stderr)
        return 1
    problems = [problem for path in files for problem in check_file(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} files: {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
