"""Synthetic dataset tests: determinism, structure, splits, batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import (
    Dataset,
    SyntheticCIFAR10,
    batch_iterator,
    train_adversary_split,
)


class TestDataset:
    def test_length_and_types(self):
        d = Dataset(np.zeros((5, 3, 32, 32)), np.arange(5))
        assert len(d) == 5
        assert d.images.dtype == np.float32
        assert d.labels.dtype == np.int64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((5, 3, 32, 32)), np.arange(4))

    def test_subset(self):
        d = Dataset(np.arange(10, dtype=np.float32).reshape(10, 1), np.arange(10))
        sub = d.subset(np.array([2, 4]))
        np.testing.assert_allclose(sub.labels, [2, 4])

    def test_split_is_partition(self):
        d = Dataset(np.zeros((100, 1)), np.arange(100))
        a, b = d.split(0.9, seed=1)
        assert len(a) == 90 and len(b) == 10
        assert set(a.labels) | set(b.labels) == set(range(100))
        assert not (set(a.labels) & set(b.labels))

    def test_split_deterministic(self):
        d = Dataset(np.zeros((50, 1)), np.arange(50))
        a1, _ = d.split(0.5, seed=3)
        a2, _ = d.split(0.5, seed=3)
        np.testing.assert_array_equal(a1.labels, a2.labels)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_split_fraction_validated(self, bad):
        d = Dataset(np.zeros((10, 1)), np.arange(10))
        with pytest.raises(ValueError):
            d.split(bad)


class TestSyntheticCIFAR10:
    def test_shapes_and_range(self):
        data = SyntheticCIFAR10().sample(32, seed=0)
        assert data.images.shape == (32, 3, 32, 32)
        assert data.images.min() >= 0.0
        assert data.images.max() <= 1.0
        assert set(np.unique(data.labels)).issubset(set(range(10)))

    def test_deterministic_given_seeds(self):
        a = SyntheticCIFAR10(seed=5).sample(16, seed=2)
        b = SyntheticCIFAR10(seed=5).sample(16, seed=2)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_sample_seeds_differ(self):
        gen = SyntheticCIFAR10()
        a = gen.sample(16, seed=1)
        b = gen.sample(16, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_classes_are_separable_by_template_matching(self):
        """A nearest-template classifier must beat chance by a wide margin —
        the dataset carries class structure a CNN can learn."""
        gen = SyntheticCIFAR10(noise=0.15)
        data = gen.sample(200, seed=3)
        templates = 0.5 + 0.5 * np.clip(gen.templates, -1.5, 1.5) / 1.5
        flat_t = templates.reshape(10, -1)
        flat_x = data.images.reshape(len(data), -1)
        predictions = np.argmin(
            ((flat_x[:, None, :] - flat_t[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        accuracy = (predictions == data.labels).mean()
        assert accuracy > 0.5

    def test_noise_makes_task_harder(self):
        clean = SyntheticCIFAR10(noise=0.01).sample(64, seed=1)
        noisy = SyntheticCIFAR10(noise=0.8).sample(64, seed=1)
        # Per-class variance grows with noise.
        assert noisy.images.std() >= clean.images.std() * 0.9

    def test_standard_splits_sizes(self):
        train, test = SyntheticCIFAR10().standard_splits(train_size=100, test_size=30)
        assert len(train) == 100 and len(test) == 30

    def test_count_validated(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR10().sample(0, seed=0)


class TestSplitsAndBatching:
    def test_victim_adversary_split_is_90_10(self):
        train = SyntheticCIFAR10().sample(200, seed=0)
        victim, adversary = train_adversary_split(train)
        assert len(victim) == 180
        assert len(adversary) == 20

    def test_batch_iterator_covers_everything(self):
        d = Dataset(np.zeros((25, 1)), np.arange(25))
        seen = []
        for _, labels in batch_iterator(d, 8, shuffle=False):
            seen.extend(labels.tolist())
        assert sorted(seen) == list(range(25))

    def test_batch_iterator_drop_last(self):
        d = Dataset(np.zeros((25, 1)), np.arange(25))
        batches = list(batch_iterator(d, 8, drop_last=True))
        assert len(batches) == 3
        assert all(len(b[1]) == 8 for b in batches)

    def test_batch_iterator_shuffles_deterministically(self):
        d = Dataset(np.zeros((25, 1)), np.arange(25))
        order1 = [l for _, ls in batch_iterator(d, 8, seed=4) for l in ls]
        order2 = [l for _, ls in batch_iterator(d, 8, seed=4) for l in ls]
        order3 = [l for _, ls in batch_iterator(d, 8, seed=5) for l in ls]
        assert order1 == order2
        assert order1 != order3

    def test_batch_size_validated(self):
        d = Dataset(np.zeros((5, 1)), np.arange(5))
        with pytest.raises(ValueError):
            list(batch_iterator(d, 0))

    @given(st.integers(1, 40), st.integers(1, 15))
    @settings(max_examples=20, deadline=None)
    def test_batch_sizes_property(self, n, batch_size):
        d = Dataset(np.zeros((n, 1)), np.arange(n))
        total = sum(len(labels) for _, labels in batch_iterator(d, batch_size))
        assert total == n
