"""Optimizer and LR-schedule tests, including the freeze-mask mechanism
the SEAL substitute attack depends on."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.optim import Adam, CosineLR, SGD, StepLR
from repro.nn.tensor import Tensor


def quadratic_step(optimizer, param, target):
    """One gradient step on 0.5*||p - target||^2."""
    optimizer.zero_grad()
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_plain_descent(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.0)
        quadratic_step(opt, p, np.array([0.0]))
        np.testing.assert_allclose(p.data, [9.0])

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = SGD([p], lr=0.2, momentum=0.9)
        target = np.array([1.0, 2.0])
        for _ in range(200):
            quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.array([10.0]), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(20):
                quadratic_step(opt, p, np.array([0.0]))
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_pulls_to_zero(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert float(p.data[0]) < 1.0

    def test_nesterov_differs_from_plain(self):
        def run(nesterov):
            p = Tensor(np.array([10.0]), requires_grad=True)
            opt = SGD([p], lr=0.05, momentum=0.9, nesterov=nesterov)
            for _ in range(5):
                quadratic_step(opt, p, np.array([0.0]))
            return float(p.data[0])

        assert run(True) != run(False)

    def test_skips_parameters_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: must be a no-op
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(300):
            quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_size_is_about_lr(self):
        # With bias correction, |first update| ~ lr regardless of grad scale.
        for scale in (1e-3, 1.0, 1e3):
            p = Tensor(np.array([0.0]), requires_grad=True)
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            assert abs(float(p.data[0])) == pytest.approx(0.01, rel=1e-3)

    def test_weight_decay(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert float(p.data[0]) < 1.0


class TestFreezeMasks:
    def test_frozen_entries_never_move(self):
        layer = Linear(4, 2)
        frozen = layer.weight.data.copy()
        mask = np.zeros_like(frozen, dtype=bool)
        mask[:, :2] = True  # freeze the first two input columns
        opt = Adam(list(layer.parameters()), lr=0.1)
        opt.set_freeze_mask(layer.weight, mask)
        for _ in range(10):
            opt.zero_grad()
            layer.weight.grad = np.ones_like(frozen)
            layer.bias.grad = np.ones_like(layer.bias.data)
            opt.step()
        np.testing.assert_allclose(layer.weight.data[:, :2], frozen[:, :2])
        assert not np.allclose(layer.weight.data[:, 2:], frozen[:, 2:])

    def test_freeze_mask_with_sgd_momentum(self):
        p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.set_freeze_mask(p, np.array([True, False]))
        for _ in range(5):
            p.grad = np.array([1.0, 1.0])
            opt.step()
        assert float(p.data[0]) == 1.0
        assert float(p.data[1]) < 1.0

    def test_mask_shape_validated(self):
        p = Tensor(np.zeros((2, 2)), requires_grad=True)
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError, match="mask shape"):
            opt.set_freeze_mask(p, np.zeros(3, dtype=bool))


class TestValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)

    def test_non_grad_params_filtered(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=False)
        opt = SGD([a, b], lr=0.1)
        assert len(opt.params) == 1


class TestSchedules:
    def test_step_lr(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_lr_endpoints(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_lr_monotone_decrease(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_epochs=8)
        values = []
        for _ in range(8):
            sched.step()
            values.append(opt.lr)
        assert values == sorted(values, reverse=True)

    def test_schedule_validation(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, total_epochs=0)
