"""Operator tests: conv/pool/batchnorm against naive references + gradcheck."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import numeric_gradient


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Direct-loop convolution reference."""
    n, c_in, h, w_in = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = (x.shape[2] - k) // stride + 1
    w_out = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for ni in range(n):
        for co in range(c_out):
            for i in range(h_out):
                for j in range(w_out):
                    patch = x[ni, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestIm2col:
    def test_shapes(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float64).reshape(2, 3, 5, 5)
        cols = F.im2col(x, kernel=3, stride=1, padding=0)
        assert cols.shape == (2 * 3 * 3, 3 * 9)

    def test_content_matches_receptive_fields(self):
        x = np.arange(1 * 1 * 4 * 4, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = F.im2col(x, kernel=2, stride=2, padding=0)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[3], [10, 11, 14, 15])

    def test_col2im_inverts_for_nonoverlapping(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        cols = F.im2col(x, kernel=2, stride=2, padding=0)
        restored = F.col2im(cols, x.shape, kernel=2, stride=2, padding=0)
        np.testing.assert_allclose(restored, x)

    def test_col2im_accumulates_overlaps(self):
        x = np.ones((1, 1, 3, 3))
        cols = F.im2col(x, kernel=2, stride=1, padding=0)
        restored = F.col2im(cols, x.shape, kernel=2, stride=1, padding=0)
        # The centre participates in all four 2x2 windows.
        assert restored[0, 0, 1, 1] == 4.0
        assert restored[0, 0, 0, 0] == 1.0


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(
            out.data, naive_conv2d(x, w, b, stride, padding), atol=1e-10
        )

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        tx = Tensor(x.copy(), requires_grad=True)
        tw = Tensor(w.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        F.conv2d(tx, tw, tb, stride=1, padding=1).sum().backward()

        gx = numeric_gradient(
            lambda v: float(F.conv2d(Tensor(v), Tensor(w), Tensor(b), 1, 1).sum().data),
            x.copy(),
        )
        gw = numeric_gradient(
            lambda v: float(F.conv2d(Tensor(x), Tensor(v), Tensor(b), 1, 1).sum().data),
            w.copy(),
        )
        gb = numeric_gradient(
            lambda v: float(F.conv2d(Tensor(x), Tensor(w), Tensor(v), 1, 1).sum().data),
            b.copy(),
        )
        np.testing.assert_allclose(tx.grad, gx, atol=1e-5)
        np.testing.assert_allclose(tw.grad, gw, atol=1e-5)
        np.testing.assert_allclose(tb.grad, gb, atol=1e-5)

    def test_no_bias(self):
        rng = np.random.default_rng(2)
        x, w = rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(2, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, 1, 1)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, None, 1, 1), atol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(ValueError, match="square"):
            F.conv2d(
                Tensor(np.zeros((1, 1, 4, 4))),
                Tensor(np.zeros((1, 1, 2, 3))),
            )

    def test_kernel_row_independence(self):
        """Paper Figure 2: input channel j only meets kernel row j.

        Zeroing kernel row j must make output independent of channel j —
        the structural fact the SE scheme's security argument rests on.
        """
        rng = np.random.default_rng(3)
        w = rng.normal(size=(4, 3, 3, 3))
        w[:, 1] = 0.0  # remove kernel row 1
        x1 = rng.normal(size=(1, 3, 5, 5))
        x2 = x1.copy()
        x2[:, 1] = rng.normal(size=(1, 5, 5))  # change only channel 1
        out1 = F.conv2d(Tensor(x1), Tensor(w), None, 1, 1)
        out2 = F.conv2d(Tensor(x2), Tensor(w), None, 1, 1)
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-12)

    def test_output_size_helper(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 2, 2, 0) == 16
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_max(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(t.grad[0, 0], expected)

    def test_max_pool_strided(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 6, 6))
        out = F.max_pool2d(Tensor(x), kernel=3, stride=3)
        assert out.shape == (2, 3, 2, 2)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient_uniform(self):
        t = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, [[1.5, 5.5]])

    def test_pooling_is_channelwise(self):
        """Pooling never mixes channels — why SEAL channel masks propagate
        through POOL layers unchanged."""
        rng = np.random.default_rng(5)
        x1 = rng.normal(size=(1, 3, 4, 4))
        x2 = x1.copy()
        x2[:, 2] = rng.normal(size=(1, 4, 4))
        p1 = F.max_pool2d(Tensor(x1), 2).data
        p2 = F.max_pool2d(Tensor(x2), 2).data
        np.testing.assert_allclose(p1[:, :2], p2[:, :2])
        assert not np.allclose(p1[:, 2], p2[:, 2])


class TestBatchNorm:
    def test_training_normalizes(self):
        rng = np.random.default_rng(6)
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm2d(Tensor(x), gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self):
        rng = np.random.default_rng(7)
        x = rng.normal(2.0, 1.0, size=(16, 2, 4, 4))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm2d(
            Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv,
            training=True, momentum=1.0,
        )
        np.testing.assert_allclose(rm, x.mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self):
        x = np.full((2, 1, 2, 2), 10.0)
        rm, rv = np.array([10.0]), np.array([4.0])
        out = F.batch_norm2d(
            Tensor(x), Tensor(np.ones(1)), Tensor(np.zeros(1)), rm, rv,
            training=False,
        )
        np.testing.assert_allclose(out.data, 0.0, atol=1e-6)

    def test_training_gradients_match_numeric(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(4, 2, 3, 3))
        gamma = rng.normal(size=2)
        beta = rng.normal(size=2)

        def forward(xv, gv, bv):
            return F.batch_norm2d(
                Tensor(xv), Tensor(gv), Tensor(bv),
                np.zeros(2), np.ones(2), training=True,
            )

        tx = Tensor(x.copy(), requires_grad=True)
        tg = Tensor(gamma.copy(), requires_grad=True)
        tb = Tensor(beta.copy(), requires_grad=True)
        out = F.batch_norm2d(
            tx, tg, tb, np.zeros(2), np.ones(2), training=True
        )
        # Weighted sum so gradients are non-trivial.
        weights = rng.normal(size=out.shape)
        (out * Tensor(weights)).sum().backward()

        gx = numeric_gradient(
            lambda v: float((forward(v, gamma, beta).data * weights).sum()), x.copy()
        )
        gg = numeric_gradient(
            lambda v: float((forward(x, v, beta).data * weights).sum()), gamma.copy()
        )
        gb = numeric_gradient(
            lambda v: float((forward(x, gamma, v).data * weights).sum()), beta.copy()
        )
        np.testing.assert_allclose(tx.grad, gx, atol=1e-4)
        np.testing.assert_allclose(tg.grad, gg, atol=1e-5)
        np.testing.assert_allclose(tb.grad, gb, atol=1e-5)


class TestSoftmaxAndLoss:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(5, 10))
        probs = F.softmax(Tensor(logits)).data
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)
        assert (probs >= 0).all()

    def test_log_softmax_stability(self):
        logits = np.array([[1000.0, 1000.0, -1000.0]])
        out = F.log_softmax(Tensor(logits)).data
        assert np.isfinite(out).all()

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        loss = F.cross_entropy(Tensor(logits), np.array([0]))
        assert loss.item() == pytest.approx(-np.log(0.7), rel=1e-6)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(10)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        t = Tensor(logits, requires_grad=True)
        F.cross_entropy(t, labels).backward()
        probs = F.softmax(Tensor(logits)).data
        one_hot = np.zeros((4, 5))
        one_hot[np.arange(4), labels] = 1.0
        np.testing.assert_allclose(t.grad, (probs - one_hot) / 4, atol=1e-10)

    def test_cross_entropy_one_hot_targets(self):
        logits = np.random.default_rng(11).normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        one_hot = np.eye(4)[labels]
        a = F.cross_entropy(Tensor(logits), labels).item()
        b = F.cross_entropy(Tensor(logits), one_hot).item()
        assert a == pytest.approx(b)

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = np.array([[20.0, -20.0]])
        plain = F.cross_entropy(Tensor(logits), np.array([0])).item()
        smoothed = F.cross_entropy(
            Tensor(logits), np.array([0]), label_smoothing=0.2
        ).item()
        assert smoothed > plain
