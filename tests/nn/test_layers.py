"""Module-system tests: parameter registration, modes, containers, blocks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    set_init_rng,
    trace_dataflow,
)
from repro.nn.tensor import Tensor


def small_input(channels=3, size=8, batch=2):
    return Tensor(np.random.default_rng(0).normal(size=(batch, channels, size, size)))


class TestParameterRegistration:
    def test_conv_parameters(self):
        conv = Conv2d(3, 8, 3, bias=True)
        names = dict(conv.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert names["weight"].shape == (8, 3, 3, 3)

    def test_conv_no_bias(self):
        conv = Conv2d(3, 8, 3, bias=False)
        assert {n for n, _ in conv.named_parameters()} == {"weight"}

    def test_sequential_nested_names(self):
        model = Sequential(Conv2d(1, 2, 3), Sequential(Linear(4, 5)))
        names = {n for n, _ in model.named_parameters()}
        assert "layers.0.weight" in names
        assert "layers.1.layers.0.weight" in names

    def test_num_parameters(self):
        layer = Linear(10, 4)
        assert layer.num_parameters() == 10 * 4 + 4

    def test_modules_iteration_includes_nested(self):
        block = BasicBlock(4, 8, stride=2)
        kinds = [type(m).__name__ for m in block.modules()]
        assert "Conv2d" in kinds and "Sequential" in kinds

    def test_named_modules_paths(self):
        block = BasicBlock(4, 4)
        names = dict(block.named_modules())
        assert "conv1" in names
        assert "" in names  # the root


class TestTrainEvalMode:
    def test_mode_propagates(self):
        model = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_batchnorm_behaviour_differs_by_mode(self):
        bn = BatchNorm2d(2)
        x = small_input(channels=2)
        bn.train()
        out_train = bn(x).data.copy()
        bn.eval()
        out_eval = bn(x).data.copy()
        assert not np.allclose(out_train, out_eval)

    def test_zero_grad_clears(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in layer.parameters())
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestShapes:
    def test_conv_shape(self):
        conv = Conv2d(3, 16, 3, stride=2, padding=1)
        out = conv(small_input())
        assert out.shape == (2, 16, 4, 4)

    def test_linear_shape(self):
        assert Linear(8, 3)(Tensor(np.ones((5, 8)))).shape == (5, 3)

    def test_maxpool_shape(self):
        assert MaxPool2d(2)(small_input()).shape == (2, 3, 4, 4)

    def test_gap_shape(self):
        assert GlobalAvgPool2d()(small_input()).shape == (2, 3)

    def test_flatten_shape(self):
        assert Flatten()(small_input()).shape == (2, 3 * 64)

    def test_identity_passthrough(self):
        x = small_input()
        assert Identity()(x).data is x.data

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_allclose(out.data, [[0.0, 2.0]])

    def test_shape_recording(self):
        conv = Conv2d(3, 4, 3, padding=1)
        conv(small_input())
        assert conv.last_input_shape == (2, 3, 8, 8)
        assert conv.last_output_shape == (2, 4, 8, 8)


class TestSequential:
    def test_order_and_len(self):
        model = Sequential(Conv2d(1, 2, 3), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_append(self):
        model = Sequential()
        model.append(Linear(2, 2))
        assert len(model) == 1

    def test_iteration(self):
        model = Sequential(ReLU(), ReLU())
        assert sum(1 for _ in model) == 2


class TestBasicBlock:
    def test_identity_shortcut_when_shapes_match(self):
        block = BasicBlock(8, 8, stride=1)
        assert isinstance(block.shortcut, Identity)

    def test_projection_shortcut_on_stride(self):
        block = BasicBlock(8, 16, stride=2)
        assert isinstance(block.shortcut, Sequential)

    def test_output_shape(self):
        block = BasicBlock(3, 6, stride=2)
        assert block(small_input()).shape == (2, 6, 4, 4)

    def test_residual_add_is_traced(self):
        block = BasicBlock(4, 4)
        x = small_input(channels=4)
        with trace_dataflow() as log:
            block(x)
        adds = [r for r in log if r[0] == "residual_add"]
        assert len(adds) == 1

    def test_gradients_flow_through_both_branches(self):
        block = BasicBlock(4, 8, stride=2)
        x = Tensor(
            np.random.default_rng(1).normal(size=(1, 4, 8, 8)), requires_grad=True
        )
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())


class TestStateDict:
    def test_roundtrip(self):
        set_init_rng(0)
        a = Sequential(Conv2d(1, 2, 3, bias=False), BatchNorm2d(2), Linear(2, 2))
        set_init_rng(99)
        b = Sequential(Conv2d(1, 2, 3, bias=False), BatchNorm2d(2), Linear(2, 2))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_includes_running_stats(self):
        bn = BatchNorm2d(3)
        bn.running_mean[:] = 7.0
        state = Sequential(bn).state_dict()
        assert any("running_mean" in k for k in state)

    def test_shape_mismatch_raises(self):
        a = Linear(3, 2)
        state = {"weight": np.zeros((5, 5))}
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"][...] = 99.0
        assert not np.allclose(layer.weight.data, 99.0)


class TestTracing:
    def test_trace_collects_leaf_calls(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), ReLU(), MaxPool2d(2))
        with trace_dataflow() as log:
            model(small_input())
        leaf_types = [type(r[0]).__name__ for r in log if r[0] != "residual_add"]
        assert "Conv2d" in leaf_types and "ReLU" in leaf_types

    def test_trace_restores_previous_state(self):
        with trace_dataflow():
            pass
        # No crash and no lingering trace: calling a module must not append.
        conv = Conv2d(1, 1, 1)
        conv(Tensor(np.zeros((1, 1, 2, 2))))  # would raise if _TRACE_LOG stale

    def test_nested_trace(self):
        conv = Conv2d(1, 1, 1)
        with trace_dataflow() as outer:
            conv(Tensor(np.zeros((1, 1, 2, 2))))
            with trace_dataflow() as inner:
                conv(Tensor(np.zeros((1, 1, 2, 2))))
            assert len(inner) == 1
        assert len(outer) == 1

    def test_kernel_matrix_view(self):
        conv = Conv2d(3, 5, 3)
        km = conv.kernel_matrix()
        assert km.shape == (3, 5, 3, 3)
        np.testing.assert_allclose(km[1, 2], conv.weight.data[2, 1])


class TestModuleBase:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))
