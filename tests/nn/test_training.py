"""Training-loop tests: a small CNN must actually learn the synthetic task."""

import numpy as np
import pytest

from repro.nn.data import SyntheticCIFAR10
from repro.nn.layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    set_init_rng,
)
from repro.nn.optim import Adam
from repro.nn.training import evaluate, fit, predict_labels, predict_logits, train_epoch


def tiny_cnn(num_classes=10):
    set_init_rng(0)
    return Sequential(
        Conv2d(3, 8, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * 8 * 8, num_classes),
    )


@pytest.fixture(scope="module")
def small_task():
    gen = SyntheticCIFAR10(noise=0.15)
    return gen.sample(256, seed=1), gen.sample(128, seed=2)


class TestTraining:
    def test_loss_decreases(self, small_task):
        train, _ = small_task
        model = tiny_cnn()
        opt = Adam(list(model.parameters()), lr=3e-3)
        first, _ = train_epoch(model, train, opt, batch_size=32, seed=0)
        losses = [first]
        for epoch in range(4):
            loss, _ = train_epoch(model, train, opt, batch_size=32, seed=epoch + 1)
            losses.append(loss)
        assert losses[-1] < losses[0]

    def test_model_learns_above_chance(self, small_task):
        train, test = small_task
        model = tiny_cnn()
        opt = Adam(list(model.parameters()), lr=3e-3)
        report = fit(model, train, opt, epochs=8, eval_set=test, batch_size=32)
        assert report.final_accuracy > 0.3  # chance is 0.10

    def test_fit_records_history(self, small_task):
        train, test = small_task
        model = tiny_cnn()
        opt = Adam(list(model.parameters()), lr=1e-3)
        report = fit(model, train, opt, epochs=3, eval_set=test, batch_size=64)
        assert len(report.train_loss) == 3
        assert len(report.eval_accuracy) == 3

    def test_fit_without_eval_set(self, small_task):
        train, _ = small_task
        model = tiny_cnn()
        opt = Adam(list(model.parameters()), lr=1e-3)
        report = fit(model, train, opt, epochs=1)
        assert report.eval_accuracy == []
        assert np.isnan(report.final_accuracy)

    def test_fit_epochs_validated(self, small_task):
        train, _ = small_task
        model = tiny_cnn()
        opt = Adam(list(model.parameters()), lr=1e-3)
        with pytest.raises(ValueError):
            fit(model, train, opt, epochs=0)


class TestPrediction:
    def test_predict_logits_shape(self, small_task):
        _, test = small_task
        logits = predict_logits(tiny_cnn(), test.images)
        assert logits.shape == (len(test), 10)

    def test_predict_labels_range(self, small_task):
        _, test = small_task
        labels = predict_labels(tiny_cnn(), test.images)
        assert labels.min() >= 0 and labels.max() < 10

    def test_prediction_batching_is_consistent(self, small_task):
        _, test = small_task
        model = tiny_cnn()
        a = predict_logits(model, test.images, batch_size=16)
        b = predict_logits(model, test.images, batch_size=128)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_evaluate_bounds(self, small_task):
        _, test = small_task
        accuracy = evaluate(tiny_cnn(), test)
        assert 0.0 <= accuracy <= 1.0

    def test_prediction_leaves_no_graph(self, small_task):
        _, test = small_task
        model = tiny_cnn()
        predict_logits(model, test.images)
        # Inference ran under no_grad: parameters must have no grads.
        assert all(p.grad is None for p in model.parameters())
