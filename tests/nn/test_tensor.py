"""Autograd engine tests: op gradients checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.tensor import Tensor, no_grad, unbroadcast


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn(x)
        flat[index] = original - eps
        minus = fn(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, *shapes, seed=0, atol=1e-5):
    """Compare autograd gradients of ``op(*tensors).sum()`` to numeric."""
    rng = np.random.default_rng(seed)
    arrays_ = [rng.normal(size=shape) for shape in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays_]
    out = op(*tensors)
    out.sum().backward()
    for index, (tensor, array) in enumerate(zip(tensors, arrays_)):
        def scalar_fn(x, _index=index):
            args = [Tensor(a) for a in arrays_]
            args[_index] = Tensor(x)
            return float(op(*args).sum().data)

        numeric = numeric_gradient(scalar_fn, array.copy())
        assert tensor.grad is not None, f"operand {index} got no grad"
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_gradient(lambda a, b: a + b, (3, 4), (4,))

    def test_sub(self):
        check_gradient(lambda a, b: a - b, (2, 3), (2, 3))

    def test_mul(self):
        check_gradient(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast_scalar_shape(self):
        check_gradient(lambda a, b: a * b, (3, 4), (1,))

    def test_div(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 3))
        b = rng.uniform(1.0, 2.0, size=(3, 3))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b)
        np.testing.assert_allclose(tb.grad, -a / b**2)

    def test_pow(self):
        check_gradient(lambda a: (a * a + 1.5) ** 2.0, (4,))

    def test_neg(self):
        check_gradient(lambda a: -a, (5,))

    def test_exp(self):
        check_gradient(lambda a: a.exp(), (3, 3))

    def test_log(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 2.0, size=(4,))
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / x)

    def test_tanh(self):
        check_gradient(lambda a: a.tanh(), (3, 3))

    def test_relu_gradient_masks_negatives(self):
        t = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0, 1.0])

    def test_abs(self):
        t = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, 1.0])

    def test_sqrt(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.5, 2.0, size=(4,))
        t = Tensor(x, requires_grad=True)
        t.sqrt().sum().backward()
        np.testing.assert_allclose(t.grad, 0.5 / np.sqrt(x))


class TestMatmulAndShapes:
    def test_matmul(self):
        check_gradient(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_batched(self):
        check_gradient(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5), atol=1e-4)

    def test_reshape(self):
        check_gradient(lambda a: a.reshape(6), (2, 3))

    def test_reshape_minus_one(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        assert t.reshape(2, -1).shape == (2, 12)

    def test_transpose(self):
        check_gradient(lambda a: a.transpose(1, 0), (2, 3))

    def test_transpose_nd(self):
        check_gradient(lambda a: a.transpose(2, 0, 1), (2, 3, 4))

    def test_T_property(self):
        t = Tensor(np.ones((2, 5)))
        assert t.T.shape == (5, 2)

    def test_getitem(self):
        check_gradient(lambda a: a[1], (3, 4))

    def test_getitem_fancy(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        t[np.array([0, 0, 2]), np.array([1, 1, 3])].sum().backward()
        expected = np.zeros((3, 4))
        expected[0, 1] = 2.0  # repeated index accumulates
        expected[2, 3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_pad2d(self):
        check_gradient(lambda a: a.pad2d(1), (1, 2, 3, 3))

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t

    def test_concatenate(self):
        check_gradient(
            lambda a, b: Tensor.concatenate([a, b], axis=1), (2, 3), (2, 2)
        )


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda a: a.sum(axis=1), (3, 4))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda a: a.sum(axis=0, keepdims=True), (3, 4))

    def test_sum_multiple_axes(self):
        check_gradient(lambda a: a.sum(axis=(0, 2)), (2, 3, 4))

    def test_mean(self):
        check_gradient(lambda a: a.mean(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda a: a.mean(axis=(2, 3)), (2, 3, 2, 2))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])


class TestEngineMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()
        (t * 2).backward(np.ones(3))
        np.testing.assert_allclose(t.grad, [2.0, 2.0, 2.0])

    def test_gradient_accumulates_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0, 6.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_shared_subexpression(self):
        # y = x*x uses x twice; grad = 2x.
        t = Tensor(np.array([3.0]), requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3
        b = t * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_deep_chain_does_not_recurse(self):
        # Iterative topological sort must survive very deep graphs.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores(self):
        with no_grad():
            pass
        t = Tensor(np.ones(1), requires_grad=True)
        assert (t * 2).requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_scalar_conveniences(self):
        t = Tensor(np.array(4.0))
        assert t.item() == 4.0
        assert t.size == 1

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))

    def test_numpy_radd_uses_tensor_op(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = 1.0 + t
        assert isinstance(out, Tensor)


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_dimension(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 5.0))

    def test_size_one_dimension(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_add_gradient_shape(self, base):
        other_shape = base.shape[-1:]
        a = Tensor(base, requires_grad=True)
        b = Tensor(np.ones(other_shape), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape
