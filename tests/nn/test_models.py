"""Model-zoo tests: architectures match the paper's layer counts."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Linear
from repro.nn.models import (
    LayerGeometry,
    build_model,
    model_geometry,
    probe_shapes,
    resnet18,
    resnet34,
    vgg16,
)
from repro.nn.tensor import Tensor, no_grad


def count(model, cls):
    return sum(1 for m in model.modules() if isinstance(m, cls))


class TestArchitectures:
    def test_vgg16_layer_counts(self):
        # Paper: "13/16 for VGG-16" CONV layers, the rest FC.
        model = vgg16()
        assert count(model, Conv2d) == 13
        assert count(model, Linear) == 3

    def test_resnet18_weight_layer_count(self):
        # Paper: "17/18 for ResNet-18" — 17 CONV + 1 FC weight layers
        # (projection shortcuts add 3 more 1x1 convs, as in the original).
        model = resnet18()
        main_convs = [
            m for name, m in model.named_modules()
            if isinstance(m, Conv2d) and "shortcut" not in name
        ]
        assert len(main_convs) == 17
        assert count(model, Linear) == 1

    def test_resnet34_weight_layer_count(self):
        model = resnet34()
        main_convs = [
            m for name, m in model.named_modules()
            if isinstance(m, Conv2d) and "shortcut" not in name
        ]
        assert len(main_convs) == 33
        assert count(model, Linear) == 1

    @pytest.mark.parametrize("builder", [vgg16, resnet18, resnet34])
    def test_forward_shape(self, builder):
        model = builder(width_scale=0.125)
        with no_grad():
            out = model(Tensor(np.zeros((2, 3, 32, 32), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_width_scaling_shrinks_parameters(self):
        full = vgg16().num_parameters()
        half = vgg16(width_scale=0.5).num_parameters()
        assert half < full / 2

    def test_num_classes(self):
        model = resnet18(num_classes=7, width_scale=0.125)
        with no_grad():
            out = model(Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32)))
        assert out.shape == (1, 7)

    def test_vgg16_224_input(self):
        model = vgg16(width_scale=0.125, input_size=224)
        with no_grad():
            out = model(Tensor(np.zeros((1, 3, 224, 224), dtype=np.float32)))
        assert out.shape == (1, 10)

    def test_vgg16_rejects_bad_input_size(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            vgg16(input_size=100)

    def test_model_names(self):
        assert getattr(vgg16(), "name") == "VGG-16"
        assert "0.25" in getattr(resnet34(width_scale=0.25), "name")

    def test_build_model_aliases(self):
        assert getattr(build_model("VGG-16", width_scale=0.125), "name").startswith("VGG")
        assert getattr(build_model("resnet_18", width_scale=0.125), "name").startswith("ResNet-18")

    def test_build_model_unknown(self):
        with pytest.raises(KeyError):
            build_model("alexnet")


class TestGeometry:
    def test_vgg16_geometry_counts(self):
        geometry = model_geometry(vgg16())
        kinds = [g.kind for g in geometry]
        assert kinds.count("conv") == 13
        assert kinds.count("fc") == 3
        assert kinds.count("pool") == 5

    def test_vgg16_conv_channels_progression(self):
        geometry = [g for g in model_geometry(vgg16()) if g.kind == "conv"]
        assert geometry[0].in_channels == 3
        assert geometry[0].out_channels == 64
        assert geometry[-1].out_channels == 512

    def test_spatial_sizes_halve_at_pools(self):
        geometry = [g for g in model_geometry(vgg16()) if g.kind == "pool"]
        heights = [g.in_height for g in geometry]
        assert heights == [32, 16, 8, 4, 2]

    def test_macs_formula_conv(self):
        g = LayerGeometry(
            name="c", kind="conv", in_channels=3, out_channels=8, kernel_size=3,
            stride=1, in_height=8, in_width=8, out_height=8, out_width=8,
        )
        assert g.macs == 8 * 8 * 8 * 3 * 9

    def test_bytes_accounting(self):
        g = LayerGeometry(
            name="c", kind="conv", in_channels=4, out_channels=8, kernel_size=3,
            stride=1, in_height=8, in_width=8, out_height=8, out_width=8,
        )
        assert g.weight_bytes == 8 * 4 * 9 * 4
        assert g.input_bytes == 4 * 8 * 8 * 4
        assert g.output_bytes == 8 * 8 * 8 * 4

    def test_fc_geometry(self):
        geometry = [g for g in model_geometry(vgg16()) if g.kind == "fc"]
        assert geometry[-1].out_channels == 10
        assert geometry[0].weight_count == geometry[0].in_channels * geometry[0].out_channels

    def test_probe_shapes_populates(self):
        model = resnet18(width_scale=0.125)
        probe_shapes(model)
        assert model.stem_conv.last_output_shape is not None

    def test_resnet_geometry_includes_gap(self):
        geometry = model_geometry(resnet18(width_scale=0.125))
        pools = [g for g in geometry if g.kind == "pool"]
        assert len(pools) == 1
        assert pools[0].out_height == 1
