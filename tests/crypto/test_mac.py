"""GHASH / line-authentication tests (NIST SP 800-38D vectors + properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.mac import MAC_BYTES, LineAuthenticator, gf128_mul, ghash


class TestGf128:
    ONE = 1 << 127  # the element '1' in GCM's reflected convention

    def test_multiplicative_identity(self):
        for value in (self.ONE, 0x1234 << 100, (1 << 128) - 1):
            assert gf128_mul(value, self.ONE) == value
            assert gf128_mul(self.ONE, value) == value

    def test_zero_annihilates(self):
        assert gf128_mul(0, 12345) == 0
        assert gf128_mul(12345, 0) == 0

    @given(st.integers(0, 2**128 - 1), st.integers(0, 2**128 - 1))
    @settings(max_examples=20, deadline=None)
    def test_commutative(self, x, y):
        assert gf128_mul(x, y) == gf128_mul(y, x)

    @given(
        st.integers(0, 2**128 - 1),
        st.integers(0, 2**128 - 1),
        st.integers(0, 2**128 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_distributive(self, x, y, z):
        assert gf128_mul(x, y ^ z) == gf128_mul(x, y) ^ gf128_mul(x, z)


class TestGhashVectors:
    """NIST SP 800-38D (GCM) test case 2: the GHASH of one ciphertext block."""

    def test_gcm_test_case_2_ghash(self):
        key = bytes(16)
        h = AES(key).encrypt_block(bytes(16))
        assert h.hex() == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        ciphertext = bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        length_block = (128).to_bytes(16, "big")
        digest = ghash(h, ciphertext + length_block)
        # GHASH value from the GCM spec's test-case-2 intermediate results.
        assert digest.hex() == "f38cbb1ad69223dcc3457ae5b6b0f885"

    def test_ghash_pads_partial_blocks(self):
        h = AES(bytes(16)).encrypt_block(bytes(16))
        short = ghash(h, b"abc")
        padded = ghash(h, b"abc" + bytes(13))
        assert short == padded

    def test_ghash_key_length_validated(self):
        with pytest.raises(ValueError):
            ghash(bytes(8), b"data")


class TestLineAuthenticator:
    KEY = bytes(range(16))
    LINE = bytes(range(128))

    def test_tag_roundtrip(self):
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x1000, 7, self.LINE)
        assert len(tag) == MAC_BYTES
        assert auth.verify(0x1000, 7, self.LINE, tag)

    def test_detects_data_tampering(self):
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x1000, 7, self.LINE)
        tampered = bytes([self.LINE[0] ^ 1]) + self.LINE[1:]
        assert not auth.verify(0x1000, 7, tampered, tag)

    def test_detects_replay(self):
        # Old ciphertext + old tag replayed after a counter bump.
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x1000, 7, self.LINE)
        assert not auth.verify(0x1000, 8, self.LINE, tag)

    def test_detects_relocation(self):
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x1000, 7, self.LINE)
        assert not auth.verify(0x2000, 7, self.LINE, tag)

    def test_wrong_length_tag_rejected(self):
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x1000, 7, self.LINE)
        assert not auth.verify(0x1000, 7, self.LINE, tag[:4])

    def test_tag_size_configurable(self):
        auth = LineAuthenticator(self.KEY, tag_bytes=16)
        assert len(auth.tag(0, 0, self.LINE)) == 16

    def test_tag_size_validated(self):
        with pytest.raises(ValueError):
            LineAuthenticator(self.KEY, tag_bytes=2)

    @given(st.binary(min_size=16, max_size=64), st.integers(0, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, data, counter):
        auth = LineAuthenticator(self.KEY)
        tag = auth.tag(0x4000, counter, data)
        assert auth.verify(0x4000, counter, data, tag)
