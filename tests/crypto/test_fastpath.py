"""Unit tests for the vectorized fast path's own surface.

The differential conformance suite (``test_backend_conformance.py``) pins
scalar/vector byte-equality; this file covers what that suite cannot —
backend *selection* precedence, validation/error paths, and the numpy-level
primitives (:class:`VectorAES` batches, :class:`GF128Table` algebra,
:func:`ctr_seeds` layout) against their scalar definitions.
"""

import struct

import numpy as np
import pytest

from repro.crypto.aes import AES
from repro.crypto.fastpath import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    GF128Table,
    ScalarBlockBackend,
    VectorAES,
    VectorBlockBackend,
    block_backend,
    ctr_seeds,
    resolve_backend,
)
from repro.crypto.mac import gf128_mul, ghash


class TestResolveBackend:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vector")
        assert resolve_backend("scalar") == "scalar"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert resolve_backend(None) == "scalar"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend() == DEFAULT_BACKEND

    def test_blank_environment_falls_through(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert resolve_backend() == DEFAULT_BACKEND

    @pytest.mark.parametrize("bad", ["turbo", "SCALAR", "vectorized"])
    def test_unknown_name_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            resolve_backend(bad)

    def test_bad_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "simd")
        with pytest.raises(ValueError, match=ENV_VAR):
            resolve_backend()


class TestBlockBackendFactory:
    def test_returns_selected_implementation(self):
        key = bytes(16)
        assert isinstance(block_backend(key, "scalar"), ScalarBlockBackend)
        assert isinstance(block_backend(key, "vector"), VectorBlockBackend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_name_attribute_matches(self, backend):
        assert block_backend(bytes(16), backend).name == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_many_requires_block_multiple(self, backend):
        cipher = block_backend(bytes(16), backend)
        with pytest.raises(ValueError, match="multiple of 16"):
            cipher.encrypt_many(b"x" * 17)
        with pytest.raises(ValueError, match="multiple of 16"):
            cipher.decrypt_many(b"x" * 15)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batch(self, backend):
        cipher = block_backend(bytes(16), backend)
        assert cipher.encrypt_many(b"") == b""
        assert cipher.decrypt_many(b"") == b""

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_key_sizes_roundtrip(self, key_len):
        key = bytes(range(key_len))
        data = bytes(range(16)) * 5
        for backend in BACKENDS:
            cipher = block_backend(key, backend)
            assert cipher.decrypt_many(cipher.encrypt_many(data)) == data


class TestVectorAES:
    def test_round_key_count_tracks_key_size(self):
        for key_len, rounds in ((16, 10), (24, 12), (32, 14)):
            aes = VectorAES(bytes(key_len))
            assert aes.rounds == rounds
            assert aes._enc_keys.shape == (rounds + 1, 4)
            assert aes._dec_keys.shape == (rounds + 1, 4)

    @pytest.mark.parametrize("method", ["encrypt_block", "decrypt_block"])
    def test_single_block_length_checked(self, method):
        aes = VectorAES(bytes(16))
        with pytest.raises(ValueError, match="must be 16 bytes"):
            getattr(aes, method)(b"short")

    def test_pack_rejects_wrong_shape(self):
        aes = VectorAES(bytes(16))
        with pytest.raises(ValueError, match=r"\(n, 16\)"):
            aes.encrypt_blocks(np.zeros((3, 8), dtype=np.uint8))
        with pytest.raises(ValueError, match=r"\(n, 16\)"):
            aes.decrypt_blocks(np.zeros(16, dtype=np.uint8))

    def test_large_batch_matches_scalar(self):
        key = bytes(range(24))
        scalar = AES(key)
        vector = VectorAES(key)
        rng = np.random.default_rng(7)
        blocks = rng.integers(0, 256, size=(257, 16), dtype=np.uint8)
        encrypted = vector.encrypt_blocks(blocks)
        for row in (0, 100, 256):
            assert (
                encrypted[row].tobytes()
                == scalar.encrypt_block(blocks[row].tobytes())
            )
        assert np.array_equal(vector.decrypt_blocks(encrypted), blocks)


class TestGF128Table:
    def test_key_length_checked(self):
        with pytest.raises(ValueError, match="16 bytes"):
            GF128Table(b"\x01" * 8)

    def test_mul_many_matches_scalar_gf128_mul(self):
        h = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        table = GF128Table(h)
        rng = np.random.default_rng(11)
        lanes = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        products = table.mul_many(lanes)
        h_int = int.from_bytes(h, "big")
        for lane, product in zip(lanes, products):
            expected = gf128_mul(int.from_bytes(lane.tobytes(), "big"), h_int)
            assert product.tobytes() == expected.to_bytes(16, "big")

    def test_ghash_matches_scalar_ghash(self):
        h = bytes(range(16))
        table = GF128Table(h)
        for length in (0, 1, 16, 33, 128):
            data = bytes((i * 7 + 1) & 0xFF for i in range(length))
            assert table.ghash(data) == ghash(h, data)

    def test_ghash_many_shape_checked(self):
        table = GF128Table(bytes(range(16)))
        with pytest.raises(ValueError, match=r"\(n, m, 16\)"):
            table.ghash_many(np.zeros((2, 16), dtype=np.uint8))
        with pytest.raises(ValueError, match=r"\(n, m, 16\)"):
            table.ghash_many(np.zeros((2, 3, 8), dtype=np.uint8))

    def test_ghash_many_lanes_are_independent(self):
        h = bytes(reversed(range(16)))
        table = GF128Table(h)
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 256, size=(5, 4, 16), dtype=np.uint8)
        batched = table.ghash_many(blocks)
        for lane in range(5):
            alone = table.ghash_many(blocks[lane : lane + 1])[0]
            assert np.array_equal(batched[lane], alone)
            assert batched[lane].tobytes() == ghash(h, blocks[lane].tobytes())


class TestCtrSeeds:
    def test_layout_matches_struct_pack(self):
        seeds = ctr_seeds([0x1234, 0x40], [5, (1 << 32) + 2], 2)
        expected = b"".join(
            struct.pack("<QII", address, counter & 0xFFFFFFFF, block)
            for address, counter in ((0x1234, 5), (0x40, (1 << 32) + 2))
            for block in range(2)
        )
        assert seeds == expected

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            ctr_seeds([1, 2], [3], 1)

    def test_empty_batch(self):
        assert ctr_seeds([], [], 8) == b""
