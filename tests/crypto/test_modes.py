"""Memory-encryption mode tests: round trips, tweaks, pad discipline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modes import CounterModeEncryptor, DirectEncryptor

KEY = bytes(range(16))
LINE = bytes(range(128)) + bytes(reversed(range(128)))  # 256 B, 2 lines worth


class TestDirectEncryptor:
    def test_roundtrip(self):
        enc = DirectEncryptor(KEY)
        ct = enc.encrypt_line(0x1000, LINE)
        assert enc.decrypt_line(0x1000, ct) == LINE

    def test_ciphertext_differs_from_plaintext(self):
        enc = DirectEncryptor(KEY)
        assert enc.encrypt_line(0x1000, LINE) != LINE

    def test_same_data_different_addresses_differ(self):
        # The XEX address tweak must prevent equal lines at different
        # addresses from leaking their equality.
        enc = DirectEncryptor(KEY)
        assert enc.encrypt_line(0x1000, LINE) != enc.encrypt_line(0x2000, LINE)

    def test_identical_blocks_within_line_differ(self):
        enc = DirectEncryptor(KEY)
        line = bytes(16) * 4
        ct = enc.encrypt_line(0x0, line)
        blocks = [ct[i : i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_wrong_address_fails_to_decrypt(self):
        enc = DirectEncryptor(KEY)
        ct = enc.encrypt_line(0x1000, LINE)
        assert enc.decrypt_line(0x1040, ct) != LINE

    def test_explicit_tweak_key(self):
        a = DirectEncryptor(KEY, tweak_key=bytes(16))
        b = DirectEncryptor(KEY, tweak_key=bytes([7] * 16))
        assert a.encrypt_line(0x0, LINE) != b.encrypt_line(0x0, LINE)
        assert a.decrypt_line(0x0, a.encrypt_line(0x0, LINE)) == LINE

    @pytest.mark.parametrize("bad", [b"", bytes(8), bytes(20)])
    def test_rejects_non_block_multiple(self, bad):
        enc = DirectEncryptor(KEY)
        with pytest.raises(ValueError):
            enc.encrypt_line(0, bad)

    @given(st.binary(min_size=16, max_size=16), st.integers(0, 2**40))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, block, address):
        enc = DirectEncryptor(KEY)
        assert enc.decrypt_line(address, enc.encrypt_line(address, block)) == block


class TestCounterModeEncryptor:
    def test_roundtrip(self):
        enc = CounterModeEncryptor(KEY)
        ct = enc.encrypt_line(0x1000, 3, LINE)
        assert enc.decrypt_line(0x1000, 3, ct) == LINE

    def test_counter_matters(self):
        enc = CounterModeEncryptor(KEY)
        ct = enc.encrypt_line(0x1000, 3, LINE)
        assert enc.decrypt_line(0x1000, 4, ct) != LINE

    def test_address_matters(self):
        enc = CounterModeEncryptor(KEY)
        ct = enc.encrypt_line(0x1000, 3, LINE)
        assert enc.decrypt_line(0x2000, 3, ct) != LINE

    def test_different_counters_give_different_pads(self):
        enc = CounterModeEncryptor(KEY)
        assert enc.encrypt_line(0x0, 1, LINE) != enc.encrypt_line(0x0, 2, LINE)

    def test_arbitrary_length_supported(self):
        # Counter mode is a stream: no block-multiple requirement.
        enc = CounterModeEncryptor(KEY)
        data = b"ten bytes!"
        assert enc.decrypt_line(0x0, 0, enc.encrypt_line(0x0, 0, data)) == data

    def test_pad_reuse_detection(self):
        enc = CounterModeEncryptor(KEY, track_pad_reuse=True)
        enc.encrypt_line(0x1000, 5, LINE)
        with pytest.raises(ValueError, match="pad reuse"):
            enc.encrypt_line(0x1000, 5, LINE)

    def test_pad_reuse_allows_distinct_counters(self):
        enc = CounterModeEncryptor(KEY, track_pad_reuse=True)
        enc.encrypt_line(0x1000, 5, LINE)
        enc.encrypt_line(0x1000, 6, LINE)  # must not raise

    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(0, 2**30),
        st.integers(0, 2**20),
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, data, address, counter):
        enc = CounterModeEncryptor(KEY)
        ct = enc.encrypt_line(address, counter, data)
        assert enc.decrypt_line(address, counter, ct) == data

    def test_xor_malleability_is_inherent(self):
        # Counter mode without integrity: flipping a ciphertext bit flips
        # the same plaintext bit.  (Documents the threat model: the paper
        # targets confidentiality, not integrity.)
        enc = CounterModeEncryptor(KEY)
        ct = bytearray(enc.encrypt_line(0x0, 0, LINE))
        ct[0] ^= 0x01
        recovered = enc.decrypt_line(0x0, 0, bytes(ct))
        assert recovered[0] == LINE[0] ^ 0x01
        assert recovered[1:] == LINE[1:]
