"""Differential conformance suite: scalar oracle vs NumPy vector backend.

The vector fast path (:mod:`repro.crypto.fastpath`) is only trusted to the
extent the scalar reference confirms it.  This suite pins that contract
three ways:

1. **Known-answer tests** — the FIPS-197 appendix C vectors and the full
   NIST SP 800-38A CTR/ECB vector sets, parametrized over *both* backends
   (the scalar oracle must satisfy the spec too, or it is no oracle);
2. **Seeded randomized differential tests** — random keys of every size,
   random addresses/counters/payloads (non-block-aligned tails included,
   counters at the 32-bit wrap boundary) asserting byte-equality of
   encrypt, decrypt, keystream and GMAC tag between the backends, with the
   failing case's seed named in the assertion message;
3. **Batched-API equivalence** — the lane-parallel ``encrypt_lines`` /
   ``decrypt_lines`` / ``tag_lines`` paths must equal their one-line
   counterparts on both backends.
"""

import random

import pytest

from repro.crypto.fastpath import BACKENDS, block_backend
from repro.crypto.mac import LineAuthenticator
from repro.crypto.modes import CounterModeEncryptor, DirectEncryptor

pytestmark = pytest.mark.parametrize("backend", BACKENDS)

# ----------------------------------------------------------------------
# FIPS-197 appendix C (one vector per key size)
# ----------------------------------------------------------------------
FIPS197_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS197_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]

# ----------------------------------------------------------------------
# NIST SP 800-38A — the four-block ECB and CTR vector sets
# ----------------------------------------------------------------------
SP800_38A_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)

SP800_38A_ECB = [
    # (key hex, ciphertext hex) — F.1.1/F.1.3/F.1.5
    (
        "2b7e151628aed2a6abf7158809cf4f3c",
        "3ad77bb40d7a3660a89ecaf32466ef97"
        "f5d3d58503b9699de785895a96fdbaaf"
        "43b1cd7f598ece23881b00e3ed030688"
        "7b0c785e27e8ad3f8223207104725dd4",
    ),
    (
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
        "bd334f1d6e45f25ff712a214571fa5cc"
        "974104846d0ad3ad7734ecb3ecee4eef"
        "ef7afd2270e2e60adce0ba2face6444e"
        "9a4b41ba738d6c72fb16691603c18e0e",
    ),
    (
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        "f3eed1bdb5d2a03c064b5a7e3db181f8"
        "591ccb10d410ed26dc5ba74a31362870"
        "b6ed21b99ca6f4f9f153e7b1beafed1d"
        "23304b7a39f9f3ff067d8d8f9e24ecc7",
    ),
]

SP800_38A_CTR_COUNTER0 = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
SP800_38A_CTR = [
    # (key hex, ciphertext hex) — F.5.1/F.5.3/F.5.5
    (
        "2b7e151628aed2a6abf7158809cf4f3c",
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee",
    ),
    (
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
        "1abc932417521ca24f2b0459fe7e6e0b"
        "090339ec0aa6faefd5ccc2c6f4ce8e94"
        "1e36b26bd1ebc670d1bd1d665620abf7"
        "4f78a7f6d29809585a97daec58c6b050",
    ),
    (
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        "601ec313775789a5b7a7f504bbf3d228"
        "f443e3ca4d62b59aca84e990cacaf5c5"
        "2b0930daa23de94ce87017ba2d84988d"
        "dfc9c58db67aada613c2dd08457941a6",
    ),
]


def _standard_ctr_blocks(counter0: bytes, n_blocks: int) -> bytes:
    """SP 800-38A counter sequence: the full 128-bit block increments."""
    value = int.from_bytes(counter0, "big")
    return b"".join(
        ((value + index) % (1 << 128)).to_bytes(16, "big")
        for index in range(n_blocks)
    )


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class TestKnownAnswerVectors:
    @pytest.mark.parametrize("key_hex,expected_hex", FIPS197_VECTORS)
    def test_fips197_appendix_c(self, backend, key_hex, expected_hex):
        cipher = block_backend(bytes.fromhex(key_hex), backend)
        expected = bytes.fromhex(expected_hex)
        assert cipher.encrypt_block(FIPS197_PLAINTEXT) == expected
        assert cipher.decrypt_block(expected) == FIPS197_PLAINTEXT

    @pytest.mark.parametrize("key_hex,expected_hex", SP800_38A_ECB)
    def test_sp800_38a_ecb(self, backend, key_hex, expected_hex):
        cipher = block_backend(bytes.fromhex(key_hex), backend)
        expected = bytes.fromhex(expected_hex)
        assert cipher.encrypt_many(SP800_38A_PLAINTEXT) == expected
        assert cipher.decrypt_many(expected) == SP800_38A_PLAINTEXT

    @pytest.mark.parametrize("key_hex,expected_hex", SP800_38A_CTR)
    def test_sp800_38a_ctr(self, backend, key_hex, expected_hex):
        cipher = block_backend(bytes.fromhex(key_hex), backend)
        expected = bytes.fromhex(expected_hex)
        counters = _standard_ctr_blocks(SP800_38A_CTR_COUNTER0, 4)
        keystream = cipher.encrypt_many(counters)
        assert _xor(SP800_38A_PLAINTEXT, keystream) == expected
        # CTR decryption is the same keystream XORed the other way.
        assert _xor(expected, keystream) == SP800_38A_PLAINTEXT

    def test_batched_known_answer(self, backend):
        # The batch API must agree with block-at-a-time on a mixed batch.
        cipher = block_backend(bytes.fromhex(FIPS197_VECTORS[0][0]), backend)
        blocks = [FIPS197_PLAINTEXT, bytes(16), bytes(range(16)), b"\xff" * 16]
        batch = cipher.encrypt_many(b"".join(blocks))
        singles = b"".join(cipher.encrypt_block(block) for block in blocks)
        assert batch == singles
        assert cipher.decrypt_many(batch) == b"".join(blocks)


# ----------------------------------------------------------------------
# Scalar/vector differential equality (the fast path's only trust anchor)
# ----------------------------------------------------------------------
WRAP = 1 << 32  # the counter field width of the CTR seed layout


class TestDifferentialEquality:
    """Backend-pair equality; ``backend`` names the one under test and the
    scalar oracle is always the reference (scalar vs scalar is the identity
    leg that keeps the parametrization honest)."""

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    @pytest.mark.parametrize(
        "length", [1, 15, 16, 17, 50, 128, 130]
    )
    def test_ctr_tails_match_oracle(self, backend, key_len, length):
        key = bytes(range(key_len))
        oracle = CounterModeEncryptor(key, backend="scalar")
        tested = CounterModeEncryptor(key, backend=backend)
        data = bytes((7 * i + 3) & 0xFF for i in range(length))
        assert tested.encrypt_line(0x8000, 5, data) == oracle.encrypt_line(
            0x8000, 5, data
        )
        assert tested.keystream(0x8000, 5, length) == oracle.keystream(
            0x8000, 5, length
        )

    @pytest.mark.parametrize(
        "counter", [0, 1, WRAP - 1, WRAP, WRAP + 1, 3 * WRAP + 17]
    )
    def test_counter_wrap_boundary(self, backend, counter):
        # The seed layout carries counter & 0xFFFFFFFF; both backends must
        # agree on either side of (and exactly at) the wrap.
        key = bytes(range(16))
        oracle = CounterModeEncryptor(key, backend="scalar")
        tested = CounterModeEncryptor(key, backend=backend)
        data = bytes(64)
        assert tested.encrypt_line(0x40, counter, data) == oracle.encrypt_line(
            0x40, counter, data
        )
        # Documented masking: the pad depends on counter mod 2^32.
        assert tested.keystream(0x40, counter, 32) == tested.keystream(
            0x40, counter % WRAP, 32
        )

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_direct_mode_matches_oracle(self, backend, key_len):
        key = bytes(range(1, key_len + 1))
        oracle = DirectEncryptor(key, backend="scalar")
        tested = DirectEncryptor(key, backend=backend)
        line = bytes((13 * i) & 0xFF for i in range(128))
        ct = tested.encrypt_line(0x2000, line)
        assert ct == oracle.encrypt_line(0x2000, line)
        assert tested.decrypt_line(0x2000, ct) == line

    @pytest.mark.parametrize("length", [0, 1, 16, 100, 128])
    def test_gmac_matches_oracle(self, backend, length):
        key = bytes(reversed(range(16)))
        oracle = LineAuthenticator(key, 16, backend="scalar")
        tested = LineAuthenticator(key, 16, backend=backend)
        ciphertext = bytes((i * i) & 0xFF for i in range(length))
        assert tested.tag(0x77, 9, ciphertext) == oracle.tag(0x77, 9, ciphertext)
        assert tested.verify(0x77, 9, ciphertext, oracle.tag(0x77, 9, ciphertext))

    def test_batched_lines_match_single_calls(self, backend):
        key = bytes(range(16))
        enc = CounterModeEncryptor(key, backend=backend)
        auth = LineAuthenticator(key, backend=backend)
        addresses = [0x1000 + 0x80 * i for i in range(10)]
        counters = [i * 3 + 1 for i in range(10)]
        lines = [bytes(((i + j) & 0xFF for j in range(128))) for i in range(10)]
        batched = enc.encrypt_lines(addresses, counters, lines)
        singles = [
            enc.encrypt_line(a, c, line)
            for a, c, line in zip(addresses, counters, lines)
        ]
        assert batched == singles
        assert enc.decrypt_lines(addresses, counters, batched) == lines
        assert auth.tag_lines(addresses, counters, batched) == [
            auth.tag(a, c, ct) for a, c, ct in zip(addresses, counters, batched)
        ]


# ----------------------------------------------------------------------
# Seeded randomized differential fuzz (≥200 cases per key size)
# ----------------------------------------------------------------------
FUZZ_CASES_PER_KEY_SIZE = 200
FUZZ_BASE_SEED = 0xC0FFEE


def _fuzz_case(rng: random.Random, key_len: int):
    key = rng.randbytes(key_len)
    address = rng.randrange(1 << 48)
    # Cluster some counters at the 32-bit wrap so the masked field's
    # boundary is fuzzed, not only its interior.
    counter = rng.choice(
        [rng.randrange(1 << 20), WRAP - 1 + rng.randrange(3), rng.randrange(1 << 34)]
    )
    length = rng.choice([rng.randrange(1, 16), 16, rng.randrange(17, 64), 128])
    payload = rng.randbytes(length)
    return key, address, counter, payload


class TestRandomizedDifferentialFuzz:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_ctr_and_gmac_fuzz(self, backend, key_len):
        if backend == "scalar":
            pytest.skip("scalar is the oracle itself; the vector leg diffs")
        for index in range(FUZZ_CASES_PER_KEY_SIZE):
            case_seed = FUZZ_BASE_SEED + key_len * 100_000 + index
            rng = random.Random(case_seed)
            key, address, counter, payload = _fuzz_case(rng, key_len)
            label = (
                f"fuzz case seed={case_seed} key_len={key_len} "
                f"address={address:#x} counter={counter} "
                f"payload_len={len(payload)}"
            )
            oracle = CounterModeEncryptor(key, backend="scalar")
            tested = CounterModeEncryptor(key, backend=backend)
            expected_ct = oracle.encrypt_line(address, counter, payload)
            actual_ct = tested.encrypt_line(address, counter, payload)
            assert actual_ct == expected_ct, f"CTR encrypt diverged: {label}"
            assert (
                tested.decrypt_line(address, counter, actual_ct) == payload
            ), f"CTR roundtrip broke: {label}"
            assert tested.keystream(address, counter, len(payload)) == (
                oracle.keystream(address, counter, len(payload))
            ), f"keystream diverged: {label}"
            mac_oracle = LineAuthenticator(key[:16], backend="scalar")
            mac_tested = LineAuthenticator(key[:16], backend=backend)
            assert mac_tested.tag(address, counter, actual_ct) == (
                mac_oracle.tag(address, counter, expected_ct)
            ), f"GMAC tag diverged: {label}"
