"""Counter-cache model tests: geometry, LRU behaviour, counter semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.counter_cache import CounterCache, CounterCacheConfig


class TestConfig:
    def test_defaults(self):
        config = CounterCacheConfig()
        assert config.num_blocks * config.block_bytes == config.size_bytes
        assert config.num_sets * config.associativity == config.num_blocks

    @pytest.mark.parametrize("kb", [24, 96, 384, 1536])
    def test_paper_sweep_sizes_are_valid(self, kb):
        config = CounterCacheConfig(size_bytes=kb * 1024)
        assert config.num_sets >= 1

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CounterCacheConfig(size_bytes=1000, block_bytes=64)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CounterCacheConfig(size_bytes=64 * 10, block_bytes=64, associativity=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CounterCacheConfig(size_bytes=0)


class TestCacheBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = CounterCache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_spatial_locality_within_counter_block(self):
        # Addresses in the same 4KB page share a counter block.
        cache = CounterCache()
        assert cache.access(0x0000) is False
        assert cache.access(0x0080) is True
        assert cache.access(0x0FFF) is True
        assert cache.access(0x1000) is False  # next page, new block

    def test_lru_eviction(self):
        config = CounterCacheConfig(
            size_bytes=4 * 64, block_bytes=64, associativity=2,
            data_bytes_per_counter_block=4096,
        )
        cache = CounterCache(config)  # 2 sets x 2 ways
        stride = 4096 * config.num_sets  # same set
        cache.access(0 * stride)
        cache.access(1 * stride)
        cache.access(0 * stride)  # touch 0, making 1 the LRU
        cache.access(2 * stride)  # evicts 1
        assert cache.access(0 * stride) is True
        assert cache.access(1 * stride) is False
        assert cache.stats.evictions >= 1

    def test_hit_rate_computation(self):
        cache = CounterCache()
        for _ in range(4):
            cache.access(0x2000)
        assert cache.stats.hit_rate == pytest.approx(3 / 4)

    def test_hit_rate_empty(self):
        assert CounterCache().stats.hit_rate == 0.0

    def test_occupancy_grows_then_saturates(self):
        config = CounterCacheConfig(size_bytes=8 * 64, block_bytes=64, associativity=8)
        cache = CounterCache(config)
        for page in range(20):
            cache.access(page * 4096)
        assert cache.occupancy == config.num_blocks


class TestCounterSemantics:
    def test_counter_starts_at_zero(self):
        cache = CounterCache()
        assert cache.counter_of(0x3000) == 0

    def test_write_increments_counter(self):
        cache = CounterCache()
        cache.access(0x3000, write=True)
        assert cache.counter_of(0x3000) == 1
        cache.access(0x3000, write=True)
        assert cache.counter_of(0x3000) == 2

    def test_read_does_not_increment(self):
        cache = CounterCache()
        cache.access(0x3000)
        cache.access(0x3000)
        assert cache.counter_of(0x3000) == 0

    def test_counters_survive_eviction_via_writeback(self):
        config = CounterCacheConfig(
            size_bytes=2 * 64, block_bytes=64, associativity=2,
        )
        cache = CounterCache(config)  # 1 set, 2 ways
        cache.access(0 * 4096, write=True)
        cache.access(1 * 4096, write=True)
        cache.access(2 * 4096, write=True)  # evicts page 0 (dirty)
        assert cache.stats.writebacks >= 1
        assert cache.counter_of(0 * 4096) == 1  # from the backing store

    def test_flush_writes_back_and_clears(self):
        cache = CounterCache()
        cache.access(0x0, write=True)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.counter_of(0x0) == 1
        assert cache.access(0x0) is False  # cold after flush

    def test_per_line_counters_are_independent(self):
        cache = CounterCache()
        cache.access(0x0000, write=True)
        cache.access(0x0080, write=True)
        cache.access(0x0080, write=True)
        assert cache.counter_of(0x0000) == 1
        assert cache.counter_of(0x0080) == 2


class TestMinorCounterOverflow:
    @staticmethod
    def _small(bits: int = 3) -> CounterCache:
        return CounterCache(CounterCacheConfig(minor_counter_bits=bits))

    def test_rejects_nonpositive_minor_bits(self):
        with pytest.raises(ValueError):
            CounterCacheConfig(minor_counter_bits=0)

    def test_overflow_triggers_block_reencryption(self):
        cache = self._small()
        for _ in range(7):
            cache.access(0x0000, write=True)
        assert cache.stats.reencryptions == 0
        cache.access(0x0000, write=True)  # 8th write overflows a 3-bit minor
        assert cache.stats.reencryptions == 1

    def test_overflow_rebases_every_line_in_the_block(self):
        cache = self._small()
        cache.access(0x0080, write=True)  # neighbour line, same counter block
        for _ in range(8):
            cache.access(0x0000, write=True)
        assert cache.stats.reencryptions == 1
        assert cache.stats.reencrypted_lines == 2
        # both lines jumped to the common epoch base; the triggering write
        # then advanced past it
        assert cache.counter_of(0x0080) == 8
        assert cache.counter_of(0x0000) == 9

    def test_counters_stay_strictly_increasing_across_overflows(self):
        cache = self._small()
        last = 0
        for _ in range(40):
            cache.access(0x0000, write=True)
            value = cache.counter_of(0x0000)
            assert value > last
            last = value
        assert cache.stats.reencryptions >= 2

    def test_stats_reset_clears_reencryption_counters(self):
        cache = self._small()
        for _ in range(8):
            cache.access(0x0000, write=True)
        assert cache.stats.reencryptions == 1
        cache.stats.reset()
        assert cache.stats.reencryptions == 0
        assert cache.stats.reencrypted_lines == 0


class TestProperties:
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_stats_conserve_accesses(self, addresses):
        cache = CounterCache(CounterCacheConfig(size_bytes=8 * 64, block_bytes=64, associativity=4))
        for address in addresses:
            cache.access(address * 128)
        assert cache.stats.accesses == len(addresses)
        assert 0.0 <= cache.stats.hit_rate <= 1.0

    @given(st.lists(st.tuples(st.integers(0, 64), st.booleans()), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_counter_equals_write_count(self, operations):
        cache = CounterCache(CounterCacheConfig(size_bytes=4 * 64, block_bytes=64, associativity=2))
        writes: dict[int, int] = {}
        for page, is_write in operations:
            address = page * 4096
            cache.access(address, write=is_write)
            if is_write:
                writes[address] = writes.get(address, 0) + 1
        for address, count in writes.items():
            assert cache.counter_of(address) == count


class TestMinorCounterWrapReencryption:
    """The satellite edge case: the re-encryption event must fire at the
    *exact* minor-counter wrap boundary, and the ``on_reencrypt`` hook must
    let a real encryptor (either crypto backend) keep stored ciphertext
    decryptable across the epoch bump."""

    @staticmethod
    def _wrap_config():
        # minor_counter_bits=3 -> the 8th write to a line wraps its minor.
        return CounterCacheConfig(
            size_bytes=4 * 64,
            block_bytes=64,
            associativity=2,
            minor_counter_bits=3,
        )

    def test_event_fires_exactly_at_the_wrap_write(self):
        cache = CounterCache(self._wrap_config())
        for write_number in range(1, 8):
            cache.access(0x0000, write=True)
            assert cache.stats.reencryptions == 0, (
                f"re-encryption fired prematurely at write {write_number}"
            )
            assert cache.counter_of(0x0000) == write_number
        cache.access(0x0000, write=True)  # 8th write: minor wraps here
        assert cache.stats.reencryptions == 1
        # Fresh epoch base 8, then the triggering write's own bump.
        assert cache.counter_of(0x0000) == 9

    def test_hook_reports_pre_bump_counters_and_fresh_base(self):
        events = []
        cache = CounterCache(
            self._wrap_config(),
            on_reencrypt=lambda *event: events.append(event),
        )
        cache.access(0x0080, write=True)  # sibling line, same counter block
        for _ in range(8):
            cache.access(0x0000, write=True)
        assert len(events) == 1
        block_id, old_counters, base = events[0]
        assert block_id == 0
        assert old_counters == {0x0000: 7, 0x0080: 1}
        assert base == 8
        assert base > max(old_counters.values())
        assert cache.stats.reencrypted_lines == 2
        # The sibling line sits at the fresh base (re-encrypted, not written).
        assert cache.counter_of(0x0080) == base

    @staticmethod
    def _run_functional_scenario(backend):
        """Drive a tiny ciphertext store through the wrap via the hook."""
        from repro.crypto.modes import CounterModeEncryptor

        encryptor = CounterModeEncryptor(bytes(range(16)), backend=backend)
        store: dict[int, bytes] = {}
        golden: dict[int, bytes] = {}

        def reencrypt(block_id, old_counters, base):
            for address, old_counter in old_counters.items():
                if address in store:
                    plaintext = encryptor.decrypt_line(
                        address, old_counter, store[address]
                    )
                    store[address] = encryptor.encrypt_line(
                        address, base, plaintext
                    )

        cache = CounterCache(
            TestMinorCounterWrapReencryption._wrap_config(),
            on_reencrypt=reencrypt,
        )

        def write(address, plaintext):
            cache.access(address, write=True)
            golden[address] = plaintext
            store[address] = encryptor.encrypt_line(
                address, cache.counter_of(address), plaintext
            )

        write(0x0080, bytes(range(64)))
        for epoch in range(8):  # the 8th write crosses the wrap boundary
            write(0x0000, bytes((epoch + i) & 0xFF for i in range(64)))
        return cache, encryptor, store, golden

    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_store_stays_decryptable_across_the_wrap(self, backend):
        cache, encryptor, store, golden = self._run_functional_scenario(backend)
        assert cache.stats.reencryptions == 1
        for address, plaintext in golden.items():
            decrypted = encryptor.decrypt_line(
                address, cache.counter_of(address), store[address]
            )
            assert decrypted == plaintext, (
                f"line {address:#x} lost across the epoch bump ({backend})"
            )

    def test_backends_produce_identical_post_wrap_ciphertext(self):
        stores = {}
        for backend in ("scalar", "vector"):
            _, _, store, _ = self._run_functional_scenario(backend)
            stores[backend] = store
        assert stores["scalar"] == stores["vector"]
