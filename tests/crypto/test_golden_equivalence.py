"""Golden-equivalence regression: backends must be output-invisible.

Switching ``REPRO_CRYPTO_BACKEND`` (or ``backend=``) may change *speed*,
never *results*.  This suite pins that contract at the pipeline level: a
full fault-injection campaign and an end-to-end encrypted-memory run must
produce byte/field-identical artifacts — detection rates, per-record
outcomes, MAC tags, and ciphertext digests — under the scalar oracle and
the vectorized fast path.
"""

import hashlib
from dataclasses import replace

import pytest

from repro.faults.campaign import FaultCampaignConfig, run_fault_campaign
from repro.faults.tamper import ProtectedImage, TamperingBus


def _campaign_fingerprint(result) -> dict:
    """Everything observable about a campaign except the backend label."""
    payload = result.to_dict()
    payload.pop("crypto_backend")
    payload["config"].pop("backend")
    payload["report"] = result.report()
    return payload


class TestCampaignEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            FaultCampaignConfig(synthetic_lines=16, faults_per_class=3, seed=5),
            FaultCampaignConfig(
                synthetic_lines=12,
                faults_per_class=2,
                seed=9,
                authenticate=False,
            ),
        ],
        ids=["authenticated", "unauthenticated"],
    )
    def test_synthetic_campaign_identical(self, config):
        scalar = run_fault_campaign(replace(config, backend="scalar"))
        vector = run_fault_campaign(replace(config, backend="vector"))
        assert _campaign_fingerprint(scalar) == _campaign_fingerprint(vector)
        assert scalar.records == vector.records
        assert scalar.detection_rate("encrypted") == vector.detection_rate(
            "encrypted"
        )
        assert scalar.false_positives == vector.false_positives == 0

    def test_plan_derived_campaign_identical(self):
        config = FaultCampaignConfig(
            model="mlp",
            width_scale=0.25,
            faults_per_class=2,
            seed=3,
            max_lines_per_region=8,
        )
        scalar = run_fault_campaign(replace(config, backend="scalar"))
        vector = run_fault_campaign(replace(config, backend="vector"))
        assert _campaign_fingerprint(scalar) == _campaign_fingerprint(vector)

    def test_backend_label_recorded(self):
        config = FaultCampaignConfig(
            synthetic_lines=8, faults_per_class=1, seed=1
        )
        for backend in ("scalar", "vector"):
            result = run_fault_campaign(replace(config, backend=backend))
            assert result.to_dict()["crypto_backend"] == backend


class TestEndToEndMemoryEquivalence:
    """One encrypted-memory image, both backends: identical bus artifacts."""

    @pytest.fixture(scope="class")
    def buses(self):
        image = ProtectedImage.synthetic(24, 0.5, seed=42)
        return {
            backend: TamperingBus(image, backend=backend)
            for backend in ("scalar", "vector")
        }

    def test_ciphertext_digests_match(self, buses):
        digests = {}
        for backend, bus in buses.items():
            hasher = hashlib.sha256()
            for line in sorted(bus.image.lines, key=lambda l: l.address):
                hasher.update(bus._stored[line.address].data)
            digests[backend] = hasher.hexdigest()
        assert digests["scalar"] == digests["vector"]

    def test_mac_tags_match(self, buses):
        tags = {
            backend: [
                bus._stored[address].tag
                for address in sorted(bus.image.encrypted_addresses)
            ]
            for backend, bus in buses.items()
        }
        assert tags["scalar"] == tags["vector"]
        assert all(tag is not None for tag in tags["scalar"])

    def test_sweep_outcomes_match(self, buses):
        sweeps = {
            backend: [
                (outcome.address, outcome.detected, outcome.corrupted)
                for outcome in bus.sweep()
            ]
            for backend, bus in buses.items()
        }
        assert sweeps["scalar"] == sweeps["vector"]
        assert not any(detected for _, detected, _c in sweeps["scalar"])

    def test_cross_backend_read_write(self, buses):
        # A line written through one backend's pipeline decrypts and
        # authenticates through the other: the wire format is shared.
        address = sorted(buses["scalar"].image.encrypted_addresses)[0]
        plaintext = bytes(range(128))
        buses["scalar"].write(address, plaintext)
        buses["vector"]._stored[address] = buses["scalar"]._stored[address]
        buses["vector"]._trusted[address] = buses["scalar"]._trusted[address]
        buses["vector"]._golden[address] = plaintext
        outcome = buses["vector"].read(address)
        assert not outcome.detected
        assert not outcome.corrupted
        assert outcome.data == plaintext
