"""AES block-cipher tests against FIPS-197 / NIST vectors and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX, gf_mul, xtime


class TestGaloisField:
    def test_xtime_known_values(self):
        # {57} * {02} = {ae} (FIPS-197 section 4.2.1 example chain)
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert xtime(0x47) == 0x8E
        assert xtime(0x8E) == 0x07

    def test_fips_example_multiplication(self):
        # FIPS-197: {57} x {13} = {fe}
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_multiplication_identity(self):
        for value in range(256):
            assert gf_mul(value, 1) == value
            assert gf_mul(1, value) == value

    def test_multiplication_by_zero(self):
        for value in range(256):
            assert gf_mul(value, 0) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_multiplication_commutes(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=50)
    def test_multiplication_distributes_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_every_nonzero_element_has_inverse(self):
        # gf_mul forms the multiplicative group of GF(2^8) on 1..255.
        for value in range(1, 256):
            inverses = [x for x in range(1, 256) if gf_mul(value, x) == 1]
            assert len(inverses) == 1


class TestSbox:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_known_sbox_entries(self):
        # Spot values from the FIPS-197 S-box table.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[value] != value for value in range(256))


class TestFips197Vectors:
    """Appendix C of FIPS-197: the canonical known-answer tests."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_nist_sp80038a_aes128_ecb(self):
        # NIST SP 800-38A F.1.1 ECB-AES128 block 1.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(key).encrypt_block(plaintext) == expected

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(self.PLAINTEXT)) == self.PLAINTEXT


class TestRoundTripProperties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_keys_and_blocks(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_encryption_changes_the_block(self, block):
        cipher = AES(bytes(range(16)))
        assert cipher.encrypt_block(block) != block

    def test_different_keys_give_different_ciphertext(self):
        block = bytes(16)
        a = AES(bytes(16)).encrypt_block(block)
        b = AES(bytes([1] * 16)).encrypt_block(block)
        assert a != b


class TestValidation:
    @pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 33])
    def test_rejects_bad_key_lengths(self, bad_len):
        with pytest.raises(ValueError):
            AES(bytes(bad_len))

    @pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
    def test_rejects_bad_block_lengths(self, bad_len):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(bad_len))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(bad_len))

    def test_rounds_by_key_size(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 16
