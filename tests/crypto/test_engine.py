"""AES-engine performance-model tests: Table I data and service timing."""

import pytest

from repro.crypto.engine import (
    ENGINE_SURVEY,
    PAPER_ENGINE,
    AesEngineModel,
    EngineSpec,
    aggregate_bandwidth_gbps,
)


class TestSurvey:
    def test_table1_has_five_rows(self):
        assert len(ENGINE_SURVEY) == 5

    def test_table1_values_match_paper(self):
        by_name = {spec.name.split()[0]: spec for spec in ENGINE_SURVEY}
        assert by_name["Morioka"].throughput_gbps == 1.5
        assert by_name["Mathew"].area_mm2 == 1.1
        assert by_name["Mathew"].latency_cycles == 20
        assert by_name["Ensilica"].throughput_gbps == 8.0
        assert by_name["Sayilar"].power_mw == 6207.0
        assert by_name["Liu"].latency_cycles == 152

    def test_paper_engine_parameters(self):
        # Section IV-A: 20-cycle latency, 8 GB/s per engine.
        assert PAPER_ENGINE.latency_cycles == 20
        assert PAPER_ENGINE.throughput_gbps == 8.0

    def test_bandwidth_gap_claim(self):
        # The paper's headline arithmetic: six engines = 48 GB/s, far below
        # the 177 GB/s GDDR5 bus.
        assert aggregate_bandwidth_gbps(6) == pytest.approx(48.0)
        assert aggregate_bandwidth_gbps(6) < 160.0

    def test_bytes_per_cycle_conversion(self):
        spec = EngineSpec("x", None, None, 10, 7.0)
        assert spec.bytes_per_cycle(0.7) == pytest.approx(10.0)

    def test_bytes_per_cycle_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            PAPER_ENGINE.bytes_per_cycle(0.0)


class TestEngineModel:
    def test_single_line_latency(self):
        engine = AesEngineModel()
        done = engine.service(0, 128)
        occupancy = 128 / engine.bytes_per_cycle
        assert done == int(occupancy + PAPER_ENGINE.latency_cycles)

    def test_back_to_back_lines_queue(self):
        engine = AesEngineModel()
        first = engine.service(0, 128)
        second = engine.service(0, 128)
        assert second > first

    def test_idle_engine_does_not_queue(self):
        engine = AesEngineModel()
        engine.service(0, 128)
        late = engine.service(10_000, 128)
        occupancy = 128 / engine.bytes_per_cycle
        assert late == int(10_000 + occupancy + PAPER_ENGINE.latency_cycles)

    def test_throughput_is_respected_at_saturation(self):
        engine = AesEngineModel()
        lines = 1000
        last = 0
        for _ in range(lines):
            last = engine.service(0, 128)
        expected_cycles = lines * 128 / engine.bytes_per_cycle
        assert last == pytest.approx(expected_cycles + PAPER_ENGINE.latency_cycles, rel=0.01)

    def test_utilization_bounds(self):
        engine = AesEngineModel()
        for _ in range(10):
            engine.service(0, 128)
        assert 0.0 < engine.utilization(10_000) <= 1.0
        assert engine.utilization(0) == 0.0

    def test_stats_accumulate(self):
        engine = AesEngineModel()
        engine.service(0, 128)
        engine.service(0, 256)
        assert engine.lines_processed == 2
        assert engine.bytes_processed == 384

    def test_reset(self):
        engine = AesEngineModel()
        engine.service(0, 128)
        engine.reset()
        assert engine.lines_processed == 0
        assert engine.bytes_processed == 0
        assert engine.service(0, 128) == int(
            128 / engine.bytes_per_cycle + PAPER_ENGINE.latency_cycles
        )

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            AesEngineModel().service(0, 0)

    def test_faster_engine_finishes_sooner(self):
        slow = AesEngineModel(EngineSpec("slow", None, None, 20, 4.0))
        fast = AesEngineModel(EngineSpec("fast", None, None, 20, 16.0))
        assert fast.service(0, 4096) < slow.service(0, 4096)

    def test_aggregate_bandwidth_validation(self):
        with pytest.raises(ValueError):
            aggregate_bandwidth_gbps(-1)
        assert aggregate_bandwidth_gbps(0) == 0.0
