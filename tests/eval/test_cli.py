"""CLI tests (invoked in-process through repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "vgg16"
        assert args.ratio == 0.5

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--model", "alexnet"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Mathew" in out

    def test_plan_prints_summary(self, capsys):
        assert main(["plan", "--model", "mlp", "--ratio", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "SEAL plan for MLP" in out
        assert "40%" in out

    def test_plan_saves_json(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "--model", "mlp", "--output", str(path)]) == 0
        assert path.exists()
        from repro.core.serialize import load_plan

        plan = load_plan(str(path))
        assert plan.model_name == "MLP"

    def test_snoop(self, capsys):
        assert (
            main(["snoop", "--model", "vgg16", "--width-scale", "0.125"]) == 0
        )
        out = capsys.readouterr().out
        assert "plaintext" in out
        assert "boundary" in out

    def test_simulate_subset_of_schemes(self, capsys):
        code = main(
            [
                "simulate",
                "--model",
                "mlp",
                "--schemes",
                "Baseline,SEAL-D",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SEAL-D" in out
        assert "Direct " not in out

    def test_figure_unsupported_number(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "3"])
