"""Security-sweep report formatting (synthetic outcomes — no training)."""

import math

from repro.attacks.security import SecurityOutcome
from repro.attacks.transferability import TransferResult
from repro.eval.experiments import SecuritySweepResult


def fake_outcome(model: str) -> SecurityOutcome:
    accuracy = {
        "white-box": 0.94,
        "black-box": 0.75,
        SecurityOutcome.seal_key(0.5): 0.76,
        SecurityOutcome.seal_key(0.2): 0.80,
    }
    transfer = {
        key: TransferResult(
            substitute_kind="seal" if key.startswith("seal") else key,
            ratio=float(key.split("@")[1]) if "@" in key else None,
            examples=100,
            substitute_success_rate=1.0,
            transferability=value,
            targeted_transferability=value / 2,
        )
        for key, value in {
            "white-box": 1.0,
            "black-box": 0.2,
            SecurityOutcome.seal_key(0.5): 0.18,
            SecurityOutcome.seal_key(0.2): 0.45,
        }.items()
    }
    return SecurityOutcome(
        model=model,
        victim_accuracy=0.94,
        accuracy=accuracy,
        transferability=transfer,
    )


class TestSweepResult:
    def setup_method(self):
        self.sweep = SecuritySweepResult(
            outcomes={"vgg16": fake_outcome("vgg16"), "resnet18": fake_outcome("resnet18")}
        )

    def test_accuracy_rows_cover_ratio_grid(self):
        rows = self.sweep.accuracy_rows()
        labels = [row[0] for row in rows]
        assert labels[0] == "white-box"
        assert labels[-1] == "black-box"
        assert "seal@0.50" in labels

    def test_missing_ratios_render_nan(self):
        rows = self.sweep.accuracy_rows()
        by_label = {row[0]: row[1:] for row in rows}
        assert all(math.isnan(v) for v in by_label["seal@0.90"])
        assert by_label["seal@0.50"] == [0.76, 0.76]

    def test_transfer_rows(self):
        rows = self.sweep.transfer_rows()
        by_label = {row[0]: row[1:] for row in rows}
        assert by_label["white-box"] == [1.0, 1.0]
        assert by_label["black-box"] == [0.2, 0.2]

    def test_report_renders_both_figures(self):
        report = self.sweep.report()
        assert "Fig 3" in report
        assert "Fig 4" in report
        assert "VGG-16" in report and "ResNet-18" in report

    def test_accuracy_series_order(self):
        series = fake_outcome("vgg16").accuracy_series()
        labels = [label for label, _ in series]
        assert labels[0] == "white-box"
        assert labels[-1] == "black-box"
        # SEAL entries ordered by decreasing ratio (as in the figure).
        seal_labels = [l for l in labels if l.startswith("seal@")]
        ratios = [float(l.split("@")[1]) for l in seal_labels]
        assert ratios == sorted(ratios, reverse=True)

    def test_report_without_transfer(self):
        outcome = fake_outcome("vgg16")
        outcome.transferability = {}
        sweep = SecuritySweepResult(outcomes={"vgg16": outcome})
        report = sweep.report()
        assert "Fig 3" in report
        assert "Fig 4" not in report
