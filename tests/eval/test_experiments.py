"""Experiment entry-point tests (small parameterizations of each figure)."""

import math

import pytest

from repro.eval.experiments import (
    fig1_straightforward,
    fig5_conv_layers,
    fig6_pool_layers,
    fig7_overall_ipc,
    fig8_latency,
    table1_engines,
)


class TestTable1:
    def test_five_rows(self):
        result = table1_engines()
        assert len(result.rows) == 5

    def test_report_mentions_every_implementation(self):
        report = table1_engines().report()
        for name in ("Morioka", "Mathew", "Ensilica", "Sayilar", "Liu"):
            assert name in report


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        # Smaller matmul than the recorded run, same structure.
        return fig1_straightforward(
            matmul_shape=(512, 512, 512), cache_sizes_kb=(24, 96)
        )

    def test_encryption_degrades_ipc(self, result):
        assert result.ipc["Direct"] < result.ipc["Baseline"]
        for key in result.ipc:
            if key.startswith("Ctr-"):
                assert result.ipc[key] < result.ipc["Baseline"]

    def test_degradation_magnitude(self, result):
        # Paper: 45-54% IPC reduction; assert a generous band.
        ratio = result.ipc["Direct"] / result.ipc["Baseline"]
        assert 0.35 <= ratio <= 0.7

    def test_hit_rate_grows_with_cache(self, result):
        assert result.hit_rates[96] >= result.hit_rates[24] - 0.02

    def test_hit_rates_valid(self, result):
        for rate in result.hit_rates.values():
            assert 0.0 <= rate <= 1.0 and not math.isnan(rate)

    def test_report_renders(self, result):
        report = result.report()
        assert "Fig 1a" in report and "Fig 1b" in report


@pytest.fixture(scope="module")
def conv_sweep():
    return fig5_conv_layers(ratio=0.5, input_size=32)


@pytest.fixture(scope="module")
def pool_sweep():
    return fig6_pool_layers(ratio=0.5, input_size=32)


class TestFig5:
    def test_four_conv_layers(self, conv_sweep):
        assert conv_sweep.layer_labels == ["CONV-1", "CONV-2", "CONV-3", "CONV-4"]

    def test_baseline_normalized_to_one(self, conv_sweep):
        assert all(v == pytest.approx(1.0) for v in conv_sweep.normalized_ipc["Baseline"])

    def test_encryption_hurts_every_layer(self, conv_sweep):
        for value in conv_sweep.normalized_ipc["Direct"]:
            assert value < 1.0

    def test_seal_improves_over_full_encryption(self, conv_sweep):
        assert conv_sweep.improvement_over("SEAL-D", "Direct") > 1.05
        assert conv_sweep.improvement_over("SEAL-C", "Counter") > 1.05

    def test_report_renders(self, conv_sweep):
        assert "CONV-3" in conv_sweep.report()


class TestFig6:
    def test_five_pool_layers(self, pool_sweep):
        assert len(pool_sweep.layer_labels) == 5

    def test_pools_hurt_at_least_much(self, pool_sweep, conv_sweep):
        # Paper: POOL layers are more bandwidth-bound than CONV layers
        # overall; full encryption must bite pools hard.
        pool_direct = min(pool_sweep.normalized_ipc["Direct"])
        assert pool_direct < 0.7

    def test_seal_improves_pools(self, pool_sweep):
        assert pool_sweep.improvement_over("SEAL-D", "Direct") > 1.1


class TestFig7And8:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig7_overall_ipc(models=("vgg16",))

    def test_scheme_ordering(self, sweep):
        vgg = 0
        assert sweep.normalized_ipc["Direct"][vgg] < 1.0
        assert (
            sweep.normalized_ipc["SEAL-D"][vgg]
            > sweep.normalized_ipc["Direct"][vgg]
        )

    def test_seal_speedup_metric(self, sweep):
        assert sweep.seal_speedup("D") > 1.1
        assert sweep.seal_speedup("C") > 1.1

    def test_latency_reduction_metric(self, sweep):
        assert 0.0 < sweep.latency_reduction("D") < 0.6

    def test_latency_normalized_above_one_for_encrypted(self, sweep):
        assert sweep.normalized_latency["Direct"][0] > 1.0

    def test_fig8_shares_structure(self):
        sweep = fig8_latency(models=("resnet18",))
        assert sweep.normalized_latency["Baseline"][0] == pytest.approx(1.0)
        assert sweep.normalized_latency["Counter"][0] > 1.0

    def test_report_renders(self, sweep):
        assert "VGG-16" in sweep.report()
        assert "scheme" in sweep.report(metric="latency")
