"""Reporting-helper tests."""

from repro.eval.reporting import ascii_table, bar, format_series, normalize_to_first


class TestAsciiTable:
    def test_basic_layout(self):
        table = ascii_table(("a", "b"), [(1, 2.5), ("x", 3.0)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]

    def test_column_width_adapts(self):
        table = ascii_table(("col",), [("averyverylongvalue",)])
        assert "averyverylongvalue" in table

    def test_custom_float_format(self):
        table = ascii_table(("v",), [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in table

    def test_empty_rows(self):
        table = ascii_table(("a",), [])
        assert len(table.splitlines()) == 2


class TestNormalization:
    def test_first_becomes_one(self):
        assert normalize_to_first([2.0, 1.0, 4.0]) == [1.0, 0.5, 2.0]

    def test_empty(self):
        assert normalize_to_first([]) == []

    def test_zero_reference(self):
        assert normalize_to_first([0.0, 5.0]) == [0.0, 0.0]


class TestBar:
    def test_full_and_empty(self):
        assert bar(1.0, width=10) == "#" * 10
        assert bar(0.0, width=10) == "." * 10

    def test_clamps(self):
        assert bar(2.0, width=4) == "####"
        assert bar(-1.0, width=4) == "...."


class TestSeries:
    def test_contains_labels_and_values(self):
        out = format_series("title", ["a", "bb"], [1.0, 0.5])
        assert "title" in out
        assert "bb" in out
        assert "0.500" in out

    def test_normalized_mode(self):
        out = format_series("t", ["x", "y"], [2.0, 1.0], normalized=True)
        assert " 1.000" in out and " 0.500" in out
