"""TimerStat quantiles, reservoir merging, and derived-field guards."""

import json
import math

from repro.obs.metrics import RESERVOIR_SIZE, MetricsRegistry, TimerStat


class TestQuantiles:
    def test_exact_below_reservoir_size(self):
        stat = TimerStat()
        for value in (0.1, 0.2, 0.3, 0.4):
            stat.observe(value)
        assert stat.quantile(0.5) == 0.2
        assert stat.quantile(0.0) == 0.1
        assert stat.quantile(1.0) == 0.4

    def test_empty_stat_quantile_is_zero(self):
        assert TimerStat().quantile(0.95) == 0.0

    def test_to_dict_carries_quantile_keys(self):
        stat = TimerStat()
        for index in range(10):
            stat.observe(index / 10.0)
        data = stat.to_dict()
        assert data["p50_seconds"] <= data["p95_seconds"] <= data["p99_seconds"]
        assert data["samples"] == stat.samples

    def test_reservoir_is_bounded_and_deterministic(self):
        a, b = TimerStat(), TimerStat()
        for index in range(10 * RESERVOIR_SIZE):
            a.observe(index / 1000.0)
            b.observe(index / 1000.0)
        assert len(a.samples) == RESERVOIR_SIZE
        assert a.samples == b.samples  # seeded RNG: same sequence, same sample
        # The tail estimate stays in the right ballpark of the true p95.
        assert abs(a.quantile(0.95) - 0.608) < 0.06

    def test_large_quantiles_reasonable(self):
        stat = TimerStat()
        for index in range(1000):
            stat.observe(index / 1000.0)
        assert 0.3 < stat.quantile(0.5) < 0.7
        assert stat.quantile(0.99) > stat.quantile(0.5)


class TestMerge:
    def test_merge_unions_small_reservoirs(self):
        a, b = TimerStat(), TimerStat()
        a.observe(0.1)
        b.observe(0.2)
        a.merge(b.to_dict())
        assert sorted(a.samples) == [0.1, 0.2]
        assert a.count == 2

    def test_merge_compacts_to_reservoir_size(self):
        a, b = TimerStat(), TimerStat()
        for index in range(RESERVOIR_SIZE):
            a.observe(index * 1.0)
            b.observe(1000.0 + index)
        a.merge(b.to_dict())
        assert len(a.samples) == RESERVOIR_SIZE
        # Compaction keeps order statistics from both ends of the union.
        assert min(a.samples) == 0.0
        assert max(a.samples) == 1000.0 + RESERVOIR_SIZE - 1

    def test_merge_empty_other_is_noop(self):
        stat = TimerStat()
        stat.observe(0.5)
        stat.merge(TimerStat().to_dict())
        assert stat.count == 1
        assert stat.min_seconds == 0.5

    def test_merge_nonfinite_min_does_not_poison(self):
        """Regression: merging a snapshot whose min is inf (or missing)
        onto a count==0 stat used to leave ``min_seconds = inf``, which
        ``json.dumps`` serialises as the invalid token ``Infinity``."""
        stat = TimerStat()
        stat.merge({"count": 3, "total_seconds": 0.3, "min_seconds": math.inf,
                    "max_seconds": 0.2})
        document = json.dumps(stat.to_dict())
        assert "Infinity" not in document
        parsed = json.loads(document)
        assert parsed["min_seconds"] == 0.0
        assert parsed["count"] == 3

    def test_empty_stat_serialises_finite_min(self):
        document = json.dumps(TimerStat().to_dict())
        assert "Infinity" not in document
        assert json.loads(document)["min_seconds"] == 0.0

    def test_registry_merge_round_trips_through_json(self):
        worker = MetricsRegistry()
        worker.count("sim.kernel_runs", 4)
        worker.observe("sim.kernel", 0.01)
        parent = MetricsRegistry()
        parent.merge(json.loads(json.dumps(worker.snapshot())))
        snap = parent.snapshot()
        assert snap["counters"]["sim.kernel_runs"] == 4
        assert snap["timers"]["sim.kernel"]["count"] == 1


class TestDerivedGuards:
    def test_zero_denominators_leave_fields_absent(self):
        registry = MetricsRegistry()
        # Counters present, all denominators zero: no derived field may
        # divide by zero or emit a bogus value.
        registry.count("attack.queries", 10)
        registry.count("faults.detected", 0)
        registry.count("runner.retries", 0)
        registry.observe("crypto.ctr", 0.0)
        registry.observe("crypto.gmac", 0.0)
        derived = registry.snapshot()["derived"]
        assert "fault_detection_rate" not in derived
        assert "runner_retry_rate" not in derived
        assert "crypto_ctr_blocks_per_second" not in derived
        assert "crypto_gmac_tags_per_second" not in derived
        assert "queries_per_cell" not in derived

    def test_ratios_present_when_denominators_are(self):
        registry = MetricsRegistry()
        registry.count("faults.injected", 4)
        registry.count("faults.detected", 3)
        registry.count("runner.attempts", 10)
        registry.count("runner.retries", 1)
        derived = registry.snapshot()["derived"]
        assert derived["fault_detection_rate"] == 0.75
        assert derived["runner_retry_rate"] == 0.1

    def test_snapshot_always_json_serialisable(self):
        registry = MetricsRegistry()
        registry.observe("sim.kernel", 0.001)
        registry.count("sim.cache.hits", 1)
        json.dumps(registry.snapshot())
