"""Disabled-tracing overhead guard: the wired-in instrumentation must stay
effectively free when no trace is requested.

Rather than compare two wall-clock runs (noisy on shared CI runners), the
guard measures the *per-call* cost of the disabled fast path directly,
counts how many tracer touch-points one representative simulation actually
executes (by running it once with tracing enabled), and asserts that the
product stays under 2 % of the run's own wall-clock.  That bounds the same
quantity a differential benchmark would, without its flakiness.
"""

import time

from repro.nn.models import build_model
from repro.obs.trace import Tracer, disable_tracing, enable_tracing, get_tracer
from repro.sim.runner import compare_schemes

MAX_OVERHEAD_FRACTION = 0.02


def _run(jobs=1):
    model = build_model("mlp", width_scale=0.25)
    start = time.perf_counter()
    compare_schemes(model, ("Baseline", "SEAL-C"), jobs=jobs, cache=False)
    return time.perf_counter() - start


def test_disabled_tracing_overhead_under_two_percent():
    # How many span/event touch-points does the workload execute?
    tracer = enable_tracing()
    try:
        _run()
        spans = tracer.finished_spans()
        touch_points = len(spans) + sum(len(span.events) for span in spans)
    finally:
        disable_tracing()
        tracer.reset()
    assert touch_points > 0

    # Per-call cost of the disabled fast path (span + event, amortised).
    disabled = get_tracer()
    assert not disabled.enabled
    calls = 20_000
    start = time.perf_counter()
    for _ in range(calls):
        with disabled.span("guard"):
            pass
    per_call = (time.perf_counter() - start) / calls

    # The same workload, tracing off, for the wall-clock denominator.
    run_seconds = min(_run() for _ in range(3))

    projected_overhead = per_call * touch_points
    assert projected_overhead < MAX_OVERHEAD_FRACTION * run_seconds, (
        f"disabled tracing projects to {projected_overhead * 1e3:.2f}ms over "
        f"{touch_points} touch points against a {run_seconds * 1e3:.1f}ms run "
        f"({projected_overhead / run_seconds:.2%} > {MAX_OVERHEAD_FRACTION:.0%})"
    )


def test_null_span_fast_path_is_branch_only():
    """The disabled path allocates nothing per span: the NULL_SPAN sentinel
    is shared and falsy, so hot paths skip attr/event preparation."""
    tracer = Tracer(enabled=False)
    seen = set()
    for _ in range(3):
        with tracer.span("x") as span:
            seen.add(id(span))
            assert not span
    assert len(seen) == 1
