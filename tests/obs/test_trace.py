"""Span trees, cross-process re-rooting, exporters, and the golden file."""

import json
import threading
from pathlib import Path

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanEvent,
    Tracer,
    chrome_trace_events,
    disable_tracing,
    enable_tracing,
    get_tracer,
    worker_tracer,
    write_chrome_trace,
    write_trace,
    write_trace_document,
)

GOLDEN = Path(__file__).with_name("golden_chrome_trace.json")


@pytest.fixture
def tracing():
    """Process-wide tracing on for the test, fully torn down after."""
    tracer = enable_tracing(process="test")
    yield tracer
    disable_tracing()
    tracer.reset()


class TestSpanTree:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "sibling", "outer"]
        assert outer.parent_id is None
        assert outer.duration > 0.0

    def test_span_ids_unique(self):
        tracer = Tracer(enabled=True)
        for _ in range(10):
            with tracer.span("x"):
                pass
        ids = [span.span_id for span in tracer.finished_spans()]
        assert len(set(ids)) == len(ids)

    def test_events_recorded_and_bounded(self):
        from repro.obs.trace import MAX_EVENTS_PER_SPAN

        tracer = Tracer(enabled=True)
        with tracer.span("loop") as span:
            for index in range(MAX_EVENTS_PER_SPAN + 5):
                span.event("tick", {"i": index})
        (finished,) = tracer.finished_spans()
        assert len(finished.events) == MAX_EVENTS_PER_SPAN
        assert finished.dropped_events == 5
        assert finished.to_dict()["dropped_events"] == 5

    def test_disabled_tracer_yields_shared_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", {"ignored": 1}) as span:
            assert span is NULL_SPAN
            assert not span
            span.set_attr("a", 1)
            span.event("b")
        assert tracer.finished_spans() == []

    def test_max_spans_cap(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.finished_spans()) == 3
        assert tracer.dropped_spans == 2
        assert tracer.snapshot()["dropped_spans"] == 2

    def test_round_trip_through_dict(self):
        tracer = Tracer(enabled=True)
        with tracer.span("kernel", {"layer": "conv1"}) as span:
            span.event("cache.miss", {"address": 64})
        data = tracer.span_dicts()[0]
        clone = Span.from_dict(json.loads(json.dumps(data)))
        assert clone.name == "kernel"
        assert clone.attrs == {"layer": "conv1"}
        assert clone.events[0].name == "cache.miss"
        assert clone.to_dict() == data


class TestThreadSafety:
    def test_threads_get_independent_nesting_chains(self):
        tracer = Tracer(enabled=True)
        errors = []

        def work(thread_index):
            try:
                for _ in range(50):
                    with tracer.span(f"outer-{thread_index}") as outer:
                        with tracer.span(f"inner-{thread_index}") as inner:
                            assert inner.parent_id == outer.span_id
                        assert tracer.current() is outer
            except BaseException as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 4 * 50 * 2
        # Every inner span's parent is an outer span of the SAME thread.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name.startswith("inner"):
                parent = by_id[span.parent_id]
                assert parent.name == "outer" + span.name[len("inner"):]


class TestAdopt:
    def _worker_spans(self):
        worker = Tracer(enabled=True, process="worker-1234")
        with worker.span("sim.unit"):
            with worker.span("sim.kernel"):
                pass
        return worker.span_dicts()

    def test_adopt_reroots_under_parent(self):
        parent = Tracer(enabled=True)
        with parent.span("dispatch") as dispatch:
            adopted = parent.adopt(self._worker_spans(), parent=dispatch)
        assert adopted == 2
        spans = {span.name: span for span in parent.finished_spans()}
        assert spans["sim.unit"].parent_id == spans["dispatch"].span_id
        # The worker-internal edge survives untouched.
        assert spans["sim.kernel"].parent_id == spans["sim.unit"].span_id
        # Everything joins the parent's trace; worker pid label survives.
        assert spans["sim.unit"].trace_id == parent.trace_id
        assert spans["sim.unit"].pid == "worker-1234"

    def test_adopt_defaults_to_current_span(self):
        parent = Tracer(enabled=True)
        with parent.span("dispatch") as dispatch:
            parent.adopt(self._worker_spans())
        roots = [s for s in parent.finished_spans() if s.name == "sim.unit"]
        assert roots[0].parent_id == dispatch.span_id

    def test_adopt_disabled_or_empty_is_noop(self):
        parent = Tracer(enabled=False)
        assert parent.adopt(self._worker_spans()) == 0
        enabled = Tracer(enabled=True)
        assert enabled.adopt([]) == 0


class TestWorkerPropagation:
    def test_worker_tracer_off_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with worker_tracer() as tracer:
            assert tracer is None

    def test_worker_tracer_on_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with worker_tracer() as tracer:
            assert tracer is not None
            assert tracer.enabled
            assert get_tracer() is tracer
            with tracer.span("unit"):
                pass
        assert get_tracer() is not tracer
        assert [span["name"] for span in tracer.span_dicts()] == ["unit"]

    def test_run_units_reroots_worker_spans(self, tracing):
        """Spans from a 2-worker pool end up re-rooted under the dispatch
        span, one pid label per worker process."""
        from repro.sim.parallel import SimUnit, run_units
        from repro.sim.runner import scheme_config
        from repro.sim.workloads import matmul_traffic

        traffic = matmul_traffic(64, 64, 64, encrypted=True)
        units = [
            SimUnit(
                traffic=traffic,
                config=scheme_config("SEAL-C", counter_cache_kb=kb),
                label=f"u{kb}",
            )
            for kb in (24, 48, 96, 384)
        ]
        run_units(units, jobs=2, cache=False)
        spans = tracing.finished_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (dispatch,) = by_name["parallel.run_units"]
        assert dispatch.attrs["jobs"] == 2
        assert len(by_name["sim.unit"]) == 4
        for unit_span in by_name["sim.unit"]:
            assert unit_span.parent_id == dispatch.span_id
            assert unit_span.pid.startswith("worker-")
            assert unit_span.trace_id == tracing.trace_id
        kernels = by_name["sim.kernel"]
        unit_ids = {span.span_id for span in by_name["sim.unit"]}
        assert all(kernel.parent_id in unit_ids for kernel in kernels)


class TestExporters:
    def _fixed_document(self):
        spans = [
            Span(
                name="dispatch", trace_id="t", span_id="a-1", parent_id=None,
                start=100.0, duration=0.5, attrs={"jobs": 2},
                pid="main", tid="MainThread",
            ),
            Span(
                name="sim.unit", trace_id="t", span_id="b-1", parent_id="a-1",
                start=100.1, duration=0.2, attrs={"label": "u0"},
                pid="worker-7", tid="MainThread",
            ),
            Span(
                name="sim.sm", trace_id="t", span_id="b-2", parent_id="b-1",
                start=100.1, duration=0.05, attrs={"sm": 0},
                pid="worker-7", tid="sm0",
            ),
        ]
        spans[1].events.append(SpanEvent("counter_cache", 100.15, {"hits": 3}))
        return {
            "schema": "repro.trace/v1",
            "trace_id": "t",
            "process": "main",
            "spans": [span.to_dict() for span in spans],
        }

    def test_chrome_events_match_golden_file(self):
        events = chrome_trace_events(self._fixed_document())
        golden = json.loads(GOLDEN.read_text())
        assert events == golden

    def test_chrome_export_structure(self, tmp_path):
        path = write_chrome_trace(self._fixed_document(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["otherData"]["schema"] == "repro.trace/v1"
        events = payload["traceEvents"]
        kinds = {event["ph"] for event in events}
        assert kinds == {"M", "X", "i"}
        # One process row per pid label, named metadata first-class.
        names = [
            event["args"]["name"]
            for event in events
            if event["name"] == "process_name"
        ]
        assert sorted(names) == ["main", "worker-7"]
        # Timestamps are rebased to the earliest span.
        complete = [event for event in events if event["ph"] == "X"]
        assert min(event["ts"] for event in complete) == 0.0

    def test_json_export_round_trips(self, tmp_path):
        document = self._fixed_document()
        path = write_trace(document, tmp_path / "out" / "trace.json")
        assert json.loads(path.read_text()) == document

    def test_write_trace_document_dispatch(self, tmp_path):
        document = self._fixed_document()
        json_path = write_trace_document(document, tmp_path / "a.json", "json")
        chrome_path = write_trace_document(document, tmp_path / "b.json", "chrome")
        assert "spans" in json.loads(json_path.read_text())
        assert "traceEvents" in json.loads(chrome_path.read_text())
        with pytest.raises(ValueError):
            write_trace_document(document, tmp_path / "c.json", "svg")
