"""Run-report rendering: self-time ranking, sections, consistency checks."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import SpanAggregate, aggregate_spans, render_report
from repro.obs.trace import TRACE_SCHEMA, Tracer


def _trace_with(*spans):
    return {"schema": TRACE_SCHEMA, "trace_id": "t", "process": "main",
            "spans": list(spans)}


def _span(name, span_id, parent_id, start, duration, pid="main"):
    return {"name": name, "trace_id": "t", "span_id": span_id,
            "parent_id": parent_id, "start": start, "duration": duration,
            "attrs": {}, "events": [], "pid": pid, "tid": "main"}


class TestAggregateSpans:
    def test_self_time_subtracts_direct_children(self):
        trace = _trace_with(
            _span("root", "1", None, 0.0, 1.0),
            _span("child", "2", "1", 0.1, 0.4),
            _span("grandchild", "3", "2", 0.2, 0.1),
        )
        aggregates = {a.name: a for a in aggregate_spans(trace)}
        assert aggregates["root"].self_seconds == pytest.approx(0.6)
        assert aggregates["child"].self_seconds == pytest.approx(0.3)
        assert aggregates["grandchild"].self_seconds == pytest.approx(0.1)

    def test_concurrent_children_clamp_to_zero(self):
        # A dispatch span whose pool children overlap can have more child
        # time than its own duration; self-time clamps at zero.
        trace = _trace_with(
            _span("dispatch", "1", None, 0.0, 1.0),
            _span("unit", "2", "1", 0.0, 0.8),
            _span("unit", "3", "1", 0.0, 0.8),
        )
        aggregates = {a.name: a for a in aggregate_spans(trace)}
        assert aggregates["dispatch"].self_seconds == 0.0
        assert aggregates["unit"].count == 2
        assert aggregates["unit"].total_seconds == pytest.approx(1.6)

    def test_sorted_by_descending_self_time(self):
        trace = _trace_with(
            _span("small", "1", None, 0.0, 0.1),
            _span("big", "2", None, 0.0, 2.0),
        )
        names = [a.name for a in aggregate_spans(trace)]
        assert names == ["big", "small"]

    def test_lane_spans_excluded_from_aggregation(self):
        # Per-SM occupancy lanes carry scaled busy shares, not wall-clock:
        # summed over the SMs they would dwarf (and zero out) the kernel.
        lane = _span("sim.sm", "2", "1", 0.0, 0.9)
        lane["attrs"] = {"sm": 0, "lane": True}
        trace = _trace_with(_span("sim.kernel", "1", None, 0.0, 1.0), lane)
        aggregates = {a.name: a for a in aggregate_spans(trace)}
        assert "sim.sm" not in aggregates
        assert aggregates["sim.kernel"].self_seconds == pytest.approx(1.0)

    def test_mean_seconds(self):
        aggregate = SpanAggregate("x", count=4, total_seconds=2.0)
        assert aggregate.mean_seconds == 0.5
        assert SpanAggregate("y").mean_seconds == 0.0


class TestRenderReport:
    def test_requires_at_least_one_document(self):
        with pytest.raises(ValueError):
            render_report()

    def test_rejects_wrong_schemas(self):
        with pytest.raises(ValueError):
            render_report(metrics={"schema": "nope"})
        with pytest.raises(ValueError):
            render_report(trace={"schema": "nope"})

    def test_trace_only_report_ranks_spans(self):
        trace = _trace_with(
            _span("sim.kernel", "1", None, 0.0, 2.0),
            _span("sim.lower", "2", None, 0.0, 0.5),
        )
        text = render_report(trace=trace, top=1)
        assert "top 1 spans by self-time" in text
        assert "sim.kernel" in text
        assert "sim.lower" not in text.split("self-time")[1]

    def test_metrics_only_report_sections(self):
        registry = MetricsRegistry()
        registry.count("sim.cache.hits", 3)
        registry.count("sim.cache.misses", 1)
        registry.count("crypto.backend.vector", 1)
        registry.count("faults.injected", 8)
        registry.count("faults.detected", 8)
        registry.count("runner.attempts", 5)
        registry.count("sweep.cells.total", 4)
        text = render_report(metrics=registry.snapshot())
        assert "sim cache: 3 hits / 1 misses" in text
        assert "crypto backend(s): vector" in text
        assert "faults: 8 injected" in text
        assert "runner: 5 attempt(s)" in text
        assert "sweep: 4 cell(s)" in text

    def test_consistency_check_flags_mismatch(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sim.kernel"):
            pass
        registry = MetricsRegistry()
        registry.count("sim.kernel_runs", 2)  # deliberately off by one
        text = render_report(metrics=registry.snapshot(), trace=tracer.snapshot())
        assert "sim.kernel spans 1 vs sim.kernel_runs 2: MISMATCH" in text

    def test_consistency_check_passes_when_counts_agree(self):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with tracer.span("sim.kernel"):
            registry.count("sim.kernel_runs")
        text = render_report(metrics=registry.snapshot(), trace=tracer.snapshot())
        assert "sim.kernel spans 1 vs sim.kernel_runs 1: ok" in text

    def test_live_run_report_matches_counters(self):
        """End-to-end: trace + metrics from one simulated run agree."""
        from repro.nn.models import build_model
        from repro.obs.metrics import set_metrics
        from repro.obs.trace import disable_tracing, enable_tracing
        from repro.sim.runner import compare_schemes

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        tracer = enable_tracing()
        try:
            model = build_model("mlp", width_scale=0.25)
            compare_schemes(model, ("Baseline",), jobs=1, cache=False)
            text = render_report(
                metrics=registry.snapshot(), trace=tracer.snapshot()
            )
        finally:
            disable_tracing()
            tracer.reset()
            set_metrics(previous)
        kernel_runs = registry.counter("sim.kernel_runs")
        assert kernel_runs > 0
        assert f"sim.kernel spans {kernel_runs} vs sim.kernel_runs {kernel_runs}: ok" in text
        assert "run report" in text
