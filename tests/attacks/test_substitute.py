"""Substitute-model tests: freezing semantics and adversary knowledge flow."""

import numpy as np
import pytest

from repro.attacks.substitute import (
    SubstituteConfig,
    black_box_substitute,
    make_query_fn,
    seal_substitute,
    train_substitute,
    white_box_substitute,
)
from repro.core.seal import SealScheme
from repro.nn.data import SyntheticCIFAR10
from repro.nn.layers import set_init_rng
from repro.nn.models import vgg16


def builder():
    set_init_rng(42)
    return vgg16(width_scale=0.125)


@pytest.fixture(scope="module")
def victim():
    set_init_rng(0)
    model = vgg16(width_scale=0.125)
    # A lightly trained victim is enough for interface-level tests.
    from repro.nn.optim import Adam
    from repro.nn.training import fit

    data = SyntheticCIFAR10().sample(192, seed=1)
    fit(model, data, Adam(list(model.parameters()), lr=2e-3), epochs=3, batch_size=32)
    return model


@pytest.fixture(scope="module")
def seed_data():
    return SyntheticCIFAR10().sample(32, seed=9)


FAST = SubstituteConfig(augmentation_rounds=1, epochs=1, max_samples=96, batch_size=16)


class TestQueryOracle:
    def test_returns_hard_labels(self, victim, seed_data):
        query = make_query_fn(victim)
        labels = query(seed_data.images)
        assert labels.shape == (len(seed_data),)
        assert labels.dtype.kind == "i"


class TestWhiteBox:
    def test_is_the_victim(self, victim):
        result = white_box_substitute(victim)
        assert result.model is victim
        assert result.kind == "white-box"
        assert result.queries == 0


class TestBlackBox:
    def test_produces_trained_model(self, victim, seed_data):
        result = black_box_substitute(builder, victim, seed_data, FAST)
        assert result.kind == "black-box"
        assert result.queries > len(seed_data)
        assert result.model is not victim

    def test_substitute_differs_from_victim_weights(self, victim, seed_data):
        result = black_box_substitute(builder, victim, seed_data, FAST)
        victim_params = dict(victim.named_parameters())
        for name, param in result.model.named_parameters():
            if "weight" in name and param.data.size > 100:
                assert not np.allclose(param.data, victim_params[name].data)
                break


class TestSealSubstitute:
    @pytest.fixture(scope="class")
    def snooped(self, victim):
        return SealScheme(victim, ratio=0.5).snooped_view()

    def test_plaintext_weights_copied_and_frozen(self, victim, seed_data, snooped):
        result = seal_substitute(builder, victim, snooped, seed_data, FAST)
        victim_params = dict(victim.named_parameters())
        substitute_params = dict(result.model.named_parameters())
        for layer_name, mask in snooped.masks.items():
            known = ~mask
            if not known.any():
                continue
            sub = substitute_params[f"{layer_name}.weight"].data
            vic = victim_params[f"{layer_name}.weight"].data
            np.testing.assert_allclose(sub[known], vic[known])

    def test_encrypted_weights_are_retrained_not_copied(self, victim, seed_data, snooped):
        result = seal_substitute(builder, victim, snooped, seed_data, FAST)
        victim_params = dict(victim.named_parameters())
        substitute_params = dict(result.model.named_parameters())
        diffs = []
        for layer_name, mask in snooped.masks.items():
            if mask.any():
                sub = substitute_params[f"{layer_name}.weight"].data
                vic = victim_params[f"{layer_name}.weight"].data
                diffs.append(np.abs(sub[mask] - vic[mask]).mean())
        assert max(diffs) > 1e-3  # unknown weights did not leak

    def test_ratio_recorded(self, victim, seed_data, snooped):
        result = seal_substitute(builder, victim, snooped, seed_data, FAST)
        assert result.ratio == 0.5

    def test_architecture_mismatch_detected(self, victim, seed_data, snooped):
        def wrong_builder():
            set_init_rng(0)
            return vgg16(width_scale=0.25)

        with pytest.raises(ValueError):
            seal_substitute(wrong_builder, victim, snooped, seed_data, FAST)


class TestTrainSubstitute:
    def test_freeze_mask_respected(self, victim, seed_data):
        model = builder()
        named = dict(model.named_parameters())
        target_name = next(n for n in named if n.endswith("weight"))
        frozen_values = named[target_name].data.copy()
        mask = np.ones_like(frozen_values, dtype=bool)
        train_substitute(
            model,
            seed_data,
            SubstituteConfig(epochs=2, batch_size=16),
            freeze_masks={target_name: mask},
        )
        np.testing.assert_allclose(named[target_name].data, frozen_values)

    def test_unknown_freeze_name_rejected(self, seed_data):
        model = builder()
        with pytest.raises(KeyError):
            train_substitute(
                model,
                seed_data,
                SubstituteConfig(epochs=1),
                freeze_masks={"no.such.weight": np.zeros(1, dtype=bool)},
            )

    def test_returns_train_accuracy(self, seed_data):
        model = builder()
        accuracy = train_substitute(model, seed_data, SubstituteConfig(epochs=1, batch_size=16))
        assert 0.0 <= accuracy <= 1.0


class TestAuxKnowledgeTransfer:
    """The bus leaks unencrypted biases and batch-norm data; the SEAL
    substitute must inherit and freeze exactly the known entries."""

    @pytest.fixture(scope="class")
    def snooped(self, victim):
        return SealScheme(victim, ratio=0.5).snooped_view()

    def test_known_bn_gammas_copied(self, victim, seed_data, snooped):
        result = seal_substitute(builder, victim, snooped, seed_data, FAST)
        substitute_params = dict(result.model.named_parameters())
        copied = 0
        for name, values in snooped.aux_params.items():
            if not name.endswith(".gamma"):
                continue
            mask = snooped.aux_masks[name]
            known = ~mask
            if not known.any():
                continue
            sub = substitute_params[name].data
            victim_values = values[known]
            np.testing.assert_allclose(sub[known], victim_values)
            copied += 1
        assert copied > 0

    def test_known_running_stats_seeded(self, victim, snooped):
        # Check the seeding itself (before fine-tuning legitimately drifts
        # the statistics toward the adversary's query distribution).
        from repro.attacks.substitute import initialize_seal_substitute
        from repro.nn.layers import BatchNorm2d

        substitute, _ = initialize_seal_substitute(builder, snooped)
        victim_modules = dict(victim.named_modules())
        substitute_modules = dict(substitute.named_modules())
        checked = 0
        for name in snooped.aux_buffers:
            module_name, _, attr = name.rpartition(".")
            vic = victim_modules.get(module_name)
            sub = substitute_modules.get(module_name)
            if not isinstance(vic, BatchNorm2d) or not isinstance(sub, BatchNorm2d):
                continue
            known = ~snooped.aux_masks[name]
            if known.any():
                np.testing.assert_allclose(
                    getattr(sub, attr)[known], getattr(vic, attr)[known]
                )
                checked += 1
        assert checked > 0

    def test_freeze_masks_cover_known_aux(self, snooped):
        from repro.attacks.substitute import initialize_seal_substitute

        _, freeze_masks = initialize_seal_substitute(builder, snooped)
        gamma_keys = [k for k in freeze_masks if k.endswith(".gamma")]
        assert gamma_keys
        for key in gamma_keys:
            np.testing.assert_array_equal(
                freeze_masks[key], ~snooped.aux_masks[key]
            )

    def test_hidden_aux_entries_not_leaked(self, victim, seed_data, snooped):
        for name, values in snooped.aux_params.items():
            mask = snooped.aux_masks[name]
            assert np.isnan(values[mask]).all()


class TestInitOnlyAdversary:
    """freeze_known=False: the stronger init-only fine-tuning variant."""

    @pytest.fixture(scope="class")
    def snooped(self, victim):
        return SealScheme(victim, ratio=0.5).snooped_view()

    def test_known_weights_may_move(self, victim, seed_data, snooped):
        config = SubstituteConfig(
            augmentation_rounds=0, epochs=2, max_samples=64,
            batch_size=16, freeze_known=False,
        )
        result = seal_substitute(builder, victim, snooped, seed_data, config)
        victim_params = dict(victim.named_parameters())
        moved = 0.0
        for layer_name, mask in snooped.masks.items():
            known = ~mask
            if not known.any():
                continue
            sub = dict(result.model.named_parameters())[f"{layer_name}.weight"].data
            vic = victim_params[f"{layer_name}.weight"].data
            moved = max(moved, float(np.abs(sub[known] - vic[known]).max()))
        assert moved > 0.0  # fine-tuning touched the known weights

    def test_default_config_freezes(self):
        assert SubstituteConfig().freeze_known is True
