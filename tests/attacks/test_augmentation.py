"""Jacobian-augmentation tests: growth, query accounting, label sourcing."""

import numpy as np
import pytest

from repro.attacks.augmentation import jacobian_augment, jacobian_step
from repro.nn.data import Dataset, SyntheticCIFAR10
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU, Sequential, set_init_rng


@pytest.fixture()
def substitute():
    set_init_rng(0)
    return Sequential(
        Conv2d(3, 4, 3, padding=1), ReLU(), Flatten(), Linear(4 * 32 * 32, 10)
    )


@pytest.fixture()
def seed_data():
    return SyntheticCIFAR10().sample(24, seed=5)


def constant_oracle(images):
    return np.zeros(len(images), dtype=np.int64)


class TestJacobianStep:
    def test_output_shape_and_range(self, substitute, seed_data):
        out = jacobian_step(substitute, seed_data.images, seed_data.labels)
        assert out.shape == seed_data.images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_perturbation_magnitude_is_lambda(self, substitute, seed_data):
        lambda_ = 0.07
        out = jacobian_step(substitute, seed_data.images, seed_data.labels, lambda_=lambda_)
        delta = np.abs(out - seed_data.images)
        interior = (seed_data.images > lambda_) & (seed_data.images < 1 - lambda_)
        # Where clipping cannot interfere, the step is exactly +-lambda
        # (sign of a generically non-zero gradient).
        moved = delta[interior]
        assert (np.isclose(moved, lambda_, atol=1e-6) | np.isclose(moved, 0.0)).all()
        assert np.isclose(moved, lambda_, atol=1e-6).mean() > 0.5

    def test_direction_follows_label_gradient(self, substitute, seed_data):
        a = jacobian_step(substitute, seed_data.images[:4], np.zeros(4, dtype=int))
        b = jacobian_step(substitute, seed_data.images[:4], np.ones(4, dtype=int))
        assert not np.array_equal(a, b)


class TestJacobianAugment:
    def test_doubles_per_round(self, substitute, seed_data):
        result = jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=2, max_samples=None
        )
        assert len(result.dataset) == len(seed_data) * 4

    def test_query_accounting(self, substitute, seed_data):
        result = jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=1, max_samples=None
        )
        assert result.queries == 2 * len(seed_data)

    def test_labels_come_from_oracle(self, substitute, seed_data):
        result = jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=1, max_samples=None
        )
        assert (result.dataset.labels == 0).all()

    def test_max_samples_cap(self, substitute, seed_data):
        result = jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=5, max_samples=60
        )
        assert len(result.dataset) <= 60

    def test_zero_rounds_keeps_seed(self, substitute, seed_data):
        result = jacobian_augment(substitute, seed_data, constant_oracle, rounds=0)
        assert len(result.dataset) == len(seed_data)
        assert result.rounds == 0

    def test_rounds_validated(self, substitute, seed_data):
        with pytest.raises(ValueError):
            jacobian_augment(substitute, seed_data, constant_oracle, rounds=-1)

    def test_train_between_rounds_called(self, substitute, seed_data):
        calls = []

        def recorder(model, dataset):
            calls.append(len(dataset))

        jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=2,
            train_between_rounds=recorder, max_samples=None,
        )
        assert len(calls) == 2
        assert calls[0] < calls[1]

    def test_original_seed_preserved_in_output(self, substitute, seed_data):
        result = jacobian_augment(
            substitute, seed_data, constant_oracle, rounds=1, max_samples=None
        )
        np.testing.assert_array_equal(
            result.dataset.images[: len(seed_data)], seed_data.images
        )
