"""Golden suite for the checkpointed security sweep.

The contract under test: every cell is a pure function of its unit, so
serial, parallel, checkpointed and resumed sweeps are **field-for-field
identical** — to each other and to the serial
:func:`repro.attacks.security.run_security_experiment`.
"""

import json
from dataclasses import replace

import pytest

from repro.attacks.security import (
    SecurityExperimentConfig,
    run_security_experiment,
)
from repro.attacks.substitute import SubstituteConfig
from repro.attacks.sweep import (
    CellResult,
    CheckpointError,
    CheckpointStore,
    SweepUnit,
    cell_key,
    plan_units,
    run_sweep,
)
from repro.obs.metrics import MetricsRegistry


def tiny_config(**overrides) -> SecurityExperimentConfig:
    """Smallest config that still exercises every adversary (~0.5 s/cell)."""
    defaults = dict(
        model="mlp",
        width_scale=0.25,
        ratios=(0.5, 0.2),
        train_size=160,
        test_size=64,
        victim_epochs=2,
        substitute=SubstituteConfig(
            augmentation_rounds=1,
            epochs=1,
            max_samples=128,
            batch_size=16,
            freeze_known=False,
        ),
        transfer_examples=16,
    )
    defaults.update(overrides)
    return SecurityExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def config() -> SecurityExperimentConfig:
    return tiny_config()


@pytest.fixture(scope="module")
def serial_sweep(config):
    """One serial reference sweep, shared by the golden comparisons."""
    return run_sweep(plan_units(config), jobs=1, metrics=MetricsRegistry())


class TestGoldenEquality:
    def test_sweep_matches_serial_experiment(self, config, serial_sweep):
        outcome = run_security_experiment(config)
        assert serial_sweep.accuracy_dict("mlp") == outcome.accuracy
        for cell in serial_sweep.cells:
            assert cell.victim_accuracy == outcome.victim_accuracy
            transfer = outcome.transferability[cell.label]
            assert cell.transferability == transfer.transferability
            assert cell.targeted_transferability == transfer.targeted_transferability
            assert cell.substitute_success_rate == transfer.substitute_success_rate
            assert cell.queries == outcome.substitutes[cell.label].queries

    def test_parallel_identical_to_serial(self, config, serial_sweep):
        parallel = run_sweep(
            plan_units(config), jobs=4, metrics=MetricsRegistry()
        )
        assert parallel.cells == serial_sweep.cells

    def test_checkpointed_run_identical(self, config, serial_sweep, tmp_path):
        checkpointed = run_sweep(
            plan_units(config),
            jobs=1,
            checkpoint_dir=tmp_path,
            metrics=MetricsRegistry(),
        )
        assert checkpointed.cells == serial_sweep.cells


class TestResume:
    def test_partial_sweep_resume_equals_fresh(self, config, serial_sweep, tmp_path):
        units = plan_units(config)
        assert len(units) == 4  # white-box, black-box, seal@0.50, seal@0.20
        # Crash mid-sweep: only half the cells got checkpointed.
        partial = run_sweep(
            units[:2], jobs=1, checkpoint_dir=tmp_path, metrics=MetricsRegistry()
        )
        assert len(list(tmp_path.glob("*.json"))) == 2

        metrics = MetricsRegistry()
        resumed = run_sweep(
            units, jobs=1, checkpoint_dir=tmp_path, resume=True, metrics=metrics
        )
        assert metrics.counter("sweep.cells.resumed") == 2
        assert metrics.counter("sweep.cells.computed") == 2
        assert resumed.cells[:2] == partial.cells
        assert resumed.cells == serial_sweep.cells

    def test_full_resume_skips_every_cell(self, config, serial_sweep, tmp_path):
        units = plan_units(config)
        run_sweep(units, jobs=1, checkpoint_dir=tmp_path, metrics=MetricsRegistry())
        metrics = MetricsRegistry()
        resumed = run_sweep(
            units, jobs=2, checkpoint_dir=tmp_path, resume=True, metrics=metrics
        )
        assert metrics.counter("sweep.cells.resumed") == len(units)
        assert metrics.counter("sweep.cells.computed") == 0
        assert metrics.counter("sweep.checkpoints.written") == 0
        assert resumed.cells == serial_sweep.cells

    def test_resume_false_recomputes(self, config, tmp_path):
        units = plan_units(config)[:1]  # white-box only: cheap
        run_sweep(units, jobs=1, checkpoint_dir=tmp_path, metrics=MetricsRegistry())
        metrics = MetricsRegistry()
        run_sweep(
            units, jobs=1, checkpoint_dir=tmp_path, resume=False, metrics=metrics
        )
        assert metrics.counter("sweep.cells.resumed") == 0
        assert metrics.counter("sweep.cells.computed") == 1


class TestCheckpointValidation:
    @pytest.fixture()
    def stored(self, config, tmp_path):
        """One real checkpoint on disk (the cheap white-box cell)."""
        unit = plan_units(config)[0]
        run_sweep([unit], jobs=1, checkpoint_dir=tmp_path, metrics=MetricsRegistry())
        store = CheckpointStore(tmp_path)
        return store, unit, store.path(unit)

    def test_roundtrip(self, stored):
        store, unit, path = stored
        cell = store.load(unit)
        assert isinstance(cell, CellResult)
        assert cell.key == unit.key()
        assert path.name.startswith("mlp.white-box.")

    def test_truncated_json_rejected(self, stored):
        store, unit, path = stored
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load(unit)

    def test_wrong_schema_rejected(self, stored):
        store, unit, path = stored
        document = json.loads(path.read_text())
        document["schema"] = "repro.sweep-checkpoint/v0"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="not a"):
            store.load(unit)

    def test_foreign_key_rejected(self, stored):
        store, unit, path = stored
        document = json.loads(path.read_text())
        document["key"] = "0" * 64
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="stale or copied"):
            store.load(unit)

    def test_missing_result_field_rejected(self, stored):
        store, unit, path = stored
        document = json.loads(path.read_text())
        del document["result"]["accuracy"]
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="accuracy"):
            store.load(unit)

    def test_sweep_recovers_from_corrupt_checkpoint(self, config, stored):
        store, unit, path = stored
        good = store.load(unit)
        path.write_text("{not json")
        metrics = MetricsRegistry()
        result = run_sweep(
            [unit],
            jobs=1,
            checkpoint_dir=store.root,
            resume=True,
            metrics=metrics,
        )
        assert metrics.counter("sweep.checkpoints.corrupt") == 1
        assert metrics.counter("sweep.cells.computed") == 1
        assert result.cells == [good]  # recomputed, identical
        assert store.load(unit) == good  # and overwritten with a valid doc


class TestCellKeys:
    def test_deterministic(self, config):
        units = plan_units(config)
        assert [cell_key(u) for u in units] == [cell_key(u) for u in units]

    def test_sensitive_to_seed(self, config):
        reseeded = replace(config, seed=config.seed + 1)
        for a, b in zip(plan_units(config), plan_units(reseeded)):
            assert cell_key(a) != cell_key(b)

    def test_sensitive_to_dataset_seed(self, config):
        other = replace(config, dataset_seed=config.dataset_seed + 1)
        for a, b in zip(plan_units(config), plan_units(other)):
            assert cell_key(a) != cell_key(b)

    def test_sensitive_to_ratio(self, config):
        unit = plan_units(config)[2]
        assert unit.adversary == "seal"
        assert cell_key(replace(unit, ratio=0.3)) != cell_key(unit)

    def test_sensitive_to_variant(self, config):
        frozen, init_only = (
            SweepUnit(config, "seal", ratio=0.5, variant=v)
            for v in ("frozen", "init-only")
        )
        assert cell_key(frozen) != cell_key(init_only)

    def test_insensitive_to_ratios_grid(self, config):
        # A cell depends on its own ratio + offset, not on which other
        # ratios the sweep happens to contain — that's what lets a resumed
        # run with a narrower grid reuse earlier checkpoints.
        narrow = replace(config, ratios=(0.5,))
        assert cell_key(plan_units(config)[2]) == cell_key(plan_units(narrow)[2])

    def test_variant_carries_freeze_known(self, config):
        # freeze_known is excluded from the hash: the variant is the truth.
        flipped = replace(
            config, substitute=replace(config.substitute, freeze_known=True)
        )
        a = SweepUnit(config, "seal", ratio=0.5, variant="frozen")
        b = SweepUnit(flipped, "seal", ratio=0.5, variant="frozen")
        assert cell_key(a) == cell_key(b)


class TestPlanningAndValidation:
    def test_plan_order_and_labels(self, config):
        labels = [u.label for u in plan_units(config)]
        assert labels == ["white-box", "black-box", "seal@0.50", "seal@0.20"]

    def test_plan_both_variants(self, config):
        units = plan_units(config, variants=("init-only", "frozen"))
        seal = [(u.label, u.variant) for u in units if u.adversary == "seal"]
        assert seal == [
            ("seal@0.50", "init-only"),
            ("seal@0.50", "frozen"),
            ("seal@0.20", "init-only"),
            ("seal@0.20", "frozen"),
        ]
        # Both variants of one ratio share the serial experiment's init seed.
        assert units[2].init_seed == units[3].init_seed == config.seed + 2

    def test_plan_rejects_unknown_variant(self, config):
        with pytest.raises(ValueError, match="unknown variant"):
            plan_units(config, variants=("thawed",))

    def test_unit_validation(self, config):
        with pytest.raises(ValueError, match="adversary"):
            SweepUnit(config, "gray-box")
        with pytest.raises(ValueError, match="ratio"):
            SweepUnit(config, "seal", variant="frozen")
        with pytest.raises(ValueError, match="variant"):
            SweepUnit(config, "seal", ratio=0.5)
        with pytest.raises(ValueError, match="no ratio"):
            SweepUnit(config, "white-box", ratio=0.5)

    def test_duplicate_units_computed_once(self, config):
        unit = plan_units(config)[0]
        metrics = MetricsRegistry()
        result = run_sweep([unit, unit], jobs=1, metrics=metrics)
        assert metrics.counter("sweep.cells.computed") == 1
        assert len(result.cells) == 2
        assert result.cells[0] == result.cells[1]

    def test_cell_result_roundtrip(self, serial_sweep):
        for cell in serial_sweep.cells:
            assert CellResult.from_dict(cell.to_dict()) == cell

    def test_report_mentions_every_label(self, serial_sweep):
        report = serial_sweep.report()
        for label in ("white-box", "black-box", "seal@0.50", "seal@0.20"):
            assert label in report
        assert "victim accuracy" in report
