"""I-FGSM tests: perturbation budgets, effectiveness, batch crafting."""

import numpy as np
import pytest

from repro.attacks.adversarial import IfgsmConfig, craft_adversarial_batch, ifgsm
from repro.nn.data import SyntheticCIFAR10
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    set_init_rng,
)
from repro.nn.optim import Adam
from repro.nn.training import fit, predict_labels


@pytest.fixture(scope="module")
def trained_model_and_data():
    gen = SyntheticCIFAR10(noise=0.15)
    train = gen.sample(256, seed=1)
    test = gen.sample(64, seed=2)
    set_init_rng(0)
    model = Sequential(
        Conv2d(3, 8, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * 8 * 8, 10),
    )
    fit(model, train, Adam(list(model.parameters()), lr=3e-3), epochs=10, batch_size=32)
    return model, test


class TestConfig:
    def test_defaults_are_positive(self):
        config = IfgsmConfig()
        assert config.epsilon > 0 and config.alpha > 0 and config.iterations > 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"epsilon": 0.0}, {"alpha": -1.0}, {"iterations": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IfgsmConfig(**kwargs)


class TestIfgsm:
    def test_linf_budget_respected(self, trained_model_and_data):
        model, test = trained_model_and_data
        config = IfgsmConfig(epsilon=0.05, alpha=0.02, iterations=5, targeted=False)
        adv = ifgsm(model, test.images[:16], test.labels[:16], config)
        delta = np.abs(adv - test.images[:16])
        assert delta.max() <= config.epsilon + 1e-6

    def test_pixel_range_respected(self, trained_model_and_data):
        model, test = trained_model_and_data
        adv = ifgsm(model, test.images[:16], test.labels[:16],
                    IfgsmConfig(targeted=False))
        assert adv.min() >= 0.0 and adv.max() <= 1.0

    def test_untargeted_attack_degrades_accuracy(self, trained_model_and_data):
        model, test = trained_model_and_data
        clean_accuracy = (predict_labels(model, test.images) == test.labels).mean()
        adv = ifgsm(
            model, test.images, test.labels,
            IfgsmConfig(epsilon=0.08, alpha=0.01, iterations=15, targeted=False),
        )
        adv_accuracy = (predict_labels(model, adv) == test.labels).mean()
        assert adv_accuracy < clean_accuracy

    def test_targeted_attack_reaches_targets(self, trained_model_and_data):
        model, test = trained_model_and_data
        rng = np.random.default_rng(0)
        targets = (test.labels + rng.integers(1, 10, len(test))) % 10
        adv = ifgsm(
            model, test.images, targets,
            IfgsmConfig(epsilon=0.15, alpha=0.015, iterations=30, targeted=True),
        )
        hit = (predict_labels(model, adv) == targets).mean()
        assert hit > 0.5  # strong white-box targeted attacks mostly succeed

    def test_batching_consistency(self, trained_model_and_data):
        model, test = trained_model_and_data
        config = IfgsmConfig(iterations=3, targeted=False)
        a = ifgsm(model, test.images[:20], test.labels[:20], config, batch_size=4)
        b = ifgsm(model, test.images[:20], test.labels[:20], config, batch_size=20)
        np.testing.assert_allclose(a, b, atol=1e-6)


class TestCraftBatch:
    def test_batch_bookkeeping(self, trained_model_and_data):
        model, test = trained_model_and_data
        batch = craft_adversarial_batch(
            model, test.images[:32], test.labels[:32],
            IfgsmConfig(epsilon=0.1, alpha=0.02, iterations=10),
        )
        assert batch.examples.shape == test.images[:32].shape
        assert batch.target_labels is not None
        assert (batch.target_labels != batch.true_labels).all()
        assert 0.0 <= batch.substitute_success_rate <= 1.0

    def test_untargeted_batch(self, trained_model_and_data):
        model, test = trained_model_and_data
        batch = craft_adversarial_batch(
            model, test.images[:16], test.labels[:16],
            IfgsmConfig(epsilon=0.1, alpha=0.02, iterations=10, targeted=False),
        )
        assert batch.target_labels is None

    def test_deterministic_given_rng(self, trained_model_and_data):
        model, test = trained_model_and_data
        config = IfgsmConfig(iterations=2)
        a = craft_adversarial_batch(
            model, test.images[:8], test.labels[:8], config,
            rng=np.random.default_rng(3),
        )
        b = craft_adversarial_batch(
            model, test.images[:8], test.labels[:8], config,
            rng=np.random.default_rng(3),
        )
        np.testing.assert_array_equal(a.examples, b.examples)
        np.testing.assert_array_equal(a.target_labels, b.target_labels)
