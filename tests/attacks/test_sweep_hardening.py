"""Hardened sweep: quarantined checkpoints, killed workers, poisoned cells.

Every scenario must leave the sweep *resumable*: after the fault the
checkpoint directory plus ``--resume`` reconstructs a result field-for-field
identical to a clean serial run.  Worker faults are injected with the
``REPRO_CHAOS`` hooks (inherited by forked pool workers), artifact faults
by garbling checkpoint files directly.
"""

import pytest

from repro.attacks.sweep import CheckpointStore, plan_units, run_sweep
from repro.faults.chaos import CHAOS_ENV_VAR
from repro.faults.runner import RetryPolicy, UnitExecutionError
from repro.obs.metrics import MetricsRegistry
from tests.attacks.test_sweep import tiny_config


@pytest.fixture(scope="module")
def config():
    return tiny_config()


@pytest.fixture(scope="module")
def golden(config):
    """Clean serial reference run every faulted sweep must reproduce."""
    return run_sweep(plan_units(config), jobs=1, metrics=MetricsRegistry())


def test_corrupt_checkpoint_quarantined_and_recomputed(config, golden, tmp_path):
    units = plan_units(config)
    run_sweep(units, jobs=1, checkpoint_dir=tmp_path, metrics=MetricsRegistry())
    store = CheckpointStore(tmp_path)
    victim = units[1]
    path = store.path(victim)
    path.write_text("{definitely not json")

    metrics = MetricsRegistry()
    resumed = run_sweep(
        units, jobs=1, checkpoint_dir=tmp_path, resume=True, metrics=metrics
    )
    assert metrics.counter("sweep.checkpoints.corrupt") == 1
    assert metrics.counter("sweep.checkpoints.quarantined") == 1
    assert metrics.counter("sweep.cells.resumed") == len(units) - 1
    assert metrics.counter("sweep.cells.computed") == 1
    # the evidence was moved aside, not destroyed, with a reason sidecar
    quarantined = tmp_path / (path.name + ".quarantine")
    assert quarantined.read_text() == "{definitely not json"
    assert (tmp_path / (path.name + ".quarantine.reason")).read_text()
    # the cell was recomputed and re-checkpointed with a valid document
    assert store.load(victim) == golden.cells[1]
    assert resumed.cells == golden.cells


def test_killed_worker_is_retried_and_matches_golden(
    config, golden, monkeypatch, tmp_path
):
    monkeypatch.setenv(
        CHAOS_ENV_VAR,
        '{"crash": ["black-box"], "sentinel_dir": "%s"}' % tmp_path,
    )
    metrics = MetricsRegistry()
    result = run_sweep(
        plan_units(config),
        jobs=2,
        metrics=metrics,
        policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
    )
    # the crash really happened (sentinel written before the kill) ...
    assert list(tmp_path.glob("chaos.crash.*"))
    assert metrics.counter("runner.crashes") >= 1
    assert metrics.counter("runner.pool_restarts") >= 1
    # ... and the retried sweep is still field-for-field exact
    assert result.cells == golden.cells


def test_poisoned_cell_fails_alone_then_resume_completes(
    config, golden, monkeypatch, tmp_path
):
    units = plan_units(config)
    # no sentinel_dir: the fault fires on every attempt (a truly bad cell)
    monkeypatch.setenv(CHAOS_ENV_VAR, '{"fail": ["seal@0.50"]}')
    with pytest.raises(UnitExecutionError) as excinfo:
        run_sweep(units, jobs=2, checkpoint_dir=tmp_path, metrics=MetricsRegistry())
    assert excinfo.value.label == "seal@0.50"
    # every healthy cell was checkpointed before the failure propagated
    assert len(list(tmp_path.glob("*.json"))) == len(units) - 1

    monkeypatch.delenv(CHAOS_ENV_VAR)
    metrics = MetricsRegistry()
    resumed = run_sweep(
        units, jobs=1, checkpoint_dir=tmp_path, resume=True, metrics=metrics
    )
    assert metrics.counter("sweep.cells.resumed") == len(units) - 1
    assert metrics.counter("sweep.cells.computed") == 1
    assert resumed.cells == golden.cells
