"""Transferability-measurement tests."""

import numpy as np
import pytest

from repro.attacks.adversarial import IfgsmConfig
from repro.attacks.transferability import measure_transferability
from repro.nn.data import SyntheticCIFAR10
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    set_init_rng,
)
from repro.nn.optim import Adam
from repro.nn.training import fit


def make_model(seed):
    set_init_rng(seed)
    return Sequential(
        Conv2d(3, 8, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * 8 * 8, 10),
    )


@pytest.fixture(scope="module")
def setting():
    gen = SyntheticCIFAR10(noise=0.15)
    train = gen.sample(256, seed=1)
    test = gen.sample(96, seed=2)
    victim = make_model(0)
    fit(victim, train, Adam(list(victim.parameters()), lr=3e-3), epochs=10, batch_size=32)
    other = make_model(7)
    fit(other, train, Adam(list(other.parameters()), lr=3e-3), epochs=2, batch_size=32)
    return victim, other, test


ATTACK = IfgsmConfig(epsilon=0.1, alpha=0.02, iterations=10)


class TestMeasurement:
    def test_white_box_transfer_is_high(self, setting):
        victim, _, test = setting
        result = measure_transferability(
            victim, victim, test, num_examples=40, config=ATTACK,
            substitute_kind="white-box",
        )
        assert result.transferability > 0.8

    def test_weak_substitute_transfers_less_than_white_box(self, setting):
        victim, other, test = setting
        white = measure_transferability(
            victim, victim, test, num_examples=40, config=ATTACK
        )
        cross = measure_transferability(
            other, victim, test, num_examples=40, config=ATTACK
        )
        assert cross.transferability <= white.transferability

    def test_result_fields(self, setting):
        victim, other, test = setting
        result = measure_transferability(
            other, victim, test, num_examples=20, config=ATTACK,
            substitute_kind="seal", ratio=0.5,
        )
        assert result.substitute_kind == "seal"
        assert result.ratio == 0.5
        assert result.examples == 20
        assert 0.0 <= result.transferability <= 1.0
        assert 0.0 <= result.targeted_transferability <= result.transferability + 1e-9
        assert "seal" in str(result)

    def test_only_correct_pool_filter(self, setting):
        victim, other, test = setting
        result = measure_transferability(
            other, victim, test, num_examples=1000, config=ATTACK,
            only_correctly_classified=True,
        )
        # Cannot exceed the number of correctly classified test images.
        assert result.examples <= len(test)

    def test_deterministic_given_seed(self, setting):
        victim, other, test = setting
        a = measure_transferability(
            other, victim, test, num_examples=20, config=ATTACK, seed=5
        )
        b = measure_transferability(
            other, victim, test, num_examples=20, config=ATTACK, seed=5
        )
        assert a.transferability == b.transferability

    def test_untargeted_config(self, setting):
        victim, other, test = setting
        result = measure_transferability(
            other, victim, test, num_examples=20,
            config=IfgsmConfig(epsilon=0.1, alpha=0.02, iterations=5, targeted=False),
        )
        assert result.targeted_transferability == result.transferability

    def test_empty_pool_raises(self, setting):
        victim, other, test = setting
        # An untrained "victim" that classifies nothing correctly on a
        # single-class subset triggers the guard.
        from repro.nn.data import Dataset

        wrong_labels = Dataset(test.images[:10], (test.labels[:10] + 1) % 10)
        correct = (victim is not None)
        assert correct
        with pytest.raises(ValueError):
            # Victim never matches deliberately wrong labels.
            predictions_all_wrong = wrong_labels
            from repro.nn.training import predict_labels

            labels = predict_labels(victim, predictions_all_wrong.images)
            mismatched = Dataset(
                predictions_all_wrong.images, (labels + 1) % 10
            )
            measure_transferability(
                other, victim, mismatched, num_examples=5, config=ATTACK
            )
