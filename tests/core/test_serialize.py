"""Plan-serialization tests: round trips, validation on load, file I/O."""

import json

import numpy as np
import pytest

from repro.core.plan import ModelEncryptionPlan, PlanError
from repro.core.serialize import load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.nn.layers import set_init_rng
from repro.nn.models import mlp, resnet18, vgg16


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.5)


class TestRoundTrip:
    def test_layers_survive(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert len(restored.layers) == len(plan.layers)
        for a, b in zip(plan.layers, restored.layers):
            assert a.name == b.name
            np.testing.assert_array_equal(a.row_mask, b.row_mask)
            np.testing.assert_allclose(a.importance, b.importance)
            assert a.weight_shape == b.weight_shape

    def test_group_masks_survive(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        for group, mask in plan.group_masks.items():
            np.testing.assert_array_equal(restored.group_masks[group], mask)

    def test_traffic_identical(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        for a, b in zip(plan.layer_traffic(), restored.layer_traffic()):
            assert a == b

    def test_queries_work_after_restore(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        name = plan.layers[3].name
        assert restored.layer(name).name == name
        assert restored.realized_ratio == pytest.approx(plan.realized_ratio)

    def test_aux_plans_survive(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert len(restored.aux) == len(plan.aux)
        a = plan.aux_channel_masks()
        b = restored.aux_channel_masks()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    @pytest.mark.parametrize("builder", [resnet18, mlp])
    def test_other_architectures(self, builder):
        set_init_rng(0)
        kwargs = {"width_scale": 0.125} if builder is resnet18 else {}
        original = ModelEncryptionPlan.build(builder(**kwargs), 0.3)
        restored = plan_from_dict(plan_to_dict(original))
        assert restored.model_name == original.model_name
        restored.validate()


class TestValidationOnLoad:
    def test_wrong_version_rejected(self, plan):
        payload = plan_to_dict(plan)
        payload["format_version"] = 99
        with pytest.raises(PlanError, match="format version"):
            plan_from_dict(payload)

    def test_corrupted_mask_rejected(self, plan):
        payload = plan_to_dict(plan)
        payload["layers"][4]["row_mask"] = [
            1 - v for v in payload["layers"][4]["row_mask"]
        ]
        with pytest.raises(PlanError):
            plan_from_dict(payload)

    def test_json_serializable(self, plan):
        json.dumps(plan_to_dict(plan))  # must not raise


class TestFileIO:
    def test_save_and_load(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, str(path))
        restored = load_plan(str(path))
        assert restored.model_name == plan.model_name
        assert restored.ratio == plan.ratio


class TestCorruptedArtifacts:
    def test_newer_version_names_the_upgrade_path(self, plan):
        payload = plan_to_dict(plan)
        payload["format_version"] = 99
        with pytest.raises(PlanError, match="newer than the supported"):
            plan_from_dict(payload)

    def test_checksum_mismatch_rejected(self, plan):
        payload = plan_to_dict(plan)
        payload["ratio"] = 0.123  # bit-rot after the checksum was stamped
        with pytest.raises(PlanError, match="checksum mismatch"):
            plan_from_dict(payload)

    def test_checksum_covers_nested_content(self, plan):
        payload = plan_to_dict(plan)
        payload["layers"][0]["row_mask"][0] = (
            1 - payload["layers"][0]["row_mask"][0]
        )
        with pytest.raises(PlanError, match="checksum"):
            plan_from_dict(payload)

    def test_checksumless_v1_blob_still_loads(self, plan):
        # Blobs written before checksums existed must stay readable.
        payload = plan_to_dict(plan)
        del payload["checksum"]
        restored = plan_from_dict(payload)
        assert restored.model_name == plan.model_name

    def test_load_plan_quarantines_garbled_file(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, str(path))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # truncated write
        with pytest.raises(PlanError, match="plan"):
            load_plan(str(path), quarantine=True)
        assert not path.exists()
        assert (tmp_path / "plan.json.quarantine").exists()
        assert (tmp_path / "plan.json.quarantine.reason").read_text()

    def test_load_plan_without_quarantine_leaves_file(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, str(path))
        path.write_text("[1, 2, 3]")
        with pytest.raises(PlanError):
            load_plan(str(path))
        assert path.exists()
