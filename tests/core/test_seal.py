"""SealScheme façade tests: layout, functional datapath, adversary view."""

import numpy as np
import pytest

from repro.core.memory import SecureHeap
from repro.core.seal import SealScheme
from repro.nn.layers import set_init_rng
from repro.nn.models import vgg16


@pytest.fixture(scope="module")
def scheme():
    set_init_rng(0)
    return SealScheme(vgg16(width_scale=0.125), ratio=0.5)


class TestLayout:
    def test_every_layer_gets_a_layout(self, scheme):
        _, layouts = scheme.layout()
        assert len(layouts) == len(scheme.plan.layers)

    def test_region_sizes_match_plan(self, scheme):
        heap, layouts = scheme.layout()
        for layout, layer in zip(layouts, scheme.plan.layers):
            encrypted = layout.encrypted_weights.size if layout.encrypted_weights else 0
            # Heap rounds to the 128-byte alignment.
            assert encrypted >= layer.encrypted_weight_bytes
            assert encrypted - layer.encrypted_weight_bytes < 128

    def test_criticality_routing_by_address(self, scheme):
        heap, layouts = scheme.layout()
        for layout in layouts:
            if layout.encrypted_weights:
                assert heap.is_encrypted(layout.encrypted_weights.address)
            if layout.plain_weights:
                assert not heap.is_encrypted(layout.plain_weights.address)

    def test_boundary_layer_has_no_plain_region(self, scheme):
        _, layouts = scheme.layout()
        first = layouts[0]  # first CONV is a fully encrypted boundary layer
        assert first.plain_weights is None
        assert first.encrypted_weights is not None

    def test_layout_accepts_external_heap(self, scheme):
        heap = SecureHeap(base=0x8000_0000)
        returned, _ = scheme.layout(heap)
        assert returned is heap
        assert heap.used_bytes > 0


class TestFunctionalDatapath:
    def test_counter_mode_roundtrip(self, scheme):
        line = bytes(range(128))
        ct = scheme.encrypt_line(0x1000, line, counter=7)
        assert ct != line
        assert scheme.decrypt_line(0x1000, ct, counter=7) == line

    def test_direct_mode_roundtrip(self):
        set_init_rng(0)
        direct = SealScheme(vgg16(width_scale=0.125), 0.5, mode="direct")
        line = bytes(range(128))
        ct = direct.encrypt_line(0x1000, line)
        assert direct.decrypt_line(0x1000, ct) == line

    def test_invalid_mode_rejected(self):
        set_init_rng(0)
        with pytest.raises(ValueError, match="mode"):
            SealScheme(vgg16(width_scale=0.125), 0.5, mode="xts")


class TestSnoopedView:
    def test_nan_exactly_on_encrypted_entries(self, scheme):
        view = scheme.snooped_view()
        for name, values in view.weights.items():
            mask = view.masks[name]
            assert np.isnan(values[mask]).all()
            assert not np.isnan(values[~mask]).any()

    def test_plaintext_weights_match_model(self, scheme):
        view = scheme.snooped_view()
        named = dict(scheme.model.named_parameters())
        for name, values in view.weights.items():
            mask = view.masks[name]
            original = named[f"{name}.weight"].data
            np.testing.assert_allclose(values[~mask], original[~mask])

    def test_known_fraction_consistent_with_realized_ratio(self, scheme):
        view = scheme.snooped_view()
        assert view.known_fraction() == pytest.approx(
            1.0 - scheme.plan.realized_ratio, abs=0.02
        )

    def test_higher_ratio_leaks_less(self):
        set_init_rng(0)
        model = vgg16(width_scale=0.125)
        low = SealScheme(model, 0.2).snooped_view().known_fraction()
        high = SealScheme(model, 0.8).snooped_view().known_fraction()
        assert high < low

    def test_view_is_a_copy(self, scheme):
        view = scheme.snooped_view()
        name = scheme.plan.layers[0].name
        view.weights[name][...] = 0.0
        named = dict(scheme.model.named_parameters())
        assert not np.allclose(named[f"{name}.weight"].data, 0.0)


class TestLineSealer:
    """Batched seal/verify/unseal — the serving datapath's crypto core."""

    KEY = bytes(range(16))

    def test_payload_round_trip_unaligned(self):
        from repro.core.seal import LineSealer

        sealer = LineSealer(self.KEY)
        payload = b"weights" * 61  # 427 bytes: needs zero padding
        sealed = sealer.seal(payload, base_address=0x4000, counter=5)
        assert sealed.n_lines == 4
        assert len(sealed.ciphertext) == 4 * 128
        assert sealer.unseal(sealed) == payload
        assert sealer.verify(sealed) == [True] * 4

    def test_tamper_detection_names_exact_lines(self):
        from repro.core.seal import LineSealer, SealedPayload, SealIntegrityError

        sealer = LineSealer(self.KEY)
        sealed = sealer.seal(b"\xaa" * 512)
        corrupted = bytearray(sealed.ciphertext)
        corrupted[0] ^= 1      # line 0
        corrupted[3 * 128] ^= 1  # line 3
        tampered = SealedPayload(
            base_address=sealed.base_address,
            counter=sealed.counter,
            length=sealed.length,
            line_bytes=sealed.line_bytes,
            ciphertext=bytes(corrupted),
            tags=sealed.tags,
        )
        with pytest.raises(SealIntegrityError) as info:
            sealer.unseal(tampered)
        assert info.value.lines == [0, 3]
        assert sealer.verify(tampered) == [False, True, True, False]

    def test_scalar_and_vector_backends_agree(self):
        from repro.core.seal import LineSealer

        payload = bytes(range(256)) * 2
        outputs = []
        for backend in ("scalar", "vector"):
            sealer = LineSealer(self.KEY, backend=backend)
            sealed = sealer.seal(payload, base_address=0x100, counter=2)
            outputs.append((sealed.ciphertext, tuple(sealed.tags)))
        assert outputs[0] == outputs[1]

    def test_line_batch_entry_points_align(self):
        from repro.core.seal import LineSealer

        sealer = LineSealer(self.KEY)
        lines = [bytes([i]) * 128 for i in range(5)]
        addresses = [0x1000 + 128 * i for i in range(5)]
        counters = [7] * 5
        ciphertexts, tags = sealer.seal_lines(addresses, counters, lines)
        assert sealer.verify_lines(addresses, counters, ciphertexts, tags) == [True] * 5
        plaintexts, verdicts = sealer.open_lines(addresses, counters, ciphertexts, tags)
        assert plaintexts == lines and verdicts == [True] * 5
        # Wrong address -> pad and tag both change -> verification fails.
        assert sealer.verify_lines(
            [addresses[0] + 128] + addresses[1:], counters, ciphertexts, tags
        )[0] is False

    def test_empty_payload_rejected(self):
        from repro.core.seal import LineSealer

        with pytest.raises(ValueError):
            LineSealer(self.KEY).seal(b"")
