"""SealScheme façade tests: layout, functional datapath, adversary view."""

import numpy as np
import pytest

from repro.core.memory import SecureHeap
from repro.core.seal import SealScheme
from repro.nn.layers import set_init_rng
from repro.nn.models import vgg16


@pytest.fixture(scope="module")
def scheme():
    set_init_rng(0)
    return SealScheme(vgg16(width_scale=0.125), ratio=0.5)


class TestLayout:
    def test_every_layer_gets_a_layout(self, scheme):
        _, layouts = scheme.layout()
        assert len(layouts) == len(scheme.plan.layers)

    def test_region_sizes_match_plan(self, scheme):
        heap, layouts = scheme.layout()
        for layout, layer in zip(layouts, scheme.plan.layers):
            encrypted = layout.encrypted_weights.size if layout.encrypted_weights else 0
            # Heap rounds to the 128-byte alignment.
            assert encrypted >= layer.encrypted_weight_bytes
            assert encrypted - layer.encrypted_weight_bytes < 128

    def test_criticality_routing_by_address(self, scheme):
        heap, layouts = scheme.layout()
        for layout in layouts:
            if layout.encrypted_weights:
                assert heap.is_encrypted(layout.encrypted_weights.address)
            if layout.plain_weights:
                assert not heap.is_encrypted(layout.plain_weights.address)

    def test_boundary_layer_has_no_plain_region(self, scheme):
        _, layouts = scheme.layout()
        first = layouts[0]  # first CONV is a fully encrypted boundary layer
        assert first.plain_weights is None
        assert first.encrypted_weights is not None

    def test_layout_accepts_external_heap(self, scheme):
        heap = SecureHeap(base=0x8000_0000)
        returned, _ = scheme.layout(heap)
        assert returned is heap
        assert heap.used_bytes > 0


class TestFunctionalDatapath:
    def test_counter_mode_roundtrip(self, scheme):
        line = bytes(range(128))
        ct = scheme.encrypt_line(0x1000, line, counter=7)
        assert ct != line
        assert scheme.decrypt_line(0x1000, ct, counter=7) == line

    def test_direct_mode_roundtrip(self):
        set_init_rng(0)
        direct = SealScheme(vgg16(width_scale=0.125), 0.5, mode="direct")
        line = bytes(range(128))
        ct = direct.encrypt_line(0x1000, line)
        assert direct.decrypt_line(0x1000, ct) == line

    def test_invalid_mode_rejected(self):
        set_init_rng(0)
        with pytest.raises(ValueError, match="mode"):
            SealScheme(vgg16(width_scale=0.125), 0.5, mode="xts")


class TestSnoopedView:
    def test_nan_exactly_on_encrypted_entries(self, scheme):
        view = scheme.snooped_view()
        for name, values in view.weights.items():
            mask = view.masks[name]
            assert np.isnan(values[mask]).all()
            assert not np.isnan(values[~mask]).any()

    def test_plaintext_weights_match_model(self, scheme):
        view = scheme.snooped_view()
        named = dict(scheme.model.named_parameters())
        for name, values in view.weights.items():
            mask = view.masks[name]
            original = named[f"{name}.weight"].data
            np.testing.assert_allclose(values[~mask], original[~mask])

    def test_known_fraction_consistent_with_realized_ratio(self, scheme):
        view = scheme.snooped_view()
        assert view.known_fraction() == pytest.approx(
            1.0 - scheme.plan.realized_ratio, abs=0.02
        )

    def test_higher_ratio_leaks_less(self):
        set_init_rng(0)
        model = vgg16(width_scale=0.125)
        low = SealScheme(model, 0.2).snooped_view().known_fraction()
        high = SealScheme(model, 0.8).snooped_view().known_fraction()
        assert high < low

    def test_view_is_a_copy(self, scheme):
        view = scheme.snooped_view()
        name = scheme.plan.layers[0].name
        view.weights[name][...] = 0.0
        named = dict(scheme.model.named_parameters())
        assert not np.allclose(named[f"{name}.weight"].data, 0.0)
