"""Criticality-measurement tests: ℓ1 ranking and selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.importance import (
    fc_row_l1,
    importance_profile,
    kernel_row_l1,
    rank_rows,
    select_encrypted_rows,
)


class TestKernelRowL1:
    def test_known_values(self):
        w = np.zeros((2, 3, 1, 1))
        w[0, 0] = 2.0
        w[1, 0] = -3.0
        w[0, 2] = 1.0
        np.testing.assert_allclose(kernel_row_l1(w), [5.0, 0.0, 1.0])

    def test_row_axis_is_input_channels(self):
        w = np.random.default_rng(0).normal(size=(8, 5, 3, 3))
        assert kernel_row_l1(w).shape == (5,)

    def test_absolute_values_used(self):
        w = np.full((1, 2, 1, 1), -1.0)
        np.testing.assert_allclose(kernel_row_l1(w), [1.0, 1.0])

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            kernel_row_l1(np.zeros((3, 3)))

    @given(
        arrays(
            np.float64, (4, 6, 3, 3),
            # Exactly representable values: scaling by 4 cannot reorder
            # near-ties through rounding, which is not a ranking property.
            elements=st.integers(-5, 5).map(float),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_scaling_preserves_ranking(self, w):
        base = rank_rows(kernel_row_l1(w))
        scaled = rank_rows(kernel_row_l1(4.0 * w))
        np.testing.assert_array_equal(base, scaled)

    @given(arrays(np.float64, (4, 6, 3, 3), elements=st.floats(-5, 5)))
    @settings(max_examples=20, deadline=None)
    def test_output_channel_permutation_invariance(self, w):
        # Row importance sums over output channels, so permuting them
        # cannot change any row's score.
        perm = np.random.default_rng(0).permutation(4)
        np.testing.assert_allclose(kernel_row_l1(w), kernel_row_l1(w[perm]))


class TestFcRowL1:
    def test_per_feature(self):
        w = np.array([[1.0, -2.0, 0.0], [3.0, 0.0, 1.0]])
        np.testing.assert_allclose(fc_row_l1(w), [4.0, 2.0, 1.0])

    def test_channel_grouping(self):
        w = np.ones((2, 6))
        np.testing.assert_allclose(fc_row_l1(w, channel_group=3), [6.0, 6.0])

    def test_grouping_must_divide(self):
        with pytest.raises(ValueError):
            fc_row_l1(np.ones((2, 5)), channel_group=3)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            fc_row_l1(np.zeros((2, 2, 2)))

    def test_rejects_bad_group(self):
        with pytest.raises(ValueError):
            fc_row_l1(np.ones((2, 4)), channel_group=0)


class TestRanking:
    def test_descending_order(self):
        order = rank_rows(np.array([1.0, 5.0, 3.0]))
        np.testing.assert_array_equal(order, [1, 2, 0])

    def test_tie_break_is_lower_index_first(self):
        order = rank_rows(np.array([2.0, 2.0, 2.0]))
        np.testing.assert_array_equal(order, [0, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rank_rows(np.zeros((2, 2)))


class TestSelection:
    def test_half_selects_top_half(self):
        mask = select_encrypted_rows(np.array([1.0, 4.0, 2.0, 3.0]), 0.5)
        np.testing.assert_array_equal(mask, [False, True, False, True])

    def test_zero_ratio_selects_nothing(self):
        assert not select_encrypted_rows(np.ones(8), 0.0).any()

    def test_full_ratio_selects_everything(self):
        assert select_encrypted_rows(np.ones(8), 1.0).all()

    def test_ceiling_semantics(self):
        # ratio 0.3 of 4 rows -> ceil(1.2) = 2 rows.
        mask = select_encrypted_rows(np.array([1.0, 2.0, 3.0, 4.0]), 0.3)
        assert mask.sum() == 2

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_ratio_validated(self, bad):
        with pytest.raises(ValueError):
            select_encrypted_rows(np.ones(4), bad)

    @given(
        arrays(np.float64, st.integers(1, 40).map(lambda n: (n,)),
               elements=st.floats(0, 100)),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_selected_rows_dominate_unselected(self, importance, ratio):
        mask = select_encrypted_rows(importance, ratio)
        if mask.any() and (~mask).any():
            assert importance[mask].min() >= importance[~mask].max()

    @given(st.integers(1, 64), st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_count_is_ceil_ratio_n(self, n, ratio):
        mask = select_encrypted_rows(np.arange(n, dtype=float), ratio)
        assert mask.sum() == min(n, int(np.ceil(ratio * n)))


class TestProfile:
    def test_uniform_distribution_has_low_gini(self):
        profile = importance_profile(np.ones(16))
        assert profile["gini"] == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_distribution_has_high_gini(self):
        values = np.zeros(16)
        values[0] = 100.0
        profile = importance_profile(values)
        assert profile["gini"] > 0.9

    def test_half_mass_rows(self):
        values = np.array([4.0, 2.0, 1.0, 1.0])
        profile = importance_profile(values)
        assert profile["rows_for_half_mass"] == 1

    def test_summary_fields(self):
        profile = importance_profile(np.array([1.0, 3.0]))
        assert profile["mean"] == 2.0
        assert profile["max"] == 3.0
        assert profile["min"] == 1.0

    def test_zero_distribution(self):
        profile = importance_profile(np.zeros(4))
        assert profile["gini"] == 0.0
        assert profile["rows_for_half_mass"] == 0
