"""Criticality-premise tests: ℓ1-row ablation orderings (Li et al. [13])."""

import numpy as np
import pytest

from repro.core.pruning import (
    ABLATION_POLICIES,
    ablate_kernel_rows,
    row_ablation_study,
)
from repro.nn.data import SyntheticCIFAR10
from repro.nn.layers import Conv2d, set_init_rng
from repro.nn.models import vgg16
from repro.nn.optim import Adam
from repro.nn.training import evaluate, fit


@pytest.fixture(scope="module")
def trained_model_and_data():
    gen = SyntheticCIFAR10(noise=0.2)
    train = gen.sample(512, seed=1)
    test = gen.sample(200, seed=2)
    set_init_rng(0)
    # Width 0.25: the criticality premise needs some over-parameterization
    # (redundancy) to show; tiny models make every row load-bearing.
    model = vgg16(width_scale=0.25)
    fit(model, train, Adam(list(model.parameters()), lr=2e-3), epochs=8, batch_size=64)
    return model, train, test


class TestAblation:
    def test_masks_match_fraction(self, trained_model_and_data):
        model, _, _ = trained_model_and_data
        snapshot = model.state_dict()
        masks = ablate_kernel_rows(model, 0.5, "least-important")
        model.load_state_dict(snapshot)
        for name, mask in masks.items():
            assert mask.sum() == pytest.approx(mask.size / 2, abs=1)

    def test_rows_actually_zeroed(self, trained_model_and_data):
        model, _, _ = trained_model_and_data
        snapshot = model.state_dict()
        masks = ablate_kernel_rows(model, 0.3, "least-important")
        named = dict(model.named_modules())
        for name, mask in masks.items():
            module = named[name]
            assert isinstance(module, Conv2d)
            assert np.all(module.weight.data[:, mask] == 0.0)
        model.load_state_dict(snapshot)

    def test_skip_first_leaves_stem(self, trained_model_and_data):
        model, _, _ = trained_model_and_data
        snapshot = model.state_dict()
        masks = ablate_kernel_rows(model, 0.5, "most-important", skip_first=2)
        conv_names = [
            n for n, m in model.named_modules() if isinstance(m, Conv2d)
        ]
        assert conv_names[0] not in masks
        assert conv_names[1] not in masks
        model.load_state_dict(snapshot)

    def test_fraction_validated(self, trained_model_and_data):
        model, _, _ = trained_model_and_data
        with pytest.raises(ValueError):
            ablate_kernel_rows(model, 1.5)

    def test_unknown_policy(self, trained_model_and_data):
        model, _, _ = trained_model_and_data
        snapshot = model.state_dict()
        with pytest.raises(ValueError, match="policy"):
            ablate_kernel_rows(model, 0.5, "alphabetical")
        model.load_state_dict(snapshot)


class TestStudy:
    def test_study_restores_model(self, trained_model_and_data):
        model, train, test = trained_model_and_data
        before = evaluate(model, test)
        row_ablation_study(
            model, test, fractions=(0.3,), calibration_images=train.images[:128]
        )
        assert evaluate(model, test) == pytest.approx(before)

    def test_criticality_ordering(self, trained_model_and_data):
        """The SE premise: low-ℓ1 rows matter least (Section III-A)."""
        model, train, test = trained_model_and_data
        result = row_ablation_study(
            model,
            test,
            fractions=(0.3, 0.5),
            calibration_images=train.images[:256],
        )
        for index in range(2):
            least = result.accuracy["least-important"][index]
            most = result.accuracy["most-important"][index]
            assert least >= most
        # At 50% removal the gap must be substantial.
        assert result.drop("most-important", 1) > result.drop("least-important", 1)

    def test_removing_nothing_changes_nothing(self, trained_model_and_data):
        model, train, test = trained_model_and_data
        result = row_ablation_study(model, test, fractions=(0.0,))
        for policy in ABLATION_POLICIES:
            assert result.accuracy[policy][0] == pytest.approx(
                result.baseline_accuracy
            )


class TestBatchNormRecalibration:
    def test_recalibration_restores_accuracy_after_stat_corruption(
        self, trained_model_and_data
    ):
        from repro.core.pruning import recalibrate_batchnorm
        from repro.nn.layers import BatchNorm2d

        model, train, test = trained_model_and_data
        snapshot = model.state_dict()
        before = evaluate(model, test)
        # Corrupt every BN's running statistics.
        for module in model.modules():
            if isinstance(module, BatchNorm2d):
                module.running_mean[:] = 5.0
                module.running_var[:] = 0.01
        corrupted = evaluate(model, test)
        recalibrate_batchnorm(model, train.images[:256])
        recovered = evaluate(model, test)
        model.load_state_dict(snapshot)
        assert corrupted < before
        assert recovered > corrupted
        assert recovered >= before - 0.1

    def test_recalibration_leaves_model_in_eval_mode(self, trained_model_and_data):
        from repro.core.pruning import recalibrate_batchnorm

        model, train, _ = trained_model_and_data
        snapshot = model.state_dict()
        recalibrate_batchnorm(model, train.images[:64])
        assert not model.training
        model.load_state_dict(snapshot)

    def test_momentum_restored(self, trained_model_and_data):
        from repro.core.pruning import recalibrate_batchnorm
        from repro.nn.layers import BatchNorm2d

        model, train, _ = trained_model_and_data
        snapshot = model.state_dict()
        momenta = [
            m.momentum for m in model.modules() if isinstance(m, BatchNorm2d)
        ]
        recalibrate_batchnorm(model, train.images[:64])
        after = [m.momentum for m in model.modules() if isinstance(m, BatchNorm2d)]
        assert momenta == after
        model.load_state_dict(snapshot)
