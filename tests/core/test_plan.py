"""Smart-encryption plan tests: the paper's security invariants, boundary
layers, ratio semantics, traffic accounting — on VGG and ResNet graphs."""

import numpy as np
import pytest

from repro.core.plan import (
    DEFAULT_ENCRYPTION_RATIO,
    ModelEncryptionPlan,
    PlanError,
)
from repro.nn.layers import Conv2d, Linear, ReLU, Sequential, set_init_rng
from repro.nn.models import resnet18, vgg16


@pytest.fixture(scope="module")
def vgg_plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.5)


@pytest.fixture(scope="module")
def resnet_plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(resnet18(width_scale=0.125), 0.5)


class TestPlanConstruction:
    def test_default_ratio_is_50_percent(self):
        assert DEFAULT_ENCRYPTION_RATIO == 0.5

    def test_vgg_weight_layer_count(self, vgg_plan):
        assert len(vgg_plan.layers) == 16  # 13 CONV + 3 FC
        assert len(vgg_plan.pools) == 5

    def test_resnet_includes_shortcut_convs(self, resnet_plan):
        convs = [p for p in resnet_plan.layers if p.kind == "conv"]
        assert len(convs) == 20  # 17 main + 3 projection shortcuts

    def test_layers_in_execution_order(self, vgg_plan):
        indices = [p.index for p in vgg_plan.layers]
        assert indices == sorted(indices)

    def test_ratio_validated(self):
        with pytest.raises(PlanError):
            ModelEncryptionPlan.build(vgg16(width_scale=0.125), 1.5)

    def test_model_without_weight_layers_rejected(self):
        with pytest.raises(PlanError, match="no CONV or FC"):
            ModelEncryptionPlan.build(Sequential(ReLU()), 0.5)

    def test_unknown_leaf_module_rejected(self):
        from repro.nn.layers import Module
        from repro.nn.tensor import Tensor

        class Strange(Module):
            def forward(self, x: Tensor) -> Tensor:
                return x * 2

        with pytest.raises(PlanError, match="unknown leaf"):
            ModelEncryptionPlan.build(
                Sequential(Conv2d(3, 4, 3), Strange(), Conv2d(4, 4, 3)), 0.5
            )


class TestBoundaryLayers:
    def test_first_two_convs_fully_encrypted(self, vgg_plan):
        convs = [p for p in vgg_plan.layers if p.kind == "conv"]
        assert convs[0].fully_encrypted and convs[0].row_mask.all()
        assert convs[1].fully_encrypted and convs[1].row_mask.all()

    def test_last_conv_fully_encrypted(self, vgg_plan):
        convs = [p for p in vgg_plan.layers if p.kind == "conv"]
        assert convs[-1].fully_encrypted

    def test_last_fc_fully_encrypted(self, vgg_plan):
        fcs = [p for p in vgg_plan.layers if p.kind == "fc"]
        assert fcs[-1].fully_encrypted
        assert not fcs[0].fully_encrypted  # middle FC layers use SE

    def test_boundary_can_be_disabled(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(
            vgg16(width_scale=0.125),
            0.5,
            boundary_first_convs=0,
            boundary_last_conv=False,
            boundary_last_fc=False,
        )
        assert not any(p.fully_encrypted for p in plan.layers)

    def test_resnet_boundary_selection(self, resnet_plan):
        convs = [p for p in resnet_plan.layers if p.kind == "conv"]
        assert convs[0].fully_encrypted  # stem
        assert convs[1].fully_encrypted  # first block conv1
        assert convs[-1].fully_encrypted  # last executed conv


class TestSecurityInvariants:
    """The invariants Equations 1–3 of the paper rest on."""

    @pytest.mark.parametrize("fixture", ["vgg_plan", "resnet_plan"])
    def test_row_mask_equals_input_channel_mask(self, fixture, request):
        plan = request.getfixturevalue(fixture)
        for layer in plan.layers:
            channel_mask = plan.channel_mask(layer.in_group)
            np.testing.assert_array_equal(layer.row_mask, channel_mask)

    @pytest.mark.parametrize("fixture", ["vgg_plan", "resnet_plan"])
    def test_no_mixed_products(self, fixture, request):
        """Encrypted rows never multiply plaintext channels and vice versa."""
        plan = request.getfixturevalue(fixture)
        for layer in plan.layers:
            channel_mask = plan.channel_mask(layer.in_group)
            mixed = layer.row_mask ^ channel_mask
            assert not mixed.any()

    @pytest.mark.parametrize("fixture", ["vgg_plan", "resnet_plan"])
    def test_selective_layers_meet_requested_ratio(self, fixture, request):
        plan = request.getfixturevalue(fixture)
        for layer in plan.selective_layers:
            minimum = int(np.ceil(plan.ratio * layer.n_rows))
            assert layer.row_mask.sum() >= minimum

    def test_validate_passes_on_built_plans(self, vgg_plan, resnet_plan):
        vgg_plan.validate()
        resnet_plan.validate()

    def test_validate_catches_corruption(self, vgg_plan):
        layer = vgg_plan.selective_layers[0]
        original = layer.row_mask.copy()
        try:
            layer.row_mask = ~layer.row_mask
            with pytest.raises(PlanError):
                vgg_plan.validate()
        finally:
            layer.row_mask = original

    def test_encrypted_rows_have_largest_importance(self):
        """On a purely sequential model (single consumer per tensor) the
        encrypted rows must be exactly the top-ℓ1 rows of each SE layer."""
        set_init_rng(1)
        plan = ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.5)
        for layer in plan.selective_layers:
            if layer.kind != "conv":
                continue
            mask = layer.row_mask
            if mask.any() and (~mask).any():
                assert layer.importance[mask].min() >= layer.importance[~mask].max()


class TestRatioSemantics:
    @pytest.mark.parametrize("ratio", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_realized_ratio_at_least_requested(self, ratio):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(vgg16(width_scale=0.125), ratio)
        assert plan.realized_ratio >= ratio - 1e-9

    def test_realized_ratio_monotone_in_ratio(self):
        set_init_rng(0)
        model = vgg16(width_scale=0.125)
        realized = [
            ModelEncryptionPlan.build(model, r).realized_ratio
            for r in (0.1, 0.5, 0.9)
        ]
        assert realized[0] < realized[1] < realized[2]

    def test_ratio_one_encrypts_everything(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(vgg16(width_scale=0.125), 1.0)
        assert plan.realized_ratio == pytest.approx(1.0)
        for layer in plan.layers:
            assert layer.row_mask.all()

    def test_ratio_zero_leaves_only_boundary(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.0)
        for layer in plan.layers:
            if layer.fully_encrypted:
                assert layer.row_mask.all()


class TestQueries:
    def test_layer_lookup_by_name(self, vgg_plan):
        name = vgg_plan.layers[3].name
        assert vgg_plan.layer(name).name == name

    def test_layer_lookup_missing(self, vgg_plan):
        with pytest.raises(PlanError):
            vgg_plan.layer("nonexistent")

    def test_weight_masks_shapes(self, vgg_plan):
        masks = vgg_plan.weight_masks()
        for layer in vgg_plan.layers:
            assert masks[layer.name].shape == layer.weight_shape

    def test_weight_mask_fraction_matches_rows(self, vgg_plan):
        masks = vgg_plan.weight_masks()
        for layer in vgg_plan.layers:
            mask = masks[layer.name]
            assert mask.mean() == pytest.approx(layer.encrypted_row_fraction)

    def test_channel_mask_unknown_group(self, vgg_plan):
        with pytest.raises(PlanError):
            vgg_plan.channel_mask(-12345)

    def test_summary_mentions_every_layer(self, vgg_plan):
        text = vgg_plan.summary()
        for layer in vgg_plan.layers:
            assert layer.name in text


class TestTrafficAccounting:
    def test_traffic_totals_match_shapes(self, vgg_plan):
        for traffic, layer in zip(vgg_plan.layer_traffic(include_pools=False), vgg_plan.layers):
            weight_total = traffic.weight_bytes_encrypted + traffic.weight_bytes_plain
            assert weight_total == layer.weight_bytes
            in_total = traffic.input_bytes_encrypted + traffic.input_bytes_plain
            assert in_total == int(np.prod(layer.in_shape)) * 4

    def test_gemm_dimensions_conv(self, vgg_plan):
        conv_traffic = [t for t in vgg_plan.layer_traffic() if t.kind == "conv"]
        for traffic in conv_traffic:
            layer = vgg_plan.layer(traffic.name)
            out_c, in_c, k, _ = layer.weight_shape
            assert traffic.gemm_n == out_c
            assert traffic.gemm_k == in_c * k * k
            assert traffic.gemm_m == layer.out_shape[0] * layer.out_shape[2] * layer.out_shape[3]

    def test_macs_consistency(self, vgg_plan):
        for traffic in vgg_plan.layer_traffic(include_pools=False):
            assert traffic.macs == traffic.gemm_m * traffic.gemm_n * traffic.gemm_k

    def test_pool_traffic_has_no_weights(self, vgg_plan):
        pools = [t for t in vgg_plan.layer_traffic() if t.kind == "pool"]
        assert len(pools) == 5
        for traffic in pools:
            assert traffic.weight_bytes_encrypted == 0
            assert traffic.weight_bytes_plain == 0

    def test_encrypted_fraction_bounds(self, vgg_plan):
        for traffic in vgg_plan.layer_traffic():
            assert 0.0 <= traffic.encrypted_fraction <= 1.0

    def test_boundary_layer_traffic_fully_encrypted(self, vgg_plan):
        first_conv = vgg_plan.layers[0]
        traffic = next(
            t for t in vgg_plan.layer_traffic() if t.name == first_conv.name
        )
        assert traffic.weight_bytes_plain == 0
        assert traffic.input_bytes_plain == 0


class TestResNetSpecifics:
    def test_residual_groups_share_masks(self, resnet_plan):
        """All consumers of one residual chain see the same channel mask."""
        groups: dict[int, list] = {}
        for layer in resnet_plan.layers:
            groups.setdefault(layer.in_group, []).append(layer)
        for members in groups.values():
            if len(members) < 2:
                continue
            reference = members[0].row_mask
            for member in members[1:]:
                np.testing.assert_array_equal(member.row_mask, reference)

    def test_multi_consumer_groups_exist(self, resnet_plan):
        """ResNet must actually exercise the shared-tensor path."""
        groups: dict[int, int] = {}
        for layer in resnet_plan.layers:
            groups[layer.in_group] = groups.get(layer.in_group, 0) + 1
        assert any(count >= 2 for count in groups.values())

    def test_fc_after_gap_has_unit_channel_group(self, resnet_plan):
        fc = [p for p in resnet_plan.layers if p.kind == "fc"][0]
        assert fc.channel_group == 1


class TestFcChannelGrouping:
    def test_vgg224_fc_grouped_by_channel(self):
        set_init_rng(0)
        model = vgg16(width_scale=0.125, input_size=64)
        plan = ModelEncryptionPlan.build(model, 0.5, input_shape=(3, 64, 64))
        first_fc = [p for p in plan.layers if p.kind == "fc"][0]
        # 64/32 = 2 -> final feature map 2x2 -> 4 features per channel.
        assert first_fc.channel_group == 4
        assert first_fc.n_rows * 4 == first_fc.weight_shape[1]


class TestBatchedTraffic:
    def test_batch_scales_fmaps_not_weights(self, vgg_plan):
        single = vgg_plan.layer_traffic(batch=1)
        batched = vgg_plan.layer_traffic(batch=8)
        for one, eight in zip(single, batched):
            assert eight.weight_bytes_encrypted == one.weight_bytes_encrypted
            assert eight.weight_bytes_plain == one.weight_bytes_plain
            assert (
                eight.input_bytes_encrypted + eight.input_bytes_plain
                == 8 * (one.input_bytes_encrypted + one.input_bytes_plain)
            )
            assert eight.macs == 8 * one.macs
            assert eight.gemm_m == 8 * one.gemm_m

    def test_batch_validated(self, vgg_plan):
        with pytest.raises(PlanError):
            vgg_plan.layer_traffic(batch=0)
