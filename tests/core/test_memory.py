"""Secure-heap tests: emalloc/malloc semantics, lookups, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import HeapError, SecureHeap


class TestAllocation:
    def test_emalloc_is_encrypted(self):
        heap = SecureHeap()
        alloc = heap.emalloc("weights", 1024)
        assert alloc.encrypted
        assert alloc.size >= 1024

    def test_malloc_is_plaintext(self):
        heap = SecureHeap()
        assert not heap.malloc("scratch", 64).encrypted

    def test_alignment(self):
        heap = SecureHeap(alignment=128)
        a = heap.emalloc("a", 1)
        b = heap.emalloc("b", 1)
        assert a.address % 128 == 0
        assert b.address % 128 == 0
        assert b.address == a.address + 128

    def test_allocations_never_overlap(self):
        heap = SecureHeap()
        a = heap.emalloc("a", 300)
        b = heap.malloc("b", 500)
        assert a.end <= b.address

    def test_duplicate_name_rejected(self):
        heap = SecureHeap()
        heap.emalloc("x", 10)
        with pytest.raises(HeapError, match="already in use"):
            heap.malloc("x", 10)

    def test_nonpositive_size_rejected(self):
        heap = SecureHeap()
        with pytest.raises(HeapError):
            heap.emalloc("x", 0)

    def test_capacity_enforced(self):
        heap = SecureHeap(capacity=256)
        heap.emalloc("a", 128)
        with pytest.raises(HeapError, match="out of memory"):
            heap.emalloc("b", 256)

    def test_bad_alignment_rejected(self):
        with pytest.raises(HeapError):
            SecureHeap(alignment=100)


class TestLookup:
    def test_lookup_interior_address(self):
        heap = SecureHeap()
        alloc = heap.emalloc("a", 256)
        assert heap.lookup(alloc.address + 100) is alloc

    def test_lookup_boundaries(self):
        heap = SecureHeap()
        a = heap.emalloc("a", 128)
        b = heap.malloc("b", 128)
        assert heap.lookup(a.address) is a
        assert heap.lookup(b.address) is b
        assert heap.lookup(a.end - 1) is a

    def test_unallocated_address_raises(self):
        heap = SecureHeap(base=0x1000)
        heap.emalloc("a", 128)
        with pytest.raises(HeapError):
            heap.lookup(0x10)

    def test_is_encrypted_routing(self):
        # The memory controller's per-line routing decision.
        heap = SecureHeap()
        enc = heap.emalloc("critical", 128)
        plain = heap.malloc("bypass", 128)
        assert heap.is_encrypted(enc.address)
        assert not heap.is_encrypted(plain.address)

    def test_by_name(self):
        heap = SecureHeap()
        heap.emalloc("model.conv1", 64)
        assert heap.by_name("model.conv1").name == "model.conv1"
        with pytest.raises(HeapError):
            heap.by_name("nope")


class TestAccounting:
    def test_used_and_split_byte_counts(self):
        heap = SecureHeap(alignment=128)
        heap.emalloc("a", 128)
        heap.malloc("b", 256)
        heap.emalloc("c", 128)
        assert heap.used_bytes == 512
        assert heap.encrypted_bytes == 256
        assert heap.plaintext_bytes == 256

    def test_iteration_in_allocation_order(self):
        heap = SecureHeap()
        names = ["w", "x", "y"]
        for name in names:
            heap.malloc(name, 10)
        assert [a.name for a in heap] == names
        assert len(heap) == 3

    def test_repr_mentions_kind(self):
        heap = SecureHeap()
        assert "emalloc" in repr(heap.emalloc("a", 1))
        assert "malloc" in repr(heap.malloc("b", 1))


class TestProperties:
    @given(st.lists(st.tuples(st.integers(1, 10_000), st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_no_overlaps_and_correct_routing(self, allocations):
        heap = SecureHeap()
        expected = []
        for index, (size, encrypted) in enumerate(allocations):
            if encrypted:
                alloc = heap.emalloc(f"r{index}", size)
            else:
                alloc = heap.malloc(f"r{index}", size)
            expected.append((alloc, encrypted))
        # Pairwise disjoint.
        sorted_allocs = sorted((a for a, _ in expected), key=lambda a: a.address)
        for left, right in zip(sorted_allocs, sorted_allocs[1:]):
            assert left.end <= right.address
        # Routing consistent everywhere inside each region.
        for alloc, encrypted in expected:
            assert heap.is_encrypted(alloc.address) == encrypted
            assert heap.is_encrypted(alloc.end - 1) == encrypted
