"""SE on FC-only networks (the paper's §III-A extension to RNN-style
models built from fully-connected layers)."""

import numpy as np
import pytest

from repro.core.plan import ModelEncryptionPlan
from repro.core.seal import SealScheme
from repro.nn.layers import set_init_rng
from repro.nn.models import mlp
from repro.sim.runner import SCHEMES, run_model


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(mlp(), 0.5)


class TestMlpPlanning:
    def test_all_weight_layers_are_fc(self, plan):
        assert all(p.kind == "fc" for p in plan.layers)
        assert len(plan.pools) == 0

    def test_last_fc_is_boundary(self, plan):
        assert plan.layers[-1].fully_encrypted
        assert not plan.layers[0].fully_encrypted  # no CONV boundary rule

    def test_first_fc_rows_are_image_channels(self, plan):
        """Flatten groups the 3x32x32 image into 3 channel rows."""
        first = plan.layers[0]
        assert first.n_rows == 3
        assert first.channel_group == 32 * 32

    def test_invariants_hold(self, plan):
        plan.validate()
        for layer in plan.layers:
            np.testing.assert_array_equal(
                layer.row_mask, plan.channel_mask(layer.in_group)
            )

    def test_hidden_fc_encrypts_exactly_half(self, plan):
        hidden = plan.layers[1]
        assert hidden.row_mask.sum() == hidden.n_rows // 2

    def test_weight_mask_expands_channel_groups(self, plan):
        first = plan.layers[0]
        mask = first.weight_element_mask()
        assert mask.shape == first.weight_shape
        # Each of the 3 image channels expands to 1024 contiguous features.
        per_feature = mask[0]
        blocks = per_feature.reshape(3, 1024)
        for block in blocks:
            assert block.all() or not block.any()


class TestMlpSimulation:
    def test_runs_under_all_schemes(self, plan):
        ipcs = {scheme: run_model(plan, scheme).ipc for scheme in SCHEMES}
        assert ipcs["Direct"] < ipcs["Baseline"]
        assert ipcs["SEAL-D"] >= ipcs["Direct"]


class TestMlpSnooping:
    def test_snooped_view_masks_fc_weights(self):
        set_init_rng(0)
        scheme = SealScheme(mlp(), 0.5, input_shape=(3, 32, 32))
        view = scheme.snooped_view()
        assert 0.0 < view.known_fraction() < 1.0
        hidden = scheme.plan.layers[1]
        values = view.weights[hidden.name]
        assert np.isnan(values).any()
        assert not np.isnan(values).all()
