"""Traffic-analysis tests: aggregation consistency and reporting."""

import pytest

from repro.core.analysis import (
    per_layer_encrypted_fraction,
    summarize_traffic,
    traffic_table,
)
from repro.core.plan import ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import resnet18, vgg16


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.5)


class TestSummary:
    def test_totals_add_up(self, plan):
        summary = summarize_traffic(plan)
        assert summary.total_bytes == summary.weight_bytes + summary.fmap_bytes
        assert summary.encrypted_bytes == (
            summary.encrypted_weight_bytes + summary.encrypted_fmap_bytes
        )

    def test_fractions_in_bounds(self, plan):
        summary = summarize_traffic(plan)
        assert 0.0 <= summary.encrypted_fraction <= 1.0
        assert 0.0 <= summary.weight_encrypted_fraction <= 1.0
        assert 0.0 <= summary.fmap_encrypted_fraction <= 1.0

    def test_weight_fraction_matches_plan(self, plan):
        summary = summarize_traffic(plan)
        assert summary.weight_encrypted_fraction == pytest.approx(
            plan.realized_ratio, abs=1e-6
        )

    def test_encrypted_fraction_grows_with_ratio(self):
        set_init_rng(0)
        model = resnet18(width_scale=0.125)
        fractions = [
            summarize_traffic(ModelEncryptionPlan.build(model, r)).encrypted_fraction
            for r in (0.2, 0.5, 0.8)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_str_mentions_model(self, plan):
        assert plan.model_name in str(summarize_traffic(plan))


class TestPerLayer:
    def test_one_entry_per_layer(self, plan):
        fractions = per_layer_encrypted_fraction(plan)
        assert len(fractions) == len(plan.layers) + len(plan.pools)

    def test_boundary_layer_fraction_is_one(self, plan):
        fractions = per_layer_encrypted_fraction(plan)
        first = plan.layers[0].name
        assert fractions[first] == pytest.approx(1.0)

    def test_table_renders_all_layers(self, plan):
        table = traffic_table(plan.layer_traffic())
        for layer in plan.layers:
            assert layer.name in table
