"""Auxiliary per-channel data (bias/batch-norm) mask tests."""

import numpy as np
import pytest

from repro.core.plan import ModelEncryptionPlan
from repro.core.seal import SealScheme
from repro.nn.layers import set_init_rng
from repro.nn.models import resnet18, vgg16


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(width_scale=0.125), 0.5)


class TestAuxChannelMasks:
    def test_one_mask_per_batchnorm(self, plan):
        masks = plan.aux_channel_masks()
        # VGG-16 has one BN per CONV layer.
        assert len(masks) == 13

    def test_mask_length_matches_channels(self, plan):
        masks = plan.aux_channel_masks()
        by_name = {a.module_name: a for a in plan.aux}
        for name, mask in masks.items():
            assert mask.shape == (by_name[name].channels,)

    def test_bn_mask_equals_next_layer_row_mask(self, plan):
        """A BN following conv_i normalises conv_i's output channels, which
        are the next weight layer's input channels: masks must coincide."""
        masks = plan.aux_channel_masks()
        for aux in plan.aux:
            consumers = [p for p in plan.layers if p.in_group == aux.group]
            for consumer in consumers:
                if consumer.n_rows == aux.channels:
                    np.testing.assert_array_equal(
                        masks[aux.module_name], consumer.row_mask
                    )

    def test_resnet_has_aux_plans(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(resnet18(width_scale=0.125), 0.5)
        assert len(plan.aux) >= 17


class TestBiasMasks:
    def test_every_layer_has_a_bias_mask(self, plan):
        masks = plan.bias_masks()
        assert set(masks) == {p.name for p in plan.layers}

    def test_boundary_layers_hide_bias(self, plan):
        masks = plan.bias_masks()
        for layer in plan.layers:
            if layer.fully_encrypted:
                assert masks[layer.name].all()

    def test_bias_mask_length(self, plan):
        masks = plan.bias_masks()
        for layer in plan.layers:
            assert masks[layer.name].shape == (layer.weight_shape[0],)


class TestSnoopedAux:
    @pytest.fixture(scope="class")
    def view(self):
        set_init_rng(0)
        return SealScheme(vgg16(width_scale=0.125), 0.5).snooped_view()

    def test_bn_params_exposed(self, view):
        gamma_keys = [k for k in view.aux_params if k.endswith(".gamma")]
        assert len(gamma_keys) == 13

    def test_running_stats_exposed(self, view):
        mean_keys = [k for k in view.aux_buffers if k.endswith(".running_mean")]
        assert len(mean_keys) == 13

    def test_nan_matches_mask(self, view):
        for name, values in view.aux_params.items():
            mask = view.aux_masks[name]
            assert np.isnan(values[mask]).all()
            assert not np.isnan(values[~mask]).any()

    def test_partial_knowledge_at_mid_ratio(self, view):
        # At 50% some BN channels must be known and some hidden.
        masks = [m for k, m in view.aux_masks.items() if k.endswith(".gamma")]
        assert any(m.any() and (~m).any() for m in masks)

    def test_ratio_one_hides_all_aux(self):
        set_init_rng(0)
        view = SealScheme(vgg16(width_scale=0.125), 1.0).snooped_view()
        for name, values in view.aux_params.items():
            if name.endswith((".gamma", ".beta")):
                assert np.isnan(values).all()
