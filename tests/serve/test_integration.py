"""Integration: many concurrent clients against a live server.

The acceptance bar from the serving guide: N clients hammering
seal → unseal → verify concurrently must produce results byte-identical
to the serial :class:`LineSealer` pipeline, while the micro-batcher
actually coalesces (strictly fewer batches than batched requests).
"""

import asyncio

import pytest

from repro.core.seal import LineSealer
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.serve import ModelServer, ServeClient, ServeConfig

LINE = 128
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 6


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def payload_for(client_index: int, request_index: int) -> bytes:
    """Distinct, unaligned payloads so mixups are detectable."""
    stamp = bytes([client_index, request_index]) * 40
    return stamp + bytes(range((client_index * 7 + request_index * 3) % 90 + 1))


def test_concurrent_clients_match_serial_pipeline(registry):
    config = ServeConfig(max_batch=32)
    serial = LineSealer(config.key)

    async def one_client(port: int, index: int) -> None:
        async with await ServeClient.connect("127.0.0.1", port) as client:
            for request_index in range(REQUESTS_PER_CLIENT):
                payload = payload_for(index, request_index)
                base = 0x1000 * (index + 1)
                counter = request_index + 1
                sealed = await client.seal(
                    payload, base_address=base, counter=counter,
                    tenant=f"tenant-{index}",
                )
                reference = serial.seal(
                    payload, base_address=base, counter=counter
                )
                assert sealed["ciphertext"] == reference.ciphertext
                assert sealed["tags"] == list(reference.tags)
                assert serial.unseal(reference) == payload
                round_tripped = await client.unseal(
                    **sealed, tenant=f"tenant-{index}"
                )
                assert round_tripped == payload
                verdict = await client.verify(
                    sealed["ciphertext"], sealed["tags"],
                    base_address=base, counter=counter,
                )
                assert verdict["all_ok"] is True

    async def scenario():
        async with ModelServer(config) as server:
            await asyncio.gather(
                *(one_client(server.port, i) for i in range(N_CLIENTS))
            )

    asyncio.run(scenario())

    counters = registry.counters
    total_batched = N_CLIENTS * REQUESTS_PER_CLIENT * 3  # seal+unseal+verify
    assert counters["serve.batch.requests"] == total_batched
    assert counters["serve.requests.ok"] == total_batched
    # Coalescing must actually happen under this much concurrency.
    assert counters["serve.batches"] < total_batched
    assert counters.get("serve.requests.rejected.backpressure", 0) == 0


def test_one_connection_pipelines_out_of_order(registry):
    """A single connection with many in-flight ids still correlates."""

    async def scenario():
        async with ModelServer(ServeConfig()) as server:
            async with await ServeClient.connect(
                "127.0.0.1", server.port
            ) as client:
                payloads = [payload_for(9, i) for i in range(10)]
                sealed = await asyncio.gather(
                    *(
                        client.seal(p, counter=i + 1)
                        for i, p in enumerate(payloads)
                    )
                )
                opened = await asyncio.gather(
                    *(client.unseal(**s) for s in sealed)
                )
                assert opened == payloads

    asyncio.run(scenario())
