"""Resilience tests: reconnect, retry, drain, health, degraded mode.

Exercises the failure paths end to end on loopback sockets: servers are
restarted under a live client, responses are dropped mid-write via the
``REPRO_CHAOS`` service-layer hooks, worker pools are crashed into the
degraded-mode circuit breaker, and a draining server is probed for the
liveness exemptions.  The crypto-specific invariant throughout: a
retried pinned-counter ``seal`` must be a byte-identical replay
(``serve.seal.replays``), never a fresh encryption or a pad-reuse event.
"""

import asyncio
import contextlib
import json

import pytest

from repro.core.seal import LineSealer
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.serve import (
    ModelServer,
    RetryPolicy,
    ServeClient,
    ServeConfig,
    ServeError,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import ErrorCode, Request

LINE = 128

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.1)
NO_RETRY = RetryPolicy(max_attempts=1)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@contextlib.asynccontextmanager
async def serving(config: ServeConfig, retry: RetryPolicy = FAST_RETRY):
    async with ModelServer(config) as server:
        client = await ServeClient.connect("127.0.0.1", server.port, retry=retry)
        try:
            yield server, client
        finally:
            await client.close()


def run(coroutine):
    return asyncio.run(coroutine)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=2.0, jitter=0.5)
        delays = [policy.delay(n, "c7") for n in range(8)]
        assert delays == [policy.delay(n, "c7") for n in range(8)]
        for n, delay in enumerate(delays):
            cap = min(2.0, 0.05 * 2**n)
            assert cap / 2 <= delay <= cap
        # Distinct tokens decorrelate (same backoff, different jitter).
        assert policy.delay(3, "c7") != policy.delay(3, "c8")

    def test_retry_after_raises_the_pause(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=2.0)
        assert policy.delay(0, "t", retry_after=0.5) >= 0.5
        # ... but is still capped by max_delay.
        assert policy.delay(0, "t", retry_after=99.0) <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetryability:
    def test_classification(self):
        retryable = ServeClient._retryable
        for op in ("verify", "plan", "stats", "ping", "health"):
            assert retryable(op, {})
        assert retryable("unseal", {"counter": 1})
        assert retryable("seal", {"counter": 5})  # pinned: safe replay
        assert not retryable("seal", {})  # defaulted: would burn counters
        assert not retryable("seal", {"counter": None})
        assert not retryable("shutdown", {})


class TestConnectionLoss:
    def test_in_flight_future_fails_promptly_typed(self, registry):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()  # swallow the request...
                writer.close()  # ...and hang up without answering

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServeClient.connect("127.0.0.1", port, retry=NO_RETRY)
            try:
                with pytest.raises(ServeError) as info:
                    await asyncio.wait_for(client.ping(), timeout=2.0)
                assert info.value.code is ErrorCode.CONNECTION_LOST
                assert info.value.status == 503
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            assert registry.counters["serve.client.connection_lost"] >= 1

        run(scenario())

    def test_close_fails_in_flight_and_is_idempotent(self, registry):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                await asyncio.sleep(3600)  # never answer, never close

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServeClient.connect("127.0.0.1", port, retry=NO_RETRY)
            pending = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0.05)  # let the request hit the wire
            await client.close()
            with pytest.raises(ServeError) as info:
                await asyncio.wait_for(pending, timeout=2.0)
            assert info.value.code is ErrorCode.CONNECTION_LOST
            await client.close()  # second close: no-op, no raise
            with pytest.raises(ServeError):
                await client.ping()  # closed client refuses new work
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_reconnects_after_server_restart(self, registry):
        async def scenario():
            config = ServeConfig()
            async with ModelServer(config) as first:
                port = first.port
                client = await ServeClient.connect("127.0.0.1", port, retry=FAST_RETRY)
                assert (await client.ping())["pong"] is True
            # First server is gone; bring a replacement up on the same port.
            async with ModelServer(ServeConfig(port=port)):
                sealed = await client.seal(b"r" * LINE, counter=11)
                assert sealed["counter"] == 11
                await client.close()
            assert registry.counters["serve.client.reconnects"] >= 1

        run(scenario())


class TestChaosDropAndStall:
    def test_dropped_response_is_retried_transparently(
        self, registry, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"drop": ["serve:droppy"], "sentinel_dir": str(tmp_path)}),
        )

        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                sealed = await client.seal(b"d" * LINE, counter=3, tenant="ok")
                verdict = await client.verify(
                    sealed["ciphertext"], sealed["tags"],
                    counter=3, tenant="droppy",
                )
                assert verdict["all_ok"] is True
            assert registry.counters["serve.chaos.connection_drops"] == 1
            assert registry.counters["serve.client.retries"] >= 1
            assert registry.counters["serve.client.retries.verify"] >= 1
            assert registry.counters["serve.client.reconnects"] >= 1

        run(scenario())

    def test_pinned_seal_retry_is_byte_identical_replay(
        self, registry, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"drop": ["serve:sealdrop"], "sentinel_dir": str(tmp_path)}),
        )

        async def scenario():
            config = ServeConfig()
            async with serving(config) as (_, client):
                payload = b"\xa5" * 300
                sealed = await client.seal(
                    payload, base_address=0x40, counter=77, tenant="sealdrop"
                )
                reference = LineSealer(config.key).seal(
                    payload, base_address=0x40, counter=77
                )
                assert sealed["ciphertext"] == reference.ciphertext
                assert sealed["tags"] == list(reference.tags)
                assert await client.unseal(**sealed) == payload
            # The replayed seal hit the same (base_address, counter) pair
            # with identical bytes: benign replay, NOT a pad-reuse event.
            assert registry.counters["serve.client.retries.seal"] >= 1
            assert registry.counters["serve.seal.replays"] == 1
            assert "serve.seal.pad_reuse" not in registry.counters

        run(scenario())

    def test_unpinned_seal_is_not_retried(self, registry, monkeypatch, tmp_path):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"drop": ["serve:lossy"], "sentinel_dir": str(tmp_path)}),
        )

        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                with pytest.raises(ServeError) as info:
                    await client.seal(b"u" * LINE, tenant="lossy")
                assert info.value.code is ErrorCode.CONNECTION_LOST
            assert "serve.client.retries.seal" not in registry.counters

        run(scenario())

    def test_stalled_write_delays_but_delivers(
        self, registry, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps(
                {
                    "stall": ["serve:slow"],
                    "stall_seconds": 0.05,
                    "sentinel_dir": str(tmp_path),
                }
            ),
        )

        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                assert (
                    await client.request("ping", tenant="slow")
                )["pong"] is True
            assert registry.counters["serve.chaos.write_stalls"] == 1

        run(scenario())


class TestDrain:
    def test_drain_rejects_work_but_answers_liveness(self, registry):
        async def scenario():
            async with serving(ServeConfig(drain_timeout=0.5)) as (server, client):
                await client.seal(b"w" * LINE, counter=2)
                assert await server.drain() is True
                # Work is refused with a typed, dated rejection...
                with pytest.raises(ServeError) as info:
                    await client.verify(b"x" * LINE, [b"t" * 8], counter=2)
                assert info.value.code is ErrorCode.UNAVAILABLE
                assert info.value.detail and "retry_after" in info.value.detail
                # ...while liveness ops keep answering.
                assert (await client.ping())["pong"] is True
                health = await client.health()
                assert health["status"] == "draining"
                assert health["draining"] is True
                stats = await client.stats()
                assert stats["counters"]["serve.requests.rejected.draining"] >= 1
            assert registry.counters["serve.drain.started"] == 1
            assert registry.counters["serve.drain.completed"] == 1

        run(scenario())

    def test_drain_times_out_with_stuck_in_flight(self, registry):
        async def scenario():
            async with ModelServer(ServeConfig()) as server:
                server._in_flight = 1  # simulate a stuck request
                assert await server.drain(timeout=0.1) is False
                server._in_flight = 0
            assert registry.counters["serve.drain.timeout"] == 1

        run(scenario())

    def test_drain_is_idempotent(self, registry):
        async def scenario():
            async with ModelServer(ServeConfig()) as server:
                first = asyncio.ensure_future(server.drain(timeout=0.5))
                second = asyncio.ensure_future(server.drain(timeout=0.5))
                assert await first is True
                assert await second is True
            assert registry.counters["serve.drain.started"] == 1

        run(scenario())


class TestHealth:
    def test_health_reports_queue_and_workers(self, registry):
        async def scenario():
            async with serving(ServeConfig(workers=0)) as (_, client):
                health = await client.health()
                assert health["status"] == "ok"
                assert health["degraded"] is False
                assert set(health["queued"]) == {"seal", "unseal", "verify"}
                assert health["workers"]["configured"] == 0
                assert health["workers"]["pool_live"] is False

        run(scenario())

    def test_health_is_quota_and_backpressure_exempt(self, registry):
        async def scenario():
            config = ServeConfig(quota_rate=1e-9, quota_burst=1e-9, queue_limit=1)
            async with serving(config) as (server, client):
                with pytest.raises(ServeError) as info:
                    await client.seal(b"q" * LINE, counter=1)
                assert info.value.code is ErrorCode.QUOTA_EXHAUSTED
                # Saturate the admission queue artificially: liveness ops
                # must answer even when every slot is taken.
                server._in_flight = server.config.queue_limit
                for op in ("ping", "stats", "health"):
                    response = await server.handle_request(Request(id="x", op=op))
                    assert response.ok, op
                server._in_flight = 0

        run(scenario())


class TestDegradedMode:
    def test_circuit_opens_and_serves_inline(self, registry, monkeypatch):
        # No sentinel_dir: the crash fires on *every* pool attempt, so
        # only the degraded fallback (which strips worker chaos) can
        # possibly serve this tenant.
        monkeypatch.setenv(
            "REPRO_CHAOS", json.dumps({"crash": ["serve:boom"]})
        )

        async def scenario():
            config = ServeConfig(
                workers=1,
                request_timeout=30.0,
                degraded_threshold=1,
                degraded_recovery=60.0,
            )
            async with serving(config, retry=NO_RETRY) as (server, client):
                with pytest.raises(ServeError) as info:
                    await client.seal(b"b" * LINE, tenant="boom")
                assert info.value.code is ErrorCode.CRASHED
                assert server.degraded is True
                # Degraded now: the same request succeeds inline — chaos
                # is stripped on the fallback path, by design.
                sealed = await client.seal(b"b" * LINE, counter=4, tenant="boom")
                reference = LineSealer(config.key).seal(
                    b"b" * LINE, base_address=0, counter=4
                )
                assert sealed["ciphertext"] == reference.ciphertext
                health = await client.health()
                assert health["status"] == "degraded"
            assert registry.counters["serve.degraded.entered"] == 1
            assert registry.counters["serve.degraded.batches"] >= 1
            assert registry.counters["serve.degraded.requests"] >= 1

        run(scenario())

    def test_recovery_probe_closes_the_circuit(
        self, registry, monkeypatch, tmp_path
    ):
        # once-semantics: the crash fires exactly once, so the recovery
        # probe finds a healthy pool and the circuit closes again.
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"crash": ["serve:flaky"], "sentinel_dir": str(tmp_path)}),
        )

        async def scenario():
            config = ServeConfig(
                workers=1,
                request_timeout=30.0,
                degraded_threshold=1,
                degraded_recovery=0.0,  # probe immediately
            )
            async with serving(config) as (server, client):
                # Pinned counter: the client retries the crashed seal; the
                # retry is the recovery probe and heals the server.
                sealed = await client.seal(
                    b"f" * LINE, counter=21, tenant="flaky"
                )
                assert sealed["counter"] == 21
                assert server.degraded is False
            assert registry.counters["serve.degraded.entered"] == 1
            assert registry.counters["serve.degraded.probes"] >= 1
            assert registry.counters["serve.degraded.recovered"] == 1
            assert registry.counters["serve.client.retries.seal"] >= 1

        run(scenario())


class TestBatcherStop:
    def test_submit_after_stop_fails_fast(self):
        async def scenario():
            async def execute(items):
                return list(items)

            batcher = MicroBatcher(execute)
            await batcher.start()
            assert await batcher.submit("x") == "x"
            await batcher.stop()
            with pytest.raises(RuntimeError, match="batcher stopped"):
                await batcher.submit("y")
            await batcher.start()  # explicit restart re-arms it
            assert await batcher.submit("z") == "z"
            await batcher.stop()

        run(scenario())
