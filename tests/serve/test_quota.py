"""Token-bucket quota tests (deterministic via the injectable clock)."""

import pytest

from repro.serve.quota import QuotaManager, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire(3)
        assert not bucket.try_acquire(1)

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert bucket.try_acquire(4)
        clock.now = 1.0  # +2 tokens
        assert bucket.try_acquire(2)
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.now = 60.0
        assert bucket.available() == pytest.approx(2.0)

    def test_fractional_costs(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert bucket.try_acquire(0.5)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=1.0).try_acquire(0)


class TestQuotaManager:
    def test_disabled_admits_everything_without_buckets(self):
        manager = QuotaManager(rate=0.0)
        assert not manager.enabled
        assert manager.try_acquire("anyone", 10_000)
        assert manager.tenants() == []

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        manager = QuotaManager(rate=1.0, burst=2.0, clock=clock)
        assert manager.try_acquire("a", 2)
        assert not manager.try_acquire("a", 1)
        assert manager.try_acquire("b", 2)  # b has its own bucket
        assert manager.tenants() == ["a", "b"]

    def test_default_burst_is_rate(self):
        manager = QuotaManager(rate=5.0, clock=FakeClock())
        assert manager.bucket("t").burst == 5.0
