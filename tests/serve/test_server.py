"""Server behaviour tests: admission control, hardening, observability.

Each test runs a real :class:`ModelServer` on a loopback socket inside its
own event loop — small and fast because the payloads are a few cache
lines.  The worker-pool tests reuse the ``REPRO_CHAOS`` hooks from
:mod:`repro.faults.chaos` (label ``serve:<tenant>``) to crash and hang
workers on demand.
"""

import asyncio
import contextlib
import json

import pytest

from repro.core.seal import LineSealer
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.serve import ModelServer, ServeClient, ServeConfig, ServeError
from repro.serve.protocol import STREAM_LIMIT_BYTES, ErrorCode

LINE = 128


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@contextlib.asynccontextmanager
async def serving(config: ServeConfig):
    async with ModelServer(config) as server:
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            yield server, client
        finally:
            await client.close()


def run(coroutine):
    return asyncio.run(coroutine)


class TestRoundTrips:
    def test_seal_unseal_verify(self, registry):
        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                payload = bytes(range(256)) + b"tail"  # unaligned length
                sealed = await client.seal(
                    payload, base_address=0x2000, counter=9
                )
                assert len(sealed["ciphertext"]) % LINE == 0
                assert sealed["length"] == len(payload)
                assert await client.unseal(**sealed) == payload
                verdict = await client.verify(
                    sealed["ciphertext"], sealed["tags"],
                    base_address=0x2000, counter=9,
                )
                assert verdict["all_ok"] is True

        run(scenario())

    def test_served_seal_matches_serial_sealer(self, registry):
        async def scenario():
            config = ServeConfig()
            async with serving(config) as (_, client):
                payload = b"\x5a" * 777
                sealed = await client.seal(payload, base_address=64, counter=3)
                reference = LineSealer(config.key).seal(
                    payload, base_address=64, counter=3
                )
                assert sealed["ciphertext"] == reference.ciphertext
                assert sealed["tags"] == list(reference.tags)

        run(scenario())

    def test_tampered_unseal_names_lines(self, registry):
        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                sealed = await client.seal(b"\x11" * (LINE * 3))
                corrupted = bytearray(sealed["ciphertext"])
                corrupted[LINE] ^= 0x01  # line 1
                with pytest.raises(ServeError) as info:
                    await client.unseal(
                        bytes(corrupted), sealed["tags"],
                        base_address=sealed["base_address"],
                        counter=sealed["counter"],
                        length=sealed["length"],
                    )
                assert info.value.code is ErrorCode.VERIFY_FAILED
                assert info.value.status == 403
                assert info.value.detail == {"lines": [1]}
                verdict = await client.verify(
                    bytes(corrupted), sealed["tags"],
                    base_address=sealed["base_address"],
                    counter=sealed["counter"],
                )
                assert verdict["line_ok"] == [True, False, True]

        run(scenario())

    def test_plan_and_ping_and_stats(self, registry):
        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                assert (await client.ping())["pong"] is True
                plan = await client.plan("mlp", 0.5)
                assert plan["model"].startswith("MLP")
                assert 0.5 <= plan["realized_ratio"] <= 1.0
                assert any(layer["boundary"] for layer in plan["layers"])
                await client.seal(b"x" * LINE)
                stats = await client.stats()
                assert stats["protocol"] == "repro.serve/v1"
                assert stats["counters"]["serve.lines.sealed"] == 1
                assert stats["timers"]["serve.request"]["count"] >= 1

        run(scenario())

    def test_bad_requests_are_rejected_not_fatal(self, registry):
        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                for op, params in [
                    ("seal", {}),  # missing payload
                    ("seal", {"payload": ""}),  # empty payload
                    ("seal", {"payload": "###"}),  # invalid base64
                    ("unseal", {"ciphertext": "QQ==", "tags": []}),  # misaligned
                    ("plan", {"model": "gpt"}),  # unknown model
                    ("plan", {"ratio": 2.0}),  # out of range
                ]:
                    with pytest.raises(ServeError) as info:
                        await client.request(op, params)
                    assert info.value.code is ErrorCode.BAD_REQUEST
                # The connection survives all of the above.
                assert (await client.ping())["pong"] is True

        run(scenario())

    def test_shutdown_op_stops_server(self, registry):
        async def scenario():
            server = ModelServer(ServeConfig())
            port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_stopped())
            client = await ServeClient.connect("127.0.0.1", port)
            assert (await client.shutdown())["stopping"] is True
            await asyncio.wait_for(serve_task, timeout=5)
            await client.close()

        run(scenario())


class TestAdmissionControl:
    def test_backpressure_rejects_beyond_queue_limit(self, registry):
        async def scenario():
            config = ServeConfig(queue_limit=1, max_batch=1)
            async with serving(config) as (_, client):
                payload = b"p" * (LINE * 64)
                results = await asyncio.gather(
                    *(client.seal(payload) for _ in range(12)),
                    return_exceptions=True,
                )
                rejected = [
                    r for r in results
                    if isinstance(r, ServeError)
                    and r.code is ErrorCode.OVERLOADED
                ]
                succeeded = [r for r in results if isinstance(r, dict)]
                assert rejected and succeeded
                assert len(rejected) + len(succeeded) == 12
                stats = await client.stats()
                assert stats["counters"][
                    "serve.requests.rejected.backpressure"
                ] == len(rejected)

        run(scenario())

    def test_quota_charges_per_line_and_isolates_tenants(self, registry):
        async def scenario():
            # Negligible refill: the burst is the whole budget.
            config = ServeConfig(quota_rate=1e-6, quota_burst=4.0)
            async with serving(config) as (_, client):
                await client.seal(b"q" * (LINE * 4), tenant="meter")
                with pytest.raises(ServeError) as info:
                    await client.seal(b"q" * LINE, tenant="meter")
                assert info.value.code is ErrorCode.QUOTA_EXHAUSTED
                assert info.value.status == 429
                # A different tenant has an untouched bucket.
                await client.seal(b"q" * LINE, tenant="fresh")
                stats = await client.stats()
                assert stats["counters"]["serve.requests.rejected.quota"] == 1
                assert stats["tenants"] == ["fresh", "meter"]

        run(scenario())


class TestHardening:
    def test_worker_crash_is_isolated_and_pool_restarts(
        self, registry, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", json.dumps({"crash": ["serve:evil"]}))

        async def scenario():
            config = ServeConfig(workers=1, request_timeout=30.0)
            async with serving(config) as (_, client):
                # Explicit counter: the determinism assertion below needs
                # an identical keystream before and after the restart.
                before = await client.seal(b"c" * LINE, tenant="good", counter=7)
                with pytest.raises(ServeError) as info:
                    await client.seal(b"c" * LINE, tenant="evil")
                assert info.value.code is ErrorCode.CRASHED
                monkeypatch.delenv("REPRO_CHAOS")
                after = await client.seal(b"c" * LINE, tenant="good", counter=7)
                assert after["ciphertext"] == before["ciphertext"]
                stats = await client.stats()
                assert stats["counters"]["serve.pool_restarts"] == 1
                assert stats["counters"]["serve.worker_crashes"] == 1

        run(scenario())

    def test_hung_worker_times_out_and_pool_recovers(
        self, registry, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"hang": ["serve:sloth"], "hang_seconds": 60}),
        )

        async def scenario():
            config = ServeConfig(workers=1, request_timeout=0.8)
            async with serving(config) as (_, client):
                with pytest.raises(ServeError) as info:
                    await client.seal(b"t" * LINE, tenant="sloth")
                assert info.value.code is ErrorCode.TIMEOUT
                assert info.value.status == 504
                monkeypatch.delenv("REPRO_CHAOS")
                await client.seal(b"t" * LINE, tenant="good")
                stats = await client.stats()
                assert stats["counters"]["serve.requests.timeout"] == 1
                assert stats["counters"]["serve.pool_restarts"] == 1

        run(scenario())

    def test_inline_timeout_without_pool(self, registry, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps({"hang": ["serve:sloth"], "hang_seconds": 2}),
        )

        async def scenario():
            config = ServeConfig(workers=0, request_timeout=0.3)
            async with serving(config) as (_, client):
                with pytest.raises(ServeError) as info:
                    await client.seal(b"i" * LINE, tenant="sloth")
                assert info.value.code is ErrorCode.TIMEOUT

        run(scenario())


class TestStreamLimits:
    def test_large_payload_exceeds_default_stream_limit(self, registry):
        """A payload whose wire line tops asyncio's 64 KiB StreamReader
        default must round-trip (regression: start_server/open_connection
        now pass limit=STREAM_LIMIT_BYTES)."""

        async def scenario():
            config = ServeConfig()
            async with serving(config) as (_, client):
                payload = bytes(range(256)) * 384  # 96 KiB -> ~128 KiB line
                sealed = await client.seal(
                    payload, base_address=0x4000, counter=2
                )
                reference = LineSealer(config.key).seal(
                    payload, base_address=0x4000, counter=2
                )
                assert sealed["ciphertext"] == reference.ciphertext
                assert await client.unseal(**sealed) == payload

        run(scenario())

    def test_oversized_line_gets_error_response_then_close(self, registry):
        """A line over STREAM_LIMIT_BYTES draws a bad_request response
        (not a silent connection drop); framing is lost so the server
        then closes the connection."""

        async def scenario():
            async with ModelServer(ServeConfig()) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    writer.write(
                        b'{"id":"big","op":"ping","params":{"pad":"'
                        + b"x" * (STREAM_LIMIT_BYTES + 64)
                        + b'"}}\n'
                    )
                    with contextlib.suppress(
                        ConnectionResetError, BrokenPipeError
                    ):
                        await writer.drain()
                    document = json.loads(await reader.readline())
                    assert document["ok"] is False
                    assert document["error"]["code"] == "bad_request"
                    assert "exceeds" in document["error"]["message"]
                    assert await reader.readline() == b""  # closed
                finally:
                    writer.close()
                    with contextlib.suppress(
                        ConnectionResetError, BrokenPipeError, OSError
                    ):
                        await writer.wait_closed()

        run(scenario())


class TestNonceHygiene:
    def test_defaulted_seals_never_share_a_counter(self, registry):
        """Omitting ``counter`` must yield a fresh server-assigned one
        per seal — two defaulted seals of the same bytes may never share
        a CTR pad (their ciphertext XOR would reveal the plaintext XOR).
        """

        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                payload = b"same bytes, sealed twice" * 8
                first = await client.seal(payload)
                second = await client.seal(payload)
                assert first["counter"] != second["counter"]
                assert first["ciphertext"] != second["ciphertext"]
                assert await client.unseal(**first) == payload
                assert await client.unseal(**second) == payload
                stats = await client.stats()
                assert "serve.seal.pad_reuse" not in stats["counters"]

        run(scenario())

    def test_explicit_counter_reuse_is_counted(self, registry):
        async def scenario():
            async with serving(ServeConfig()) as (_, client):
                await client.seal(b"a" * LINE, base_address=0, counter=5)
                await client.seal(b"b" * LINE, base_address=0, counter=5)
                # Different base address: a distinct pad, no reuse.
                await client.seal(
                    b"c" * LINE, base_address=LINE * 64, counter=5
                )
                stats = await client.stats()
                assert stats["counters"]["serve.seal.pad_reuse"] == 1

        run(scenario())


class TestShutdownGating:
    def test_shutdown_token_required_when_configured(self, registry):
        async def scenario():
            server = ModelServer(ServeConfig(shutdown_token="s3cret"))
            port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_stopped())
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                for attempt in (None, "wrong"):
                    with pytest.raises(ServeError) as info:
                        await client.shutdown(token=attempt)
                    assert info.value.code is ErrorCode.FORBIDDEN
                    assert info.value.status == 403
                assert (await client.ping())["pong"] is True  # still up
                stats = await client.stats()
                assert stats["counters"][
                    "serve.requests.rejected.shutdown"
                ] == 2
                result = await client.shutdown(token="s3cret")
                assert result["stopping"] is True
                await asyncio.wait_for(serve_task, timeout=5)
            finally:
                await client.close()

        run(scenario())

    def test_non_loopback_bind_refuses_unauthenticated_shutdown(
        self, registry
    ):
        async def scenario():
            config = ServeConfig(host="0.0.0.0")
            async with ModelServer(config) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                try:
                    with pytest.raises(ServeError) as info:
                        await client.shutdown()
                    assert info.value.code is ErrorCode.FORBIDDEN
                    assert (await client.ping())["pong"] is True
                finally:
                    await client.close()

        run(scenario())

    def test_allow_remote_shutdown_opts_in(self, registry):
        async def scenario():
            config = ServeConfig(host="0.0.0.0", allow_remote_shutdown=True)
            server = ModelServer(config)
            port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_stopped())
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                assert (await client.shutdown())["stopping"] is True
                await asyncio.wait_for(serve_task, timeout=5)
            finally:
                await client.close()

        run(scenario())
