"""Wire-protocol tests: strict decoding, round trips, error mapping."""

import json

import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    OPS,
    STREAM_LIMIT_BYTES,
    ErrorCode,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode_response,
    from_b64,
    require_int,
    require_tags,
    to_b64,
)


class TestDecodeRequest:
    def test_minimal(self):
        request = decode_request('{"id": "r1", "op": "ping"}')
        assert request.id == "r1"
        assert request.op == "ping"
        assert request.tenant == "default"
        assert request.params == {}

    def test_full(self):
        request = decode_request(
            '{"id": "r2", "op": "seal", "tenant": "acme", "params": {"x": 1}}'
        )
        assert request.tenant == "acme"
        assert request.params == {"x": 1}

    def test_bytes_input(self):
        assert decode_request(b'{"id": "r", "op": "stats"}').op == "stats"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "ping"}',  # missing id
            '{"id": "", "op": "ping"}',  # empty id
            '{"id": 3, "op": "ping"}',  # non-string id
            '{"id": "r", "op": "fry"}',  # unknown op
            '{"id": "r", "op": "ping", "tenant": ""}',
            '{"id": "r", "op": "ping", "params": []}',
            '{"id": "r", "op": "ping", "typo_field": 1}',  # strict fields
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_oversized_line_rejected(self):
        padding = "x" * MAX_LINE_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(f'{{"id": "r", "op": "ping", "params": {{"p": "{padding}"}}}}')

    def test_every_op_decodes(self):
        for op in OPS:
            assert decode_request(json.dumps({"id": "r", "op": op})).op == op


class TestResponses:
    def test_success_round_trip(self):
        request = Request(id="r9", op="ping")
        line = encode_response(request.success({"pong": True}))
        response = decode_response(line)
        assert response.ok and response.id == "r9"
        assert response.result == {"pong": True}

    def test_failure_round_trip_keeps_code_and_detail(self):
        request = Request(id="r9", op="unseal")
        line = encode_response(
            request.failure(
                ErrorCode.VERIFY_FAILED, "bad tags", {"lines": [0, 3]}
            )
        )
        document = json.loads(line)
        assert document["error"]["status"] == 403
        response = decode_response(line)
        assert not response.ok
        assert response.code is ErrorCode.VERIFY_FAILED
        assert response.detail == {"lines": [0, 3]}

    def test_unknown_error_code_degrades_to_internal(self):
        response = decode_response(
            '{"id": "r", "ok": false, "error": {"code": "novel", "message": "m"}}'
        )
        assert response.code is ErrorCode.INTERNAL

    def test_every_code_has_a_status(self):
        for code in ErrorCode:
            assert code.status in (400, 403, 429, 500, 503, 504)

    def test_stream_limit_covers_the_line_bound(self):
        # Any line the protocol admits must fit the StreamReader limit,
        # or readline would kill the connection on legal payloads.
        assert STREAM_LIMIT_BYTES > MAX_LINE_BYTES


class TestHelpers:
    def test_b64_round_trip(self):
        blob = bytes(range(256))
        assert from_b64(to_b64(blob)) == blob

    @pytest.mark.parametrize("bad", [None, 7, "not base64!!"])
    def test_bad_b64_rejected(self, bad):
        with pytest.raises(ProtocolError):
            from_b64(bad)

    def test_require_int(self):
        assert require_int({"n": 5}, "n") == 5
        assert require_int({}, "n", 3) == 3
        for params in ({}, {"n": "5"}, {"n": True}, {"n": -1}, {"n": 1.5}):
            with pytest.raises(ProtocolError):
                require_int(params, "n")

    def test_require_tags(self):
        tags = [to_b64(b"a" * 16), to_b64(b"b" * 16)]
        assert require_tags({"tags": tags}, 2) == [b"a" * 16, b"b" * 16]
        with pytest.raises(ProtocolError):
            require_tags({"tags": tags}, 3)  # count mismatch
        with pytest.raises(ProtocolError):
            require_tags({}, 2)
