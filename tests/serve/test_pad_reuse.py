"""Regression suite for the digest-aware CTR pad-reuse tracker.

The server remembers recent ``(base_address, counter)`` seal pairs with a
payload digest: a byte-identical repeat is a benign client retry
(``serve.seal.replays``), a different-bytes repeat is the
XOR-of-plaintexts leak (``serve.seal.pad_reuse``), and the LRU bound
evicts the *least recently seen* pair deterministically.
"""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.serve.server import ModelServer, PAD_REUSE_TRACKED, ServeConfig


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def make_server(**config) -> ModelServer:
    # ModelServer construction needs an event loop for its asyncio
    # primitives but no running server for the tracker under test.
    return asyncio.new_event_loop().run_until_complete(
        _construct(ServeConfig(**config))
    )


async def _construct(config: ServeConfig) -> ModelServer:
    return ModelServer(config)


LINES_A = [bytes([1]) * 128, bytes([2]) * 128]
LINES_B = [bytes([3]) * 128, bytes([4]) * 128]


def test_default_bound_is_the_module_constant():
    assert ServeConfig().pad_reuse_tracked == PAD_REUSE_TRACKED


def test_same_bytes_repeat_counts_replay_not_pad_reuse(registry):
    server = make_server()
    server._note_seal_pair(0x1000, 7, LINES_A)
    server._note_seal_pair(0x1000, 7, LINES_A)
    server._note_seal_pair(0x1000, 7, LINES_A)
    assert registry.counter("serve.seal.replays") == 2
    assert registry.counter("serve.seal.pad_reuse") == 0


def test_different_bytes_repeat_counts_pad_reuse(registry):
    server = make_server()
    server._note_seal_pair(0x1000, 7, LINES_A)
    server._note_seal_pair(0x1000, 7, LINES_B)
    assert registry.counter("serve.seal.replays") == 0
    assert registry.counter("serve.seal.pad_reuse") == 1


def test_distinct_pairs_count_nothing(registry):
    server = make_server()
    server._note_seal_pair(0x1000, 7, LINES_A)
    server._note_seal_pair(0x1000, 8, LINES_A)  # new counter
    server._note_seal_pair(0x2000, 7, LINES_A)  # new base address
    assert registry.counter("serve.seal.replays") == 0
    assert registry.counter("serve.seal.pad_reuse") == 0


def test_lru_bound_evicts_the_oldest_pair_deterministically(registry):
    server = make_server(pad_reuse_tracked=4)
    for index in range(5):  # fifth insert evicts pair 0
        server._note_seal_pair(0x1000 * index, 1, LINES_A)
    assert len(server._sealed_pairs) == 4
    assert (0x0000, 1) not in server._sealed_pairs
    assert (0x1000, 1) in server._sealed_pairs
    # pair 0 was evicted: re-noting it is a *fresh* pair, no reuse
    # signal — and its insert pushes out pair 1, the next-oldest
    server._note_seal_pair(0x0000, 1, LINES_B)
    assert registry.counter("serve.seal.pad_reuse") == 0
    assert (0x1000, 1) not in server._sealed_pairs
    # pair 2 is still tracked: a different-bytes repeat is flagged
    server._note_seal_pair(0x2000, 1, LINES_B)
    assert registry.counter("serve.seal.pad_reuse") == 1


def test_reuse_hit_refreshes_recency(registry):
    server = make_server(pad_reuse_tracked=2)
    server._note_seal_pair(0x1000, 1, LINES_A)  # oldest
    server._note_seal_pair(0x2000, 1, LINES_A)
    server._note_seal_pair(0x1000, 1, LINES_A)  # replay refreshes 0x1000
    server._note_seal_pair(0x3000, 1, LINES_A)  # evicts 0x2000, not 0x1000
    assert list(server._sealed_pairs) == [(0x1000, 1), (0x3000, 1)]
    server._note_seal_pair(0x1000, 1, LINES_B)
    assert registry.counter("serve.seal.pad_reuse") == 1
