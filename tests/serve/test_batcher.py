"""Micro-batcher tests: coalescing, failure isolation, shutdown."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.serve.batcher import MicroBatcher


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def run(coroutine):
    return asyncio.run(coroutine)


class TestCoalescing:
    def test_single_item_dispatches_immediately(self, registry):
        async def scenario():
            batcher = MicroBatcher(lambda items: _double(items))
            try:
                return await batcher.submit(21)
            finally:
                await batcher.stop()

        assert run(scenario()) == 42
        assert registry.counters["serve.batches"] == 1

    def test_concurrent_submissions_coalesce(self, registry):
        batch_sizes = []

        async def execute(items):
            batch_sizes.append(len(items))
            await asyncio.sleep(0.01)  # hold the drain loop busy
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(execute, max_batch=64)
            try:
                return await asyncio.gather(
                    *(batcher.submit(n) for n in range(20))
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert results == [n * 2 for n in range(20)]
        # First drain takes whatever raced in; while it executes the rest
        # queue up, so there must be strictly fewer batches than items.
        assert sum(batch_sizes) == 20
        assert len(batch_sizes) < 20
        assert registry.counters["serve.batch.requests"] == 20

    def test_max_batch_caps_drain(self, registry):
        batch_sizes = []

        async def execute(items):
            batch_sizes.append(len(items))
            await asyncio.sleep(0.005)
            return list(items)

        async def scenario():
            batcher = MicroBatcher(execute, max_batch=4)
            try:
                await asyncio.gather(*(batcher.submit(n) for n in range(10)))
            finally:
                await batcher.stop()

        run(scenario())
        assert max(batch_sizes) <= 4

    def test_window_waits_for_stragglers(self, registry):
        batch_sizes = []

        async def execute(items):
            batch_sizes.append(len(items))
            return list(items)

        async def scenario():
            batcher = MicroBatcher(execute, window_seconds=0.2)
            try:
                first = asyncio.create_task(batcher.submit(1))
                await asyncio.sleep(0.05)  # arrives inside the window
                second = asyncio.create_task(batcher.submit(2))
                await asyncio.gather(first, second)
            finally:
                await batcher.stop()

        run(scenario())
        assert batch_sizes == [2]


class TestFailures:
    def test_exception_result_fails_only_that_item(self, registry):
        async def execute(items):
            return [
                ValueError("odd") if item % 2 else item for item in items
            ]

        async def scenario():
            batcher = MicroBatcher(execute)
            try:
                results = await asyncio.gather(
                    *(batcher.submit(n) for n in range(4)),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()
            return results

        results = run(scenario())
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], ValueError)
        assert isinstance(results[3], ValueError)

    def test_executor_exception_fails_whole_batch(self, registry):
        async def execute(items):
            raise RuntimeError("pool died")

        async def scenario():
            batcher = MicroBatcher(execute)
            try:
                return await asyncio.gather(
                    *(batcher.submit(n) for n in range(3)),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_fails_batch(self, registry):
        async def execute(items):
            return [1]  # wrong arity

        async def scenario():
            batcher = MicroBatcher(execute)
            try:
                return await asyncio.gather(
                    batcher.submit(1), batcher.submit(2),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_stop_fails_queued_submitters(self, registry):
        async def execute(items):
            await asyncio.sleep(30)
            return list(items)

        async def scenario():
            batcher = MicroBatcher(execute)
            task = asyncio.create_task(batcher.submit(1))
            await asyncio.sleep(0.01)
            await batcher.stop()
            with pytest.raises(RuntimeError):
                await task

        run(scenario())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(_double, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(_double, window_seconds=-1.0)


async def _double(items):
    return [item * 2 for item in items]
