"""Tests for the seal-as-a-service front end (repro.serve)."""
