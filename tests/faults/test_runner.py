"""Hardened runner: retries, timeouts, crash isolation, named failures.

The pool workers used here are module-level (picklable) and coordinate
one-shot faults through sentinel files, because a retried attempt runs in
a different process than the one that failed.
"""

import os
import time

import pytest

from repro.faults.runner import RetryPolicy, UnitExecutionError, run_hardened
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Picklable workers
# ----------------------------------------------------------------------
def _double(value):
    return value * 2


def _fail_once(arg):
    sentinel, value = arg
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        raise RuntimeError("deliberate first-attempt failure")
    return value


def _crash_once(arg):
    sentinel, value = arg
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(42)
    return value


def _always_fail(value):
    raise RuntimeError(f"poisoned unit {value}")


def _hang_or_return(arg):
    seconds, value = arg
    time.sleep(seconds)
    return value


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_seconds=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_seconds=-1)
    policy = RetryPolicy(max_attempts=3, backoff_seconds=0.1, backoff_factor=2.0)
    assert [policy.backoff(n) for n in (1, 2, 3)] == [0.1, 0.2, 0.4]


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def test_serial_success_and_delivery_order():
    delivered = []
    results = run_hardened(
        _double,
        [("a", "first", 1), ("b", "second", 2)],
        jobs=1,
        metrics=MetricsRegistry(),
        on_result=lambda key, item, value: delivered.append((key, value)),
    )
    assert results == {"a": 2, "b": 4}
    assert delivered == [("a", 2), ("b", 4)]


def test_serial_retry_recovers(tmp_path):
    metrics = MetricsRegistry()
    sentinel = str(tmp_path / "fired")
    results = run_hardened(
        _fail_once,
        [("k", "flaky", (sentinel, 7))],
        jobs=1,
        policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
        metrics=metrics,
    )
    assert results == {"k": 7}
    assert metrics.counter("runner.attempts") == 2
    assert metrics.counter("runner.retries") == 1
    assert metrics.counter("runner.failures") == 1


def test_serial_failure_names_the_unit_and_spares_the_rest():
    metrics = MetricsRegistry()
    delivered = []
    with pytest.raises(UnitExecutionError) as excinfo:
        run_hardened(
            lambda v: _always_fail(v) if v == "bad" else v,
            [("good-key", "good", "fine"), ("bad-key-0123456789", "poisoned", "bad")],
            jobs=1,
            metrics=metrics,
            on_result=lambda key, item, value: delivered.append(key),
        )
    error = excinfo.value
    assert error.key.startswith("bad-key")
    assert error.label == "poisoned"
    assert error.kind == "error"
    assert "bad-key" in str(error) and "poisoned" in str(error)
    # the healthy unit completed and was delivered before the raise
    assert delivered == ["good-key"]


# ----------------------------------------------------------------------
# Pool path
# ----------------------------------------------------------------------
def test_pool_success(tmp_path):
    results = run_hardened(
        _double,
        [(f"k{i}", f"unit{i}", i) for i in range(4)],
        jobs=2,
        metrics=MetricsRegistry(),
    )
    assert results == {f"k{i}": i * 2 for i in range(4)}


def test_pool_crash_is_isolated_and_retried(tmp_path):
    metrics = MetricsRegistry()
    sentinel = str(tmp_path / "crashed")
    todo = [
        ("crash", "crasher", (sentinel, 1)),
        ("ok1", "bystander1", (str(tmp_path / "x1"), 2)),
        ("ok2", "bystander2", (str(tmp_path / "x2"), 3)),
    ]
    results = run_hardened(
        _crash_once,
        todo,
        jobs=2,
        policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
        metrics=metrics,
    )
    assert results == {"crash": 1, "ok1": 2, "ok2": 3}
    assert metrics.counter("runner.crashes") >= 1
    assert metrics.counter("runner.pool_restarts") >= 1


def test_pool_poisoned_unit_fails_alone(tmp_path):
    metrics = MetricsRegistry()
    delivered = []
    # pre-fired sentinels: the bystanders succeed on their first attempt
    (tmp_path / "a").touch()
    (tmp_path / "b").touch()
    with pytest.raises(UnitExecutionError) as excinfo:
        run_hardened(
            _fail_once,
            [
                # missing sentinel dir → _fail_once raises on every attempt
                ("poison", "poisoned", (str(tmp_path / "nodir" / "x"), 0)),
                ("ok1", "fine1", (str(tmp_path / "a"), 1)),
                ("ok2", "fine2", (str(tmp_path / "b"), 2)),
            ],
            jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            metrics=metrics,
            on_result=lambda key, item, value: delivered.append(key),
        )
    assert excinfo.value.key == "poison"
    assert excinfo.value.attempts == 2
    assert metrics.counter("runner.retries") == 1
    assert sorted(delivered) == ["ok1", "ok2"]


def test_pool_timeout_kills_the_hung_unit():
    metrics = MetricsRegistry()
    delivered = []
    with pytest.raises(UnitExecutionError) as excinfo:
        run_hardened(
            _hang_or_return,
            [("hang", "hung", (60.0, 0)), ("quick", "quick", (0.0, 5))],
            jobs=2,
            policy=RetryPolicy(max_attempts=1, timeout_seconds=0.5),
            metrics=metrics,
            on_result=lambda key, item, value: delivered.append((key, value)),
        )
    assert excinfo.value.key == "hang"
    assert excinfo.value.kind == "timeout"
    assert ("quick", 5) in delivered
    assert metrics.counter("runner.timeouts") == 1


def test_pool_multiple_failures_are_aggregated(tmp_path):
    with pytest.raises(UnitExecutionError) as excinfo:
        run_hardened(
            _always_fail,
            [("k1", "first", 1), ("k2", "second", 2), ("k3", "third", 3)],
            jobs=2,
            metrics=MetricsRegistry(),
        )
    assert len(excinfo.value.more_failures) == 2
    names = {excinfo.value.label} | {f.label for f in excinfo.value.more_failures}
    assert names == {"first", "second", "third"}
