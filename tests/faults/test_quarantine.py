"""Quarantine: atomic move-aside with reason sidecars, evidence preserved."""

from repro.faults.quarantine import quarantine_artifact


def test_missing_file_is_a_noop(tmp_path):
    assert quarantine_artifact(tmp_path / "absent.json") is None


def test_move_and_reason_sidecar(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text("{broken")
    target = quarantine_artifact(path, reason="truncated JSON")
    assert target == tmp_path / "plan.json.quarantine"
    assert not path.exists()
    assert target.read_text() == "{broken"
    assert "truncated JSON" in (tmp_path / "plan.json.quarantine.reason").read_text()


def test_collisions_keep_earlier_evidence(tmp_path):
    path = tmp_path / "ckpt.json"
    targets = []
    for content in ("first", "second", "third"):
        path.write_text(content)
        targets.append(quarantine_artifact(path))
    assert [t.name for t in targets] == [
        "ckpt.json.quarantine",
        "ckpt.json.quarantine.1",
        "ckpt.json.quarantine.2",
    ]
    assert [t.read_text() for t in targets] == ["first", "second", "third"]
