"""Chaos hooks: env parsing, unit selection, once-semantics, fail action."""

import time

import pytest

from repro.faults.chaos import (
    CHAOS_ENV_VAR,
    ChaosConfig,
    ChaosFault,
    chaos_io_action,
    chaos_probe,
)


def test_disabled_without_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    assert ChaosConfig.from_env() is None
    chaos_probe("anykey", "anylabel")  # no-op


@pytest.mark.parametrize("bad", ["not json", "[1,2]", '"str"', '{"hang_seconds": "x"}'])
def test_malformed_spec_disables_chaos(bad):
    assert ChaosConfig.from_env({CHAOS_ENV_VAR: bad}) is None


def test_parsing():
    config = ChaosConfig.from_env(
        {
            CHAOS_ENV_VAR: '{"fail": ["a"], "crash": ["b"], "hang": ["c"],'
            ' "hang_seconds": 1.5, "once": false, "exit_code": 7}'
        }
    )
    assert config.fail == ("a",)
    assert config.crash == ("b",)
    assert config.hang == ("c",)
    assert config.hang_seconds == 1.5
    assert config.once is False
    assert config.exit_code == 7


def test_fail_action_matches_label_and_key_prefix(monkeypatch):
    monkeypatch.setenv(CHAOS_ENV_VAR, '{"fail": ["seal@0.50", "abc123"]}')
    with pytest.raises(ChaosFault, match="seal@0.50"):
        chaos_probe("ffff", "seal@0.50")
    with pytest.raises(ChaosFault):
        chaos_probe("abc123def", "other")  # key prefix
    chaos_probe("ffff", "white-box")  # unmatched: no-op


def test_once_semantics_via_sentinel_dir(monkeypatch, tmp_path):
    monkeypatch.setenv(
        CHAOS_ENV_VAR,
        '{"fail": ["target"], "sentinel_dir": "%s"}' % tmp_path,
    )
    with pytest.raises(ChaosFault):
        chaos_probe("k", "target")
    # the sentinel was written before the fault fired: second run is clean
    chaos_probe("k", "target")
    assert list(tmp_path.glob("chaos.fail.*"))


def test_without_sentinel_dir_fault_fires_every_time(monkeypatch):
    monkeypatch.setenv(CHAOS_ENV_VAR, '{"fail": ["t"]}')
    for _ in range(2):
        with pytest.raises(ChaosFault):
            chaos_probe("k", "t")


def test_hang_action_sleeps(monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV_VAR, '{"hang": ["t"], "hang_seconds": 0.05, "once": false}'
    )
    start = time.perf_counter()
    chaos_probe("k", "t")
    assert time.perf_counter() - start >= 0.05


def test_io_action_disabled_without_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    assert chaos_io_action("anykey", "anylabel") is None


def test_io_action_drop_and_stall(monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV_VAR,
        '{"drop": ["serve:d"], "stall": ["serve:s"],'
        ' "stall_seconds": 0.3, "once": false}',
    )
    assert chaos_io_action("r1", "serve:d") == ("drop", 0.0)
    assert chaos_io_action("r2", "serve:s") == ("stall", 0.3)
    assert chaos_io_action("r3", "serve:other") is None
    # Key-prefix selection works for I/O faults too.
    monkeypatch.setenv(CHAOS_ENV_VAR, '{"drop": ["r4"], "once": false}')
    assert chaos_io_action("r4abc", "") == ("drop", 0.0)


def test_io_action_drop_wins_over_stall(monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV_VAR, '{"drop": ["t"], "stall": ["t"], "once": false}'
    )
    assert chaos_io_action("k", "t") == ("drop", 0.0)


def test_io_action_once_semantics(monkeypatch, tmp_path):
    monkeypatch.setenv(
        CHAOS_ENV_VAR,
        '{"drop": ["t"], "sentinel_dir": "%s"}' % tmp_path,
    )
    assert chaos_io_action("k", "t") == ("drop", 0.0)
    assert chaos_io_action("k", "t") is None  # sentinel absorbed it
    assert list(tmp_path.glob("chaos.drop.*"))
