"""TamperingBus: every fault class on encrypted lines is detected, every
fault on plaintext lines is silent, and restore() undoes all of it."""

import pytest

from repro.core.seal import SealScheme
from repro.faults.tamper import (
    LINE_BYTES,
    ProtectedImage,
    SecureLine,
    TamperError,
    TamperingBus,
)
from repro.nn.layers import set_init_rng
from repro.nn.models import build_model


@pytest.fixture()
def bus() -> TamperingBus:
    return TamperingBus(ProtectedImage.synthetic(8, 0.5, seed=3))


def enc(bus: TamperingBus) -> int:
    return bus.image.encrypted_addresses[0]


def plain(bus: TamperingBus) -> int:
    return bus.image.plaintext_addresses[0]


# ----------------------------------------------------------------------
# Clean path
# ----------------------------------------------------------------------
def test_untampered_sweep_is_clean(bus):
    for outcome in bus.sweep():
        assert not outcome.detected
        assert not outcome.corrupted
        assert outcome.data == bus.image.lines[0].plaintext or not outcome.corrupted


def test_read_decrypts_to_golden_plaintext(bus):
    for line in bus.image.lines:
        assert bus.read(line.address).data == line.plaintext


def test_unknown_address_raises(bus):
    with pytest.raises(TamperError, match="no line"):
        bus.read(0xDEAD)


# ----------------------------------------------------------------------
# Fault classes on encrypted lines: all detected
# ----------------------------------------------------------------------
def test_bit_flip_detected(bus):
    bus.flip_bits(enc(bus), [5])
    outcome = bus.read(enc(bus))
    assert outcome.detected and outcome.corrupted


def test_multi_bit_flip_detected(bus):
    bus.flip_bits(enc(bus), range(0, 64, 7))
    assert bus.read(enc(bus)).detected


def test_splice_detected(bus):
    a, b = bus.image.encrypted_addresses[:2]
    bus.splice(a, b)
    assert bus.read(b).detected


def test_replay_detected_and_needs_history(bus):
    address = enc(bus)
    with pytest.raises(TamperError, match="refresh"):
        bus.replay(address)
    bus.refresh(address)
    bus.replay(address)
    outcome = bus.read(address)
    assert outcome.detected


def test_counter_desync_detected(bus):
    bus.desync_counter(enc(bus), delta=3)
    outcome = bus.read(enc(bus))
    assert outcome.detected
    assert not outcome.corrupted  # data itself untouched — freshness check fires


def test_mac_truncation_detected(bus):
    bus.truncate_tag(enc(bus), keep_bytes=4)
    outcome = bus.read(enc(bus))
    assert outcome.detected
    assert not outcome.corrupted


# ----------------------------------------------------------------------
# Plaintext lines: no integrity whatsoever
# ----------------------------------------------------------------------
def test_plaintext_flip_is_silent(bus):
    bus.flip_bits(plain(bus), [0])
    outcome = bus.read(plain(bus))
    assert outcome.authenticated is None
    assert outcome.corrupted and outcome.silent_corruption


def test_plaintext_splice_is_silent(bus):
    a, b = bus.image.plaintext_addresses[:2]
    bus.splice(a, b)
    assert bus.read(b).silent_corruption


def test_plaintext_lines_have_no_counter_or_tag(bus):
    with pytest.raises(TamperError, match="no counter"):
        bus.desync_counter(plain(bus))
    with pytest.raises(TamperError, match="no tag"):
        bus.truncate_tag(plain(bus))


# ----------------------------------------------------------------------
# Restore / no-auth / validation
# ----------------------------------------------------------------------
def test_restore_undoes_every_primitive(bus):
    address = enc(bus)
    bus.refresh(address)
    for fault in (
        lambda: bus.flip_bits(address, [9]),
        lambda: bus.splice(bus.image.encrypted_addresses[1], address),
        lambda: bus.replay(address),
        lambda: bus.desync_counter(address),
        lambda: bus.truncate_tag(address, keep_bytes=2),
    ):
        fault()
        bus.restore(address)
        outcome = bus.read(address)
        assert not outcome.detected and not outcome.corrupted


def test_without_authentication_encrypted_faults_go_silent():
    bus = TamperingBus(ProtectedImage.synthetic(8, 0.5, seed=3), authenticate=False)
    address = bus.image.encrypted_addresses[0]
    bus.flip_bits(address, [0])
    outcome = bus.read(address)
    assert outcome.authenticated is None
    assert outcome.corrupted and outcome.silent_corruption


def test_bad_write_and_flip_arguments(bus):
    with pytest.raises(TamperError, match="byte"):
        bus.write(enc(bus), b"short")
    with pytest.raises(TamperError, match="outside"):
        bus.flip_bits(enc(bus), [LINE_BYTES * 8])


def test_image_rejects_bad_lines():
    good = SecureLine(address=0, encrypted=True, plaintext=bytes(LINE_BYTES))
    with pytest.raises(TamperError, match="bytes"):
        ProtectedImage("m", 0.5, [SecureLine(0, True, b"short")])
    with pytest.raises(TamperError, match="duplicate"):
        ProtectedImage("m", 0.5, [good, good])
    with pytest.raises(TamperError, match="positive"):
        ProtectedImage.synthetic(0)


# ----------------------------------------------------------------------
# Plan-derived images
# ----------------------------------------------------------------------
def test_from_scheme_uses_real_layout():
    set_init_rng(0)
    scheme = SealScheme(build_model("mlp", width_scale=0.25), 0.5)
    image = ProtectedImage.from_scheme(scheme, max_lines_per_region=4)
    assert image.encrypted_addresses and image.plaintext_addresses
    assert all(line.address % LINE_BYTES == 0 for line in image.lines)
    regions = {line.region for line in image.lines}
    assert any("emalloc" in region or region for region in regions)
    # The functional pipeline round-trips the real blob.
    bus = TamperingBus(image)
    assert all(not outcome.detected for outcome in bus.sweep())
