"""Fault campaign: reproducibility, the integrity contract, and metrics."""

import pytest

from repro.faults.campaign import (
    FAULT_CLASSES,
    PLAINTEXT_FAULT_CLASSES,
    FaultCampaignConfig,
    run_fault_campaign,
)
from repro.faults.tamper import TamperError
from repro.obs.metrics import MetricsRegistry


def quick(**overrides) -> FaultCampaignConfig:
    defaults = dict(synthetic_lines=16, faults_per_class=3, seed=0)
    defaults.update(overrides)
    return FaultCampaignConfig(**defaults)


def test_campaign_is_seed_reproducible():
    first = run_fault_campaign(quick(), metrics=MetricsRegistry())
    second = run_fault_campaign(quick(), metrics=MetricsRegistry())
    assert first.records == second.records
    assert first.to_dict() == second.to_dict()


def test_campaign_meets_the_integrity_contract():
    result = run_fault_campaign(quick(), metrics=MetricsRegistry())
    assert result.problems() == []
    assert result.false_positives == 0
    assert result.detection_rate("encrypted") == 1.0
    assert result.silent_rate("plaintext") > 0.0
    # every class injected on encrypted lines, only the applicable subset
    # on plaintext lines
    assert {r.fault for r in result.records if r.target == "encrypted"} == set(
        FAULT_CLASSES
    )
    assert {r.fault for r in result.records if r.target == "plaintext"} == set(
        PLAINTEXT_FAULT_CLASSES
    )


def test_campaign_counts_into_metrics():
    metrics = MetricsRegistry()
    result = run_fault_campaign(quick(), metrics=metrics)
    assert metrics.counter("faults.injected") == len(result.records)
    assert metrics.counter("faults.detected") == sum(
        r.detected for r in result.records
    )
    assert metrics.counter("faults.undetected.encrypted") == 0
    assert metrics.counter("faults.false_positives") == 0
    assert metrics.counter("faults.silent.plaintext") > 0
    derived = metrics.snapshot()["derived"]
    assert 0.0 < derived["fault_detection_rate"] < 1.0


def test_without_authentication_the_gap_swallows_everything():
    result = run_fault_campaign(
        quick(authenticate=False), metrics=MetricsRegistry()
    )
    assert result.detection_rate("encrypted") == 0.0
    assert result.silent_rate("encrypted") > 0.0
    # with no authenticator there is no detection contract to violate
    assert result.problems() == []


def test_report_names_the_gap():
    result = run_fault_campaign(quick(), metrics=MetricsRegistry())
    report = result.report()
    for fault in FAULT_CLASSES:
        assert fault in report
    assert "integrity gap" in report
    assert "false positives: 0" in report


def test_campaign_needs_lines_of_both_kinds():
    with pytest.raises(TamperError, match="at least two lines"):
        run_fault_campaign(
            quick(synthetic_lines=2, ratio=0.5), metrics=MetricsRegistry()
        )


def test_plan_derived_campaign_holds_the_contract():
    result = run_fault_campaign(
        FaultCampaignConfig(
            model="mlp",
            width_scale=0.25,
            faults_per_class=2,
            max_lines_per_region=4,
            seed=0,
        ),
        metrics=MetricsRegistry(),
    )
    assert result.problems() == []
    assert result.model_name != "synthetic"
