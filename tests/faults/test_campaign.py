"""Fault campaign: reproducibility, the integrity contract, and metrics.

The contract tests run once per registered protection scheme (the
``scheme_name``/``scheme`` fixtures from ``tests/conftest.py``): every
scheme promises detection exactly on the fault classes it authenticates
— 100 % on authenticated encrypted lines, all-silent for unauthenticated
schemes — with zero false positives and a measurable plaintext gap where
the scheme leaves lines in the clear.
"""

import pytest

from repro.faults.campaign import (
    FAULT_CLASSES,
    PLAINTEXT_FAULT_CLASSES,
    FaultCampaignConfig,
    run_fault_campaign,
)
from repro.faults.tamper import TamperError
from repro.obs.metrics import MetricsRegistry


def quick(**overrides) -> FaultCampaignConfig:
    defaults = dict(synthetic_lines=16, faults_per_class=3, seed=0)
    defaults.update(overrides)
    return FaultCampaignConfig(**defaults)


def test_campaign_is_seed_reproducible(scheme_name):
    first = run_fault_campaign(quick(scheme=scheme_name), metrics=MetricsRegistry())
    second = run_fault_campaign(quick(scheme=scheme_name), metrics=MetricsRegistry())
    assert first.records == second.records
    assert first.to_dict() == second.to_dict()


def test_campaign_meets_the_scheme_contract(scheme_name, scheme):
    result = run_fault_campaign(quick(scheme=scheme_name), metrics=MetricsRegistry())
    assert result.problems() == []
    assert result.false_positives == 0
    if scheme.authenticated:
        assert result.detection_rate("encrypted") == 1.0
    else:
        assert result.detection_rate("encrypted") == 0.0
        assert result.silent_rate("encrypted") > 0.0
    assert result.silent_rate("plaintext") > 0.0
    # every class the scheme can express lands on encrypted lines; the
    # plaintext side only ever sees the counter/tag-free subset
    assert {r.fault for r in result.records if r.target == "encrypted"} == set(
        scheme.fault_classes()
    )
    assert {r.fault for r in result.records if r.target == "plaintext"} == set(
        PLAINTEXT_FAULT_CLASSES
    ) & set(scheme.fault_classes())


def test_detection_matches_the_scheme_detects_claim(scheme_name, scheme):
    result = run_fault_campaign(quick(scheme=scheme_name), metrics=MetricsRegistry())
    for fault in scheme.fault_classes():
        rate = result.detection_rate("encrypted", fault)
        assert rate == (1.0 if scheme.detects(fault) else 0.0), fault


def test_campaign_counts_into_metrics():
    metrics = MetricsRegistry()
    result = run_fault_campaign(quick(), metrics=metrics)
    assert metrics.counter("faults.injected") == len(result.records)
    assert metrics.counter("faults.detected") == sum(
        r.detected for r in result.records
    )
    assert metrics.counter("faults.undetected.encrypted") == 0
    assert metrics.counter("faults.false_positives") == 0
    assert metrics.counter("faults.silent.plaintext") > 0
    derived = metrics.snapshot()["derived"]
    assert 0.0 < derived["fault_detection_rate"] < 1.0


def test_without_authentication_the_gap_swallows_everything():
    result = run_fault_campaign(
        quick(authenticate=False), metrics=MetricsRegistry()
    )
    assert result.detection_rate("encrypted") == 0.0
    assert result.silent_rate("encrypted") > 0.0
    # with no authenticator there is no detection contract to violate
    assert result.problems() == []


def test_default_scheme_still_covers_the_full_zoo():
    """The seal-se default is the pre-refactor campaign, class for class."""
    result = run_fault_campaign(quick(), metrics=MetricsRegistry())
    assert result.config.scheme == "seal-se"
    assert {r.fault for r in result.records if r.target == "encrypted"} == set(
        FAULT_CLASSES
    )


def test_report_names_the_gap():
    result = run_fault_campaign(quick(), metrics=MetricsRegistry())
    report = result.report()
    for fault in FAULT_CLASSES:
        assert fault in report
    assert "integrity gap" in report
    assert "false positives: 0" in report


def test_campaign_needs_lines_of_both_kinds():
    with pytest.raises(TamperError, match="at least two lines"):
        run_fault_campaign(
            quick(synthetic_lines=2, ratio=0.5), metrics=MetricsRegistry()
        )


def test_plan_derived_campaign_holds_the_contract(scheme_name):
    result = run_fault_campaign(
        FaultCampaignConfig(
            model="mlp",
            width_scale=0.25,
            faults_per_class=2,
            max_lines_per_region=4,
            seed=0,
            scheme=scheme_name,
        ),
        metrics=MetricsRegistry(),
    )
    assert result.problems() == []
    assert result.model_name != "synthetic"
