"""Repo-wide fixtures shared across test packages."""

import pytest

from repro.schemes import get_scheme, scheme_names


@pytest.fixture(params=scheme_names())
def scheme_name(request) -> str:
    """Every registered protection scheme name, one test per scheme."""
    return request.param


@pytest.fixture
def scheme(scheme_name):
    """The registered :class:`ProtectionScheme` instance under test."""
    return get_scheme(scheme_name)
