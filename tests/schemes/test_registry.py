"""Registry semantics and scheme-constructor validation."""

import pytest

from repro.schemes import (
    CtrGmacScheme,
    DirectScheme,
    available_schemes,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.schemes.registry import _REGISTRY

from .conftest import KEY

BUILTINS = ("seal-se", "direct", "counter-gmac", "seculator")


@pytest.fixture
def scratch_registry():
    """Snapshot/restore the registry around registration tests."""
    snapshot = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert scheme_names()[: len(BUILTINS)] == BUILTINS
        assert tuple(s.name for s in available_schemes()) == scheme_names()

    def test_get_scheme_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="seal-se"):
            get_scheme("rot13")

    def test_register_rejects_duplicates_unless_replace(self, scratch_registry):
        rival = CtrGmacScheme("dup", "dup", selective=False)
        assert register_scheme(rival) is rival
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(CtrGmacScheme("dup", "dup", selective=False))
        replacement = CtrGmacScheme("dup", "dup v2", selective=True)
        assert register_scheme(replacement, replace=True) is replacement
        assert get_scheme("dup").title == "dup v2"

    def test_register_rejects_empty_name(self, scratch_registry):
        with pytest.raises(ValueError, match="non-empty"):
            register_scheme(CtrGmacScheme("", "anon", selective=False))

    def test_out_of_tree_scheme_is_everywhere_at_once(self, scratch_registry):
        """The registration promise: one register_scheme call reaches the
        sim runner's name resolution and the sealer factory."""
        from repro.sim.runner import known_schemes

        register_scheme(
            CtrGmacScheme(
                "tessera",
                "Tessera-style",
                selective=False,
                tag_bytes=4,
                data_bytes_per_counter_block=8192,
            )
        )
        assert "tessera" in known_schemes()
        sealer = get_scheme("tessera").make_sealer(KEY)
        assert sealer.tag_bytes == 4


class TestConstructorValidation:
    def test_authenticated_schemes_need_plausible_tags(self):
        for bad in (0, 3, 17):
            with pytest.raises(ValueError, match="tag bytes"):
                CtrGmacScheme("bad", "bad", selective=False, tag_bytes=bad)

    def test_unauthenticated_direct_sealer_rejects_tag_override(self):
        direct = get_scheme("direct")
        with pytest.raises(ValueError, match="unauthenticated"):
            direct.make_sealer(KEY, tag_bytes=8)
        # a zero override is a no-op, not an error
        assert direct.make_sealer(KEY, tag_bytes=0).tag_bytes == 0

    def test_direct_sealer_rejects_bad_line_granularity(self):
        from repro.schemes.base import DirectSealer

        for bad in (0, 20):
            with pytest.raises(ValueError, match="multiple of 16"):
                DirectSealer(KEY, line_bytes=bad)

    def test_direct_sealer_rejects_empty_payload(self):
        with pytest.raises(ValueError, match="empty"):
            get_scheme("direct").make_sealer(KEY).seal(b"")


class TestSemanticsHooks:
    def test_effective_ratio_bounds_and_coverage(self):
        seal_se, counter_gmac = get_scheme("seal-se"), get_scheme("counter-gmac")
        assert seal_se.effective_ratio(0.3) == 0.3
        assert counter_gmac.effective_ratio(0.3) == 1.0
        for scheme in (seal_se, counter_gmac):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                scheme.effective_ratio(1.5)

    def test_leakage_complements_effective_ratio(self, scheme):
        requested = 0.25
        assert scheme.leakage_ratio(requested) == pytest.approx(
            1.0 - scheme.effective_ratio(requested)
        )

    def test_detects_requires_authentication_and_expressibility(self):
        assert get_scheme("seal-se").detects("replay")
        assert not get_scheme("direct").detects("bit-flip")  # silent
        assert not get_scheme("seal-se").detects("rowhammer")  # not modelled

    def test_describe_is_json_able_and_complete(self, scheme):
        import json

        row = json.loads(json.dumps(scheme.describe()))
        assert row["name"] == scheme.name
        assert row["fault_classes"] == list(scheme.fault_classes())
        assert row["metadata_bytes_per_line"]["mac"] == scheme.tag_bytes

    def test_direct_scheme_declares_no_metadata(self):
        assert get_scheme("direct").metadata_bytes_per_line() == {
            "counter": 0.0,
            "mac": 0.0,
        }

    def test_counter_cache_geometry_honours_scheme_span(self):
        seculator = get_scheme("seculator")
        geometry = seculator.counter_cache_config()
        assert geometry.data_bytes_per_counter_block == 8192
        sized = seculator.counter_cache_config(size_bytes=4096)
        assert sized.size_bytes == 4096

    def test_direct_scheme_subclass_hook(self, scratch_registry):
        scheme = DirectScheme("direct-se", "selective direct", selective=True)
        assert scheme.selective and not scheme.authenticated
        assert scheme.effective_ratio(0.5) == 0.5
