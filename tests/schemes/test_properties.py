"""Hypothesis property suite: the ProtectionScheme interface contract.

One shared parametrized base runs every registered scheme through the
three contract properties:

* **seal ∘ unseal is the identity** on arbitrary payloads, addresses and
  counters;
* **tamper detection on every authenticated line** — flipping any
  ciphertext byte of any line must raise
  :class:`~repro.core.seal.SealIntegrityError` naming that line on an
  authenticated scheme, and must corrupt silently (never raise) on an
  unauthenticated one;
* **metadata-traffic accounting** — the scheme's declared
  counter/MAC bytes per line match both the functional sealer's tag
  sizes and the simulator memory controller's metadata counters.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.seal import SealIntegrityError
from repro.schemes import get_scheme, scheme_names
from repro.sim.config import EncryptionMode
from repro.sim.memctrl import MemoryController
from repro.sim.request import Access, MemRequest

from .conftest import KEY

#: One sealer per (scheme, backend): schemes are stateless value objects,
#: so examples can share instances (and key-schedule setup cost).
_SEALERS: dict = {}


def sealer_for(scheme_name: str, backend: str = "vector"):
    key = (scheme_name, backend)
    if key not in _SEALERS:
        _SEALERS[key] = get_scheme(scheme_name).make_sealer(KEY, backend=backend)
    return _SEALERS[key]


payloads = st.binary(min_size=16, max_size=520)
addresses = st.integers(min_value=0, max_value=2**40).map(lambda a: a * 128)
counters = st.integers(min_value=1, max_value=2**32 - 1)


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    @given(payload=payloads, base_address=addresses, counter=counters)
    @settings(max_examples=25, deadline=None)
    def test_seal_unseal_identity(self, scheme_name, payload, base_address, counter):
        sealer = sealer_for(scheme_name)
        sealed = sealer.seal(payload, base_address=base_address, counter=counter)
        assert sealer.unseal(sealed) == payload
        assert all(sealer.verify(sealed))
        assert all(len(tag) == sealer.tag_bytes for tag in sealed.tags)

    @pytest.mark.parametrize("scheme_name", scheme_names())
    @given(payload=payloads)
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_example_wise(self, scheme_name, payload):
        assert sealer_for(scheme_name, "scalar").seal(payload) == sealer_for(
            scheme_name, "vector"
        ).seal(payload)


class TestTamperDetection:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    @given(payload=payloads, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_any_flipped_byte_is_caught_or_silent(self, scheme_name, payload, data):
        """Authenticated schemes name the tampered line; unauthenticated
        schemes deliver corrupted bytes without a peep."""
        scheme = get_scheme(scheme_name)
        sealer = sealer_for(scheme_name)
        sealed = sealer.seal(payload, base_address=0x4000, counter=2)
        if scheme.authenticated:
            # any byte of any line, padding included — the MAC covers it
            position = data.draw(
                st.integers(0, len(sealed.ciphertext) - 1), label="byte"
            )
        else:
            # an unauthenticated flip is only *observable* where the
            # scrambled cipher block overlaps real payload bytes
            position = data.draw(
                st.integers(0, len(payload) - 16), label="byte"
            )
        flip = data.draw(st.integers(1, 255), label="xor")
        corrupted = bytearray(sealed.ciphertext)
        corrupted[position] ^= flip
        tampered = dataclasses.replace(sealed, ciphertext=bytes(corrupted))

        if scheme.authenticated:
            verdicts = sealer.verify(tampered)
            assert verdicts[position // sealed.line_bytes] is False
            with pytest.raises(SealIntegrityError) as error:
                sealer.unseal(tampered)
            assert position // sealed.line_bytes in error.value.lines
        else:
            delivered = sealer.unseal(tampered)
            assert delivered != payload  # corrupted...
            assert all(sealer.verify(tampered))  # ...and nobody noticed

    @pytest.mark.parametrize("scheme_name", scheme_names())
    @given(payload=payloads, counter=counters)
    @settings(max_examples=10, deadline=None)
    def test_counter_mismatch_is_caught_on_authenticated_schemes(
        self, scheme_name, payload, counter
    ):
        scheme = get_scheme(scheme_name)
        sealer = sealer_for(scheme_name)
        sealed = sealer.seal(payload, base_address=0, counter=counter)
        stale = dataclasses.replace(sealed, counter=counter % (2**32 - 1) + 1)
        if scheme.authenticated:
            with pytest.raises(SealIntegrityError):
                sealer.unseal(stale)
        else:
            # direct encryption ignores counters entirely
            assert sealer.unseal(stale) == payload


class TestMetadataAccounting:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_functional_tags_match_declared_mac_bytes(self, scheme_name):
        scheme = get_scheme(scheme_name)
        sealer = sealer_for(scheme_name)
        declared = scheme.metadata_bytes_per_line()
        assert sealer.tag_bytes == declared["mac"]
        sealed = sealer.seal(b"x" * 400)
        assert all(len(tag) == declared["mac"] for tag in sealed.tags)

    @pytest.mark.parametrize("scheme_name", scheme_names())
    @given(n_lines=st.integers(min_value=1, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_simulated_metadata_traffic_matches_declaration(
        self, scheme_name, n_lines
    ):
        """The memory controller charges exactly the scheme's declared
        MAC bytes per encrypted line, and counter fetches only for
        counter-mode schemes — in whole counter blocks."""
        scheme = get_scheme(scheme_name)
        config = scheme.gpu_config()
        mc = MemoryController(0, config)
        line_bytes = config.line_bytes
        for index in range(n_lines):
            mc.submit(
                MemRequest(
                    address=index * line_bytes,
                    size=line_bytes,
                    access=Access.READ,
                    encrypted=True,
                ),
                arrival=float(index),
            )
        declared = scheme.metadata_bytes_per_line(line_bytes)
        expected_mac = n_lines * declared["mac"] if scheme.authenticated else 0
        assert mc.stats.mac_bytes == expected_mac
        if scheme.mode is EncryptionMode.COUNTER:
            covered = scheme.data_bytes_per_counter_block
            # cold cache: one 64-byte block fetch per covered span touched
            spans = (n_lines * line_bytes + covered - 1) // covered
            assert mc.stats.counter_fetch_bytes == spans * 64
            # amortised over a full span, that is the declared per-line cost
            assert declared["counter"] * (covered // line_bytes) == 64
        else:
            assert mc.stats.counter_fetch_bytes == 0
        assert mc.stats.total_bytes == (
            mc.stats.data_bytes
            + mc.stats.counter_fetch_bytes
            + mc.stats.mac_bytes
        )
        assert mc.stats.encrypted_bytes == n_lines * line_bytes
