"""Cross-scheme differential conformance suite.

The refactor contract: re-expressing the existing protections as
:class:`~repro.schemes.base.ProtectionScheme` instances changed *nothing*
— the SEAL-SE scheme must be **byte-identical** in ciphertext/MAC output
to the pre-refactor :class:`~repro.core.seal.LineSealer` pipeline and
**counter-identical** in simulator metrics to the pre-refactor
hand-built :class:`~repro.sim.config.EncryptionConfig` runs, on golden
workloads, over both the scalar and vector backends of the crypto
fastpath and of the simulator engine.
"""

import dataclasses
import random

import pytest

from repro.core.plan import ModelEncryptionPlan
from repro.core.seal import LineSealer
from repro.nn.layers import set_init_rng
from repro.nn.models import build_model
from repro.schemes import get_scheme, scheme_names
from repro.sim.config import EncryptionMode, gtx480_config
from repro.sim.runner import run_layer, scheme_config, traffic_for_scheme

from tests.sim.test_golden_ipc import assert_results_identical
from .conftest import KEY

#: Golden byte workloads: deterministic, multiple sizes, including a
#: padded tail line and a single-line payload.
GOLDEN_PAYLOADS = [
    random.Random(seed).randbytes(size)
    for seed, size in ((0, 128), (1, 500), (2, 128 * 5), (3, 17))
]


def golden_batch(line_bytes: int = 128):
    """A fixed (addresses, counters, lines) batch for seal_lines."""
    rng = random.Random(42)
    lines = [rng.randbytes(line_bytes) for _ in range(24)]
    addresses = [0x1000_0000 + i * line_bytes for i in range(24)]
    counters = [1 + (i % 7) for i in range(24)]
    return addresses, counters, lines


# ----------------------------------------------------------------------
# Byte identity: seal-se vs the pre-refactor LineSealer pipeline
# ----------------------------------------------------------------------
class TestSealSeByteIdentity:
    def test_seal_lines_identical(self, crypto_backend):
        sealer = get_scheme("seal-se").make_sealer(KEY, backend=crypto_backend)
        reference = LineSealer(KEY, backend=crypto_backend)
        addresses, counters, lines = golden_batch()
        assert sealer.seal_lines(addresses, counters, lines) == reference.seal_lines(
            addresses, counters, lines
        )

    def test_sealed_payloads_identical(self, crypto_backend):
        sealer = get_scheme("seal-se").make_sealer(KEY, backend=crypto_backend)
        reference = LineSealer(KEY, backend=crypto_backend)
        for payload in GOLDEN_PAYLOADS:
            ours = sealer.seal(payload, base_address=0x2000, counter=3)
            theirs = reference.seal(payload, base_address=0x2000, counter=3)
            assert ours == theirs  # ciphertext bytes AND every MAC tag

    def test_payloads_interoperate_both_directions(self, crypto_backend):
        sealer = get_scheme("seal-se").make_sealer(KEY, backend=crypto_backend)
        reference = LineSealer(KEY, backend=crypto_backend)
        for payload in GOLDEN_PAYLOADS:
            assert sealer.unseal(reference.seal(payload)) == payload
            assert reference.unseal(sealer.seal(payload)) == payload

    def test_tag_truncation_override_matches(self, crypto_backend):
        sealer = get_scheme("seal-se").make_sealer(
            KEY, backend=crypto_backend, tag_bytes=4
        )
        reference = LineSealer(KEY, tag_bytes=4, backend=crypto_backend)
        addresses, counters, lines = golden_batch()
        assert sealer.seal_lines(addresses, counters, lines) == reference.seal_lines(
            addresses, counters, lines
        )


class TestCrossBackendByteIdentity:
    """Every scheme's sealer is byte-identical across crypto backends."""

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_scalar_equals_vector(self, scheme_name):
        scheme = get_scheme(scheme_name)
        scalar = scheme.make_sealer(KEY, backend="scalar")
        vector = scheme.make_sealer(KEY, backend="vector")
        addresses, counters, lines = golden_batch()
        assert scalar.seal_lines(addresses, counters, lines) == vector.seal_lines(
            addresses, counters, lines
        )
        for payload in GOLDEN_PAYLOADS:
            assert scalar.seal(payload) == vector.seal(payload)


# ----------------------------------------------------------------------
# Config identity: scheme-built sim configs == pre-refactor hand-built
# ----------------------------------------------------------------------
class TestConfigIdentity:
    def test_seal_se_equals_hand_built_authenticated_seal_c(self):
        hand = gtx480_config(EncryptionMode.COUNTER, selective=True)
        hand = hand.with_encryption(
            dataclasses.replace(hand.encryption, authenticate=True)
        )
        assert get_scheme("seal-se").gpu_config() == hand

    def test_direct_scheme_equals_paper_direct_config(self):
        assert get_scheme("direct").gpu_config() == scheme_config("Direct")
        assert scheme_config("direct") == scheme_config("Direct")

    def test_counter_cache_budget_split_matches_factory(self):
        for kb in (24, 96, 384):
            scheme_cfg = get_scheme("seal-se").gpu_config(counter_cache_kb=kb)
            hand = gtx480_config(
                EncryptionMode.COUNTER, selective=True, counter_cache_kb=kb
            )
            assert (
                scheme_cfg.encryption.counter_cache
                == hand.encryption.counter_cache
            )


# ----------------------------------------------------------------------
# Sim metric identity: counter-for-counter on the golden workload
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_traffics():
    set_init_rng(0)
    plan = ModelEncryptionPlan.build(
        build_model("mlp", width_scale=0.25), 0.5, input_shape=(3, 32, 32)
    )
    return plan.layer_traffic()


class TestSimCounterIdentity:
    def test_seal_se_runs_counter_identical(self, golden_traffics, sim_backend):
        """Scheme-name runs == pre-refactor hand-built-config runs, every
        SimResult field, under both simulator engines."""
        hand = gtx480_config(EncryptionMode.COUNTER, selective=True)
        hand = hand.with_encryption(
            dataclasses.replace(hand.encryption, authenticate=True)
        )
        for traffic in golden_traffics:
            via_scheme = run_layer(traffic, "seal-se")
            via_config = run_layer(traffic, "seal-se", config=hand)
            assert_results_identical(via_scheme, via_config)

    def test_direct_scheme_runs_identical_to_paper_direct(
        self, golden_traffics, sim_backend
    ):
        for traffic in golden_traffics:
            ours = run_layer(traffic, "direct")
            paper = run_layer(traffic, "Direct")
            # Same config, same traffic tagging — identical except labels.
            assert_results_identical(
                dataclasses.replace(ours, label=""),
                dataclasses.replace(paper, label=""),
            )

    def test_full_coverage_schemes_tag_all_traffic(self, golden_traffics):
        for traffic in golden_traffics:
            for name in scheme_names():
                tagged = traffic_for_scheme(traffic, name)
                if get_scheme(name).selective:
                    assert tagged == traffic
                else:
                    assert tagged.weight_bytes_plain == 0
                    assert tagged.input_bytes_plain == 0
                    assert tagged.output_bytes_plain == 0


# ----------------------------------------------------------------------
# Serve-layer plumbing: ServeConfig builds the scheme's sealer
# ----------------------------------------------------------------------
class TestServeSealerPlumbing:
    def test_default_serve_sealer_is_the_pre_refactor_line_sealer(self):
        from repro.serve.server import ServeConfig

        config = ServeConfig()
        sealer = config.make_sealer()
        assert isinstance(sealer, LineSealer)
        assert sealer.tag_bytes == config.resolved_tag_bytes() == 8
        reference = LineSealer(config.key, backend=config.backend)
        for payload in GOLDEN_PAYLOADS:
            assert sealer.seal(payload) == reference.seal(payload)

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_serve_sealer_matches_scheme_sealer(self, scheme_name):
        from repro.serve.server import ServeConfig, _worker_sealer

        config = ServeConfig(scheme=scheme_name)
        inline = config.make_sealer()
        assert inline.tag_bytes == get_scheme(scheme_name).tag_bytes
        # pool workers rebuild the identical sealer from the batch spec
        worker = _worker_sealer(
            {
                "scheme": scheme_name,
                "key": config.key,
                "tag_bytes": config.resolved_tag_bytes(),
                "line_bytes": config.line_bytes,
                "backend": config.backend,
            }
        )
        addresses, counters, lines = golden_batch()
        assert inline.seal_lines(addresses, counters, lines) == worker.seal_lines(
            addresses, counters, lines
        )
