"""Fixtures for the cross-scheme differential/property suites."""

import os

import pytest

KEY = bytes(range(16))


@pytest.fixture(params=["scalar", "vector"])
def crypto_backend(request) -> str:
    """Both functional crypto backends — schemes must be byte-identical
    across them (the fastpath differential contract)."""
    return request.param


@pytest.fixture(params=["scalar", "vector"], scope="module")
def sim_backend(request):
    """Both simulator engines, selected the way the runner resolves them
    (the environment variable reaches pool workers too)."""
    from repro.sim.engine import ENV_VAR

    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = request.param
    yield request.param
    if previous is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = previous
