"""Trace export/import tests: round trips, stats, replay equivalence."""

import io

import pytest

from repro.core.memory import SecureHeap
from repro.core.plan import ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import vgg16
from repro.sim.config import gtx480_config
from repro.sim.gpu import GpuSimulator
from repro.sim.trace import dump_streams, load_streams, trace_stats
from repro.sim.workloads import layer_streams, matmul_streams

CONFIG = gtx480_config("direct", selective=True)


@pytest.fixture(scope="module")
def streams():
    return matmul_streams(CONFIG, 128, 128, 128, heap=SecureHeap())


class TestRoundTrip:
    def test_structure_preserved(self, streams):
        buffer = io.StringIO()
        dump_streams(streams, buffer)
        buffer.seek(0)
        restored = load_streams(buffer)
        assert len(restored) == len([s for s in streams if s]) or len(restored) <= len(streams)
        flat_a = [step for stream in streams for step in stream]
        flat_b = [step for stream in restored for step in stream]
        assert len(flat_a) == len(flat_b)

    def test_requests_identical(self, streams):
        buffer = io.StringIO()
        dump_streams(streams, buffer)
        buffer.seek(0)
        restored = load_streams(buffer)
        for original, loaded in zip(streams, restored):
            for a, b in zip(original, loaded):
                assert a.compute_cycles == b.compute_cycles
                assert a.instructions == b.instructions
                assert a.reads == b.reads
                assert a.writes == b.writes

    def test_replay_gives_identical_simulation(self, streams):
        buffer = io.StringIO()
        dump_streams(streams, buffer)
        buffer.seek(0)
        restored = load_streams(buffer)
        first = GpuSimulator(CONFIG).run(streams)
        second = GpuSimulator(CONFIG).run(restored)
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
        assert first.data_bytes == second.data_bytes

    def test_line_count(self, streams):
        buffer = io.StringIO()
        count = dump_streams(streams, buffer)
        assert count == len(buffer.getvalue().splitlines())


class TestParsing:
    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            load_streams(io.StringIO("0 0 R\n"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record"):
            load_streams(io.StringIO("0 0 X 1 2\n"))

    def test_empty_trace(self):
        assert load_streams(io.StringIO("")) == []

    def test_blank_lines_ignored(self):
        restored = load_streams(io.StringIO("\n0 0 C 5 5\n\n"))
        assert restored[0][0].compute_cycles == 5


class TestStats:
    def test_matmul_stats(self, streams):
        stats = trace_stats(streams)
        assert stats.write_bytes == 128 * 128 * 4
        assert stats.encrypted_fraction == pytest.approx(1.0)
        assert stats.requests > 0
        assert stats.compute_cycles > 0

    def test_seal_layer_encrypted_fraction_matches_plan(self):
        # The simulator amplifies operand reuse per category, so the trace
        # fraction equals the plan fraction only when every operand has the
        # same split — pick such a layer (a fully selective middle CONV).
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(vgg16(width_scale=0.25), 0.5)

        def fractions(t):
            def frac(enc, plain):
                return enc / (enc + plain) if enc + plain else None

            return (
                frac(t.weight_bytes_encrypted, t.weight_bytes_plain),
                frac(t.input_bytes_encrypted, t.input_bytes_plain),
                frac(t.output_bytes_encrypted, t.output_bytes_plain),
            )

        traffic = next(
            t
            for t in plan.layer_traffic()
            if t.kind == "conv"
            and None not in fractions(t)
            and max(fractions(t)) - min(fractions(t)) < 0.02
            and 0 < t.encrypted_fraction < 1
        )
        streams = layer_streams(CONFIG, traffic, heap=SecureHeap())
        stats = trace_stats(streams)
        assert stats.encrypted_fraction == pytest.approx(
            traffic.encrypted_fraction, abs=0.05
        )

    def test_intensity_definition(self):
        from repro.sim.sm import TileStep
        from repro.sim.request import Access, MemRequest

        streams = [
            [
                TileStep(
                    compute_cycles=100,
                    reads=(MemRequest(0, 50, Access.READ, False),),
                )
            ]
        ]
        stats = trace_stats(streams)
        assert stats.arithmetic_intensity == pytest.approx(2.0)
