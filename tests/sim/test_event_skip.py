"""Idle-cycle skipping: event jumps equal per-cycle stepping exactly.

Both simulator backends advance from one scheduled event straight to the
next instead of ticking every cycle.  On workloads dominated by long
memory stalls (thousands of idle cycles between compute bursts) that is
where the throughput comes from — and it must be a pure optimisation.
This suite pins the event-jump schedule against a literal per-cycle
oracle that advances time one cycle at a time, on an integer-friendly
configuration where every event lands on a whole cycle, and adds the
backend-invariance regression for tracing spans.
"""

from dataclasses import replace

import pytest

from repro.crypto.engine import EngineSpec
from repro.obs.trace import disable_tracing, enable_tracing
from repro.sim.config import EncryptionConfig, EncryptionMode, gtx480_config
from repro.sim.gpu import GpuSimulator
from repro.sim.request import Access, MemRequest
from repro.sim.sm import SmState, TileStep

#: Integer-friendly machine: 32 B/cycle channels at a 1 GHz core clock and
#: a 16 B/cycle AES engine make every occupancy a whole number of cycles,
#: so the per-cycle oracle's unit steps land exactly on the event times.
def integral_config(mode=EncryptionMode.NONE, num_sms=3, num_channels=2):
    encryption = EncryptionConfig(
        mode=mode,
        engine=EngineSpec("test-engine", None, None, 10, 16.0),
    )
    return replace(
        gtx480_config(),
        core_clock_ghz=1.0,
        channel_bandwidth_gbps=32.0,
        num_sms=num_sms,
        num_channels=num_channels,
        encryption=encryption,
    )


def stall_streams(
    config, steps_per_sm=4, read_bytes=4096, compute_cycles=5, encrypted=False
):
    """Streams whose steps stall for thousands of cycles on DRAM.

    One 4 KB read costs 128 occupancy cycles plus the 220-cycle DRAM
    latency per wave, dwarfing the 5-cycle compute bursts — exactly the
    shape where naive per-cycle stepping burns its time idling.
    """
    streams = []
    address = 0
    for sm in range(config.num_sms):
        steps = []
        for index in range(steps_per_sm):
            reads = tuple(
                MemRequest(
                    address=address + part * 4096,
                    size=read_bytes,
                    access=Access.READ,
                    encrypted=encrypted,
                )
                for part in range(2)
            )
            writes = ()
            if index == steps_per_sm - 1:
                writes = (
                    MemRequest(
                        address=address + 65536,
                        size=1024,
                        access=Access.WRITE,
                        encrypted=encrypted,
                    ),
                )
            steps.append(
                TileStep(
                    compute_cycles=compute_cycles, reads=reads, writes=writes
                )
            )
            address += 16384
        streams.append(steps)
    return streams


def run_per_cycle(config, streams):
    """Per-cycle oracle: the scalar engine's exact semantics, but time
    advances one cycle at a time instead of jumping between events.

    Events due at time ``t`` are processed in ``(event_time, sm_id)``
    order — the same total order the event heap yields — so with every
    event on a whole cycle the two schedules must agree to the bit.
    """
    simulator = GpuSimulator(config, backend="scalar")
    sms = [
        SmState(sm_id=i, steps=list(stream)) for i, stream in enumerate(streams)
    ]
    for sm in sms:
        if sm.done:
            continue
        sm.ready_time = simulator._issue(sm.steps[0].reads, 0.0)
        sm.stats.read_requests += len(sm.steps[0].reads)
        assert sm.ready_time == int(sm.ready_time), "oracle needs whole cycles"

    finish = 0.0
    t = 0.0
    while any(not sm.done for sm in sms):
        while True:
            due = [sm for sm in sms if not sm.done and sm.next_event_time <= t]
            if not due:
                break
            sm = min(due, key=lambda s: (s.next_event_time, s.sm_id))
            step = sm.steps[sm.next_step]
            start = sm.next_event_time
            end = start + step.compute_cycles
            sm.stats.instructions += step.instructions
            sm.stats.busy_cycles += step.compute_cycles
            sm.stats.steps += 1
            if step.writes:
                done = simulator._issue(step.writes, end)
                sm.last_write_done = max(sm.last_write_done, done)
                sm.stats.write_requests += len(step.writes)
            sm.compute_end = end
            sm.next_step += 1
            if not sm.done:
                next_step = sm.steps[sm.next_step]
                sm.ready_time = simulator._issue(next_step.reads, start)
                sm.stats.read_requests += len(next_step.reads)
                assert sm.ready_time == int(sm.ready_time)
            else:
                finish = max(finish, end, sm.last_write_done)
        t += 1.0
    for sm in sms:
        finish = max(finish, sm.compute_end, sm.last_write_done)
    return simulator._collect("oracle", finish, sms)


def snapshot(simulator, result):
    state = [result.cycles, result.instructions, result.dram_utilization]
    state.append(
        tuple(
            (s.instructions, s.busy_cycles, s.steps, s.read_requests, s.write_requests)
            for s in result.sm_stats
        )
    )
    for mc in simulator.controllers:
        state.append((mc.stats.read_requests, mc.stats.write_requests,
                      mc.stats.data_bytes, mc._dram.next_free, mc._dram.busy))
    return state


class TestEventJumpEqualsPerCycle:
    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_long_stalls_match_oracle(self, backend):
        config = integral_config()
        oracle = run_per_cycle(config, stall_streams(config))
        simulator = GpuSimulator(config, backend=backend)
        result = simulator.run(stall_streams(config), label="oracle")
        assert result.cycles == oracle.cycles
        assert result.cycles == int(result.cycles)  # events on whole cycles
        assert result.cycles > 3000  # the stalls really dominate
        for got, want in zip(result.sm_stats, oracle.sm_stats):
            assert (got.busy_cycles, got.instructions, got.steps) == (
                want.busy_cycles,
                want.instructions,
                want.steps,
            )

    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_encrypted_stalls_match_oracle(self, backend):
        config = integral_config(mode=EncryptionMode.DIRECT)
        streams = stall_streams(config, encrypted=True)
        oracle = run_per_cycle(config, stall_streams(config, encrypted=True))
        simulator = GpuSimulator(config, backend=backend)
        result = simulator.run(streams, label="oracle")
        assert result.cycles == oracle.cycles
        assert result.encrypted_bytes == oracle.encrypted_bytes

    def test_backends_agree_on_full_state(self):
        config = integral_config(mode=EncryptionMode.DIRECT, num_sms=5)
        states = {}
        for backend in ("scalar", "vector"):
            simulator = GpuSimulator(config, backend=backend)
            result = simulator.run(
                stall_streams(config, steps_per_sm=6, encrypted=True)
            )
            states[backend] = snapshot(simulator, result)
        assert states["scalar"] == states["vector"]


class TestTracingInvariance:
    """Spans and their cycle-domain attributes are backend-invariant; only
    the ``sim_backend`` annotation (and wall-clock timings) may differ."""

    def _spans(self, backend):
        config = integral_config(mode=EncryptionMode.DIRECT)
        tracer = enable_tracing()
        tracer.reset()
        try:
            simulator = GpuSimulator(config, backend=backend)
            simulator.run(stall_streams(config, encrypted=True), label="traced")
            spans = tracer.snapshot()["spans"]
        finally:
            disable_tracing()
        normalized = []
        for span in spans:
            attrs = {
                k: v
                for k, v in (span.get("attrs") or {}).items()
                if k != "sim_backend"
            }
            events = tuple(
                (e["name"], tuple(sorted(e.get("attrs", {}).items())))
                for e in span.get("events") or ()
            )
            normalized.append((span["name"], tuple(sorted(attrs.items())), events))
        return sorted(normalized)

    def test_span_structure_identical(self):
        scalar = self._spans("scalar")
        vector = self._spans("vector")
        assert scalar and scalar == vector

    def test_backend_annotation_present(self):
        config = integral_config()
        tracer = enable_tracing()
        tracer.reset()
        try:
            GpuSimulator(config, backend="vector").run(stall_streams(config))
            spans = tracer.snapshot()["spans"]
        finally:
            disable_tracing()
        kernel = [s for s in spans if s["name"] == "sim.kernel"]
        assert kernel and kernel[0]["attrs"]["sim_backend"] == "vector"
