"""Scheme-runner tests: the paper's qualitative ordering must hold."""

import pytest

from repro.core.plan import ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import build_model, vgg16
from repro.sim.runner import (
    SCHEMES,
    compare_schemes,
    fully_encrypted,
    plaintext_traffic,
    run_layer,
    run_model,
    scheme_config,
    traffic_for_scheme,
)
from repro.sim.workloads import matmul_traffic


@pytest.fixture(scope="module")
def plan():
    # Full-width VGG-16: the small width-scaled variants are latency-bound
    # rather than bandwidth-bound, which hides the encryption bottleneck.
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(), 0.5)


@pytest.fixture(scope="module")
def model_results(plan):
    return {scheme: run_model(plan, scheme) for scheme in SCHEMES}


class TestSchemeConfig:
    def test_all_five_schemes(self):
        for scheme in SCHEMES:
            config = scheme_config(scheme)
            assert config.encryption.label() == scheme

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            scheme_config("XTS")


class TestTrafficTransforms:
    def test_fully_encrypted_moves_all_bytes(self, plan):
        traffic = plan.layer_traffic()[3]
        full = fully_encrypted(traffic)
        assert full.encrypted_fraction == 1.0
        assert full.total_bytes == traffic.total_bytes
        assert full.macs == traffic.macs

    def test_plaintext_moves_all_bytes(self, plan):
        traffic = plan.layer_traffic()[3]
        plain = plaintext_traffic(traffic)
        assert plain.encrypted_fraction == 0.0
        assert plain.total_bytes == traffic.total_bytes

    def test_gemm_dims_preserved(self, plan):
        traffic = plan.layer_traffic()[0]
        assert fully_encrypted(traffic).gemm_k == traffic.gemm_k
        assert plaintext_traffic(traffic).gemm_m == traffic.gemm_m


class TestLayerRuns:
    def test_matmul_encryption_ordering(self):
        traffic = matmul_traffic(256, 256, 256)
        baseline = run_layer(traffic, "Baseline")
        direct = run_layer(traffic, "Direct")
        assert direct.ipc < baseline.ipc

    def test_layer_result_label(self, plan):
        traffic = plan.layer_traffic()[0]
        result = run_layer(traffic, "SEAL-D")
        assert "SEAL-D" in result.label


class TestPaperShapes:
    """The qualitative results of Figures 7 and 8 (shape, not absolutes)."""

    def test_full_encryption_degrades_ipc(self, model_results):
        base = model_results["Baseline"].ipc
        assert model_results["Direct"].ipc < base * 0.8
        assert model_results["Counter"].ipc < base * 0.8

    def test_seal_beats_full_encryption(self, model_results):
        assert model_results["SEAL-D"].ipc > model_results["Direct"].ipc
        assert model_results["SEAL-C"].ipc > model_results["Counter"].ipc

    def test_seal_speedup_in_paper_range(self, model_results):
        # Paper: SEAL improves IPC 1.34-1.4x over Direct/Counter; allow a
        # generous band around it for the simulated substrate.
        speedup_d = model_results["SEAL-D"].ipc / model_results["Direct"].ipc
        speedup_c = model_results["SEAL-C"].ipc / model_results["Counter"].ipc
        assert 1.15 <= speedup_d <= 1.8
        assert 1.15 <= speedup_c <= 1.8

    def test_seal_does_not_beat_baseline(self, model_results):
        assert model_results["SEAL-D"].ipc <= model_results["Baseline"].ipc * 1.01
        assert model_results["SEAL-C"].ipc <= model_results["Baseline"].ipc * 1.01

    def test_latency_ordering(self, model_results):
        base = model_results["Baseline"].cycles
        assert model_results["Direct"].cycles > base
        assert model_results["SEAL-D"].cycles < model_results["Direct"].cycles
        assert model_results["SEAL-C"].cycles < model_results["Counter"].cycles

    def test_counter_close_to_direct(self, model_results):
        # Paper: counter mode does not outperform direct on GPUs.
        ratio = model_results["Counter"].cycles / model_results["Direct"].cycles
        assert 0.85 <= ratio <= 1.15

    def test_latency_seconds(self, model_results):
        latency = model_results["Baseline"].latency_seconds()
        assert latency == pytest.approx(
            model_results["Baseline"].cycles / 0.7e9, rel=1e-9
        )

    def test_layer_results_cover_all_layers(self, plan, model_results):
        expected = len(plan.layer_traffic())
        assert len(model_results["Baseline"].layer_results) == expected

    def test_encrypted_bytes_ordering(self, model_results):
        assert model_results["Baseline"].encrypted_bytes == 0
        assert (
            0
            < model_results["SEAL-D"].encrypted_bytes
            < model_results["Direct"].encrypted_bytes
        )


class TestRunModelFromModule:
    def test_accepts_model_directly(self):
        set_init_rng(0)
        model = vgg16(width_scale=0.125)
        result = run_model(model, "Baseline", ratio=0.5)
        assert result.cycles > 0
        assert result.model_name.startswith("VGG")


class TestCompareSchemesSharedLowering:
    """compare_schemes lowers the model once and tags the shared records
    per scheme, instead of re-lowering for every scheme."""

    @pytest.fixture()
    def mlp_plan(self):
        set_init_rng(0)
        return ModelEncryptionPlan.build(
            build_model("mlp"), 0.5, input_shape=(3, 32, 32)
        )

    def test_layer_traffic_lowered_exactly_once(self, mlp_plan, monkeypatch):
        calls = []
        original = ModelEncryptionPlan.layer_traffic

        def counting(self, **kwargs):
            calls.append(kwargs)
            return original(self, **kwargs)

        monkeypatch.setattr(ModelEncryptionPlan, "layer_traffic", counting)
        compare_schemes(mlp_plan, SCHEMES)
        assert len(calls) == 1

    def test_schemes_see_identical_traffic_records(self, mlp_plan, monkeypatch):
        captured = []
        from repro.sim import runner as runner_module

        original = runner_module.run_units

        def capturing(units, **kwargs):
            captured.extend(units)
            return original(units, **kwargs)

        monkeypatch.setattr(runner_module, "run_units", capturing)
        compare_schemes(mlp_plan, SCHEMES)

        base_traffics = mlp_plan.layer_traffic()
        n = len(base_traffics)
        assert len(captured) == len(SCHEMES) * n
        by_scheme = {
            scheme: captured[i * n : (i + 1) * n]
            for i, scheme in enumerate(SCHEMES)
        }
        for scheme in SCHEMES:
            for base, unit in zip(base_traffics, by_scheme[scheme]):
                assert unit.traffic == traffic_for_scheme(base, scheme)
        # SEAL schemes keep the plan's split untouched, so both must carry
        # the *same* underlying record the single lowering produced.
        for seal_d, seal_c in zip(by_scheme["SEAL-D"], by_scheme["SEAL-C"]):
            assert seal_d.traffic is seal_c.traffic
