"""GPU simulator tests: event ordering, IPC accounting, scheme ordering."""

import pytest

from repro.sim.config import gtx480_config
from repro.sim.gpu import GpuSimulator
from repro.sim.request import Access, MemRequest
from repro.sim.sm import TileStep


def step(compute=100, read_bytes=0, write_bytes=0, encrypted=True, address=0):
    reads = (
        (MemRequest(address, read_bytes, Access.READ, encrypted),)
        if read_bytes
        else ()
    )
    writes = (
        (MemRequest(address + 1 << 20, write_bytes, Access.WRITE, encrypted),)
        if write_bytes
        else ()
    )
    return TileStep(compute_cycles=compute, reads=reads, writes=writes)


class TestBasicExecution:
    def test_empty_streams(self):
        sim = GpuSimulator(gtx480_config("none"))
        result = sim.run([[] for _ in range(15)])
        assert result.cycles == 0
        assert result.instructions == 0

    def test_pure_compute_ipc_is_peak(self):
        config = gtx480_config("none")
        sim = GpuSimulator(config)
        streams = [[step(compute=1000)] * 5 for _ in range(config.num_sms)]
        result = sim.run(streams)
        assert result.ipc == pytest.approx(config.peak_ipc, rel=0.01)

    def test_single_sm_ipc_is_one(self):
        sim = GpuSimulator(gtx480_config("none"))
        result = sim.run([[step(compute=500)] * 4])
        assert result.ipc == pytest.approx(1.0, rel=0.01)

    def test_instructions_counted(self):
        sim = GpuSimulator(gtx480_config("none"))
        result = sim.run([[step(compute=100), step(compute=50)]])
        assert result.instructions == 150

    def test_custom_instruction_count(self):
        sim = GpuSimulator(gtx480_config("none"))
        result = sim.run([[TileStep(compute_cycles=10, instructions=40)]])
        assert result.instructions == 40

    def test_too_many_streams_rejected(self):
        sim = GpuSimulator(gtx480_config("none"))
        with pytest.raises(ValueError):
            sim.run([[] for _ in range(16)])

    def test_writes_extend_completion(self):
        config = gtx480_config("none")
        sim = GpuSimulator(config)
        no_write = sim.run([[step(compute=10)]]).cycles
        sim2 = GpuSimulator(config)
        with_write = sim2.run([[step(compute=10, write_bytes=4096, encrypted=False)]]).cycles
        assert with_write > no_write


class TestMemoryBehaviour:
    def test_memory_bound_stream_is_slower(self):
        config = gtx480_config("none")
        compute_only = GpuSimulator(config).run(
            [[step(compute=10)] * 20 for _ in range(15)]
        )
        memory_heavy = GpuSimulator(config).run(
            [
                [step(compute=10, read_bytes=64 * 1024, encrypted=False, address=i * (1 << 22))] * 20
                for i in range(15)
            ]
        )
        assert memory_heavy.cycles > compute_only.cycles

    def test_double_buffering_overlaps(self):
        """With compute >= memory time per step, memory hides behind compute
        (aside from the initial fill)."""
        config = gtx480_config("none")
        read_bytes = 1024
        service = read_bytes / config.channel_bytes_per_cycle
        compute = int(20 * (service + config.dram_latency_cycles))
        steps = [step(compute=compute, read_bytes=read_bytes, encrypted=False)] * 10
        result = GpuSimulator(config).run([steps])
        lower = 10 * compute
        assert result.cycles < lower * 1.2

    def test_channel_interleaving_distributes_traffic(self):
        config = gtx480_config("none")
        sim = GpuSimulator(config)
        # Requests at consecutive line addresses must hit all channels.
        steps = [
            TileStep(
                compute_cycles=1,
                reads=tuple(
                    MemRequest(line * 128, 128, Access.READ, False)
                    for line in range(12)
                ),
            )
        ]
        sim.run([steps])
        touched = [mc for mc in sim.controllers if mc.stats.data_bytes > 0]
        assert len(touched) == config.num_channels

    def test_data_byte_conservation(self):
        config = gtx480_config("none")
        sim = GpuSimulator(config)
        total = 0
        streams = []
        for sm in range(4):
            s = [step(compute=10, read_bytes=4096, write_bytes=1024, encrypted=False, address=sm << 22)]
            total += 4096 + 1024
            streams.append(s)
        result = sim.run(streams)
        assert result.data_bytes == total


class TestEncryptionSchemes:
    def _bandwidth_bound_streams(self, config):
        return [
            [
                step(compute=5, read_bytes=8192, address=(sm << 22) + i * 8192)
                for i in range(30)
            ]
            for sm in range(config.num_sms)
        ]

    def test_full_encryption_hurts(self):
        base_cfg = gtx480_config("none")
        baseline = GpuSimulator(base_cfg).run(self._bandwidth_bound_streams(base_cfg))
        direct_cfg = gtx480_config("direct")
        direct = GpuSimulator(direct_cfg).run(self._bandwidth_bound_streams(direct_cfg))
        assert direct.ipc < baseline.ipc * 0.6

    def test_selective_encryption_recovers(self):
        def mixed_streams(config):
            streams = []
            for sm in range(config.num_sms):
                steps = []
                for i in range(30):
                    base = (sm << 22) + i * 16384
                    steps.append(
                        TileStep(
                            compute_cycles=5,
                            reads=(
                                MemRequest(base, 4096, Access.READ, True),
                                MemRequest(base + 8192, 4096, Access.READ, False),
                            ),
                        )
                    )
                streams.append(steps)
            return streams

        direct_cfg = gtx480_config("direct")
        full = GpuSimulator(direct_cfg).run(self._bandwidth_bound_streams(direct_cfg))
        seal_cfg = gtx480_config("direct", selective=True)
        seal = GpuSimulator(seal_cfg).run(mixed_streams(seal_cfg))
        # Same total bytes per step (8 KB) but half bypasses the engine.
        assert seal.cycles < full.cycles

    def test_counter_hit_rate_reported(self):
        config = gtx480_config("counter")
        sim = GpuSimulator(config)
        streams = [[step(compute=5, read_bytes=4096)] * 10]
        result = sim.run(streams)
        assert 0.0 <= result.counter_hit_rate <= 1.0

    def test_engine_utilization_reported(self):
        config = gtx480_config("direct")
        sim = GpuSimulator(config)
        result = sim.run(self._bandwidth_bound_streams(config))
        assert result.engine_utilization > 0.3

    def test_result_normalization_helpers(self):
        config = gtx480_config("none")
        baseline = GpuSimulator(config).run([[step(compute=100)] * 3])
        assert baseline.normalized_ipc(baseline) == pytest.approx(1.0)
        assert baseline.latency_ratio(baseline) == pytest.approx(1.0)


class TestSmStats:
    def test_per_sm_stats(self):
        sim = GpuSimulator(gtx480_config("none"))
        result = sim.run([[step(compute=100, read_bytes=256, encrypted=False)] * 2])
        stats = result.sm_stats[0]
        assert stats.steps == 2
        assert stats.busy_cycles == 200
        assert stats.read_requests == 2


class TestMshrCap:
    def test_small_cap_serializes_waves(self):
        import dataclasses

        base = gtx480_config("none")
        capped = dataclasses.replace(base, max_outstanding_per_sm=2)
        many_reads = tuple(
            MemRequest(line * 128, 128, Access.READ, False) for line in range(24)
        )
        steps = [TileStep(compute_cycles=1, reads=many_reads)]
        free = GpuSimulator(base).run([steps])
        tight = GpuSimulator(capped).run([steps])
        assert tight.cycles > free.cycles

    def test_cap_does_not_change_byte_counts(self):
        import dataclasses

        base = gtx480_config("none")
        capped = dataclasses.replace(base, max_outstanding_per_sm=2)
        many_reads = tuple(
            MemRequest(line * 128, 128, Access.READ, False) for line in range(24)
        )
        steps = [TileStep(compute_cycles=1, reads=many_reads)]
        assert (
            GpuSimulator(base).run([steps]).data_bytes
            == GpuSimulator(capped).run([steps]).data_bytes
        )
