"""Memory-controller tests: DRAM timing, encryption paths, counter fetches."""

import pytest

from repro.sim.config import gtx480_config
from repro.sim.memctrl import MemoryController
from repro.sim.request import Access, MemRequest


def read(address=0, size=128, encrypted=True):
    return MemRequest(address=address, size=size, access=Access.READ, encrypted=encrypted)


def write(address=0, size=128, encrypted=True):
    return MemRequest(address=address, size=size, access=Access.WRITE, encrypted=encrypted)


class TestPlainPath:
    def test_single_read_latency(self):
        config = gtx480_config("none")
        mc = MemoryController(0, config)
        done = mc.submit(read(encrypted=False), 0)
        service = 128 / config.channel_bytes_per_cycle
        expected = (
            config.row_miss_penalty_cycles + service + config.dram_latency_cycles
        )
        assert done == pytest.approx(expected)

    def test_row_buffer_hit_skips_penalty(self):
        config = gtx480_config("none")
        mc = MemoryController(0, config)
        first = mc.submit(read(0, encrypted=False), 0)
        second = mc.submit(read(128, encrypted=False), 1000)
        service = 128 / config.channel_bytes_per_cycle
        assert second == pytest.approx(1000 + service + config.dram_latency_cycles)
        assert second - 1000 < first

    def test_bandwidth_saturation_queues(self):
        config = gtx480_config("none")
        mc = MemoryController(0, config)
        last = 0.0
        n = 100
        for i in range(n):
            last = mc.submit(read(i * 128, encrypted=False), 0)
        service = 128 / config.channel_bytes_per_cycle
        # Completion grows linearly with queued bytes.
        assert last >= n * service

    def test_stats_accumulate(self):
        mc = MemoryController(0, gtx480_config("none"))
        mc.submit(read(encrypted=False), 0)
        mc.submit(write(128, encrypted=False), 0)
        assert mc.stats.read_requests == 1
        assert mc.stats.write_requests == 1
        assert mc.stats.data_bytes == 256
        assert mc.stats.bypass_bytes == 256

    def test_encryption_disabled_ignores_tag(self):
        # Baseline GPU: even "encrypted" data just goes to DRAM.
        mc = MemoryController(0, gtx480_config("none"))
        mc.submit(read(encrypted=True), 0)
        assert mc.stats.encrypted_bytes == 0
        assert mc.engine is None


class TestDirectPath:
    def test_encrypted_read_slower_than_plain(self):
        config = gtx480_config("direct")
        mc = MemoryController(0, config)
        plain_done = mc.submit(read(0, encrypted=False), 0)
        mc2 = MemoryController(0, config)
        enc_done = mc2.submit(read(0, encrypted=True), 0)
        assert enc_done > plain_done

    def test_read_adds_engine_latency(self):
        config = gtx480_config("direct")
        mc = MemoryController(0, config)
        done = mc.submit(read(encrypted=True), 0)
        # Serial path: at least DRAM latency + 20-cycle AES latency.
        assert done > config.dram_latency_cycles + 20

    def test_selective_bypass(self):
        config = gtx480_config("direct", selective=True)
        mc = MemoryController(0, config)
        mc.submit(read(0, encrypted=False), 0)
        mc.submit(read(128, encrypted=True), 0)
        assert mc.stats.bypass_bytes == 128
        assert mc.stats.encrypted_bytes == 128

    def test_engine_throughput_is_the_bottleneck(self):
        config = gtx480_config("direct")
        mc = MemoryController(0, config)
        n = 200
        last = 0.0
        for i in range(n):
            last = mc.submit(read(i * 128, encrypted=True), 0)
        engine_rate = config.engine_bytes_per_cycle
        dram_rate = config.channel_bytes_per_cycle
        assert engine_rate < dram_rate
        # Sustained rate must track the engine, not DRAM.
        assert last >= n * 128 / engine_rate

    def test_write_encrypts_before_dram(self):
        config = gtx480_config("direct")
        mc = MemoryController(0, config)
        done = mc.submit(write(encrypted=True), 0)
        assert done > config.dram_latency_cycles


class TestCounterPath:
    def test_counter_miss_fetches_from_dram(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        mc.submit(read(encrypted=True), 0)
        assert mc.stats.counter_fetch_bytes > 0

    def test_counter_hit_avoids_fetch(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        mc.submit(read(0, encrypted=True), 0)
        before = mc.stats.counter_fetch_bytes
        mc.submit(read(0, encrypted=True), 10_000)
        assert mc.stats.counter_fetch_bytes == before
        assert mc.counter_cache.stats.hits >= 1

    def test_counter_hit_read_faster_than_direct_read(self):
        # Pad generation overlaps DRAM on a hit; direct decrypt is serial.
        direct = MemoryController(0, gtx480_config("direct"))
        counter = MemoryController(0, gtx480_config("counter"))
        counter.submit(read(0, encrypted=True), 0)  # warm the counter
        warm_start = 100_000
        direct_done = direct.submit(read(0, encrypted=True), warm_start) - warm_start
        counter_done = counter.submit(read(0, encrypted=True), warm_start) - warm_start
        assert counter_done < direct_done

    def test_write_bumps_counter(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        mc.submit(write(0, encrypted=True), 0)
        assert mc.counter_cache.counter_of(0) == 1

    def test_multi_line_request_counts_lines(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        mc.submit(read(0, size=512, encrypted=True), 0)
        assert mc.counter_cache.stats.accesses == 4

    def test_hit_rate_property(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        for _ in range(4):
            mc.submit(read(0, encrypted=True), 0)
        assert mc.counter_hit_rate == pytest.approx(3 / 4)

    def test_hit_rate_nan_without_counter_mode(self):
        import math

        mc = MemoryController(0, gtx480_config("direct"))
        assert math.isnan(mc.counter_hit_rate)


class TestUtilization:
    def test_utilization_bounds(self):
        mc = MemoryController(0, gtx480_config("none"))
        for i in range(10):
            mc.submit(read(i * 128, encrypted=False), 0)
        assert 0.0 < mc.utilization(10_000) <= 1.0
        assert mc.utilization(0) == 0.0
