"""Differential cycle-accuracy suite: scalar vs vector simulator backend.

The vector backend's contract is *bit-identical* results — not merely
close — on every observable: SimResult fields, per-SM occupancy, memory
controller statistics, counter-cache statistics **and internal state**
(LRU order, per-line counters, backing store), and the ``sim.*`` metrics
counters.  This suite pins that contract over the golden IPC workloads
and over randomized configurations (SM counts, encryption ratios,
channel/engine counts, tile sizes), and separately pins the vector
backend's pure-Python fallback loop against the native kernel path.
"""

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import SecureHeap
from repro.core.plan import LayerTraffic, ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import build_model
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.sim import _native
from repro.sim.gpu import GpuSimulator
from repro.sim.runner import SCHEMES, scheme_config, traffic_for_scheme
from repro.sim.workloads import layer_streams

from .test_golden_ipc import assert_results_identical


def synthetic_layer(kind, m, n, k, enc_fraction):
    """Synthetic layer-traffic record with a given encrypted fraction."""
    w, a, c = k * n * 4, m * k * 4, m * n * 4

    def split(total):
        enc = int(total * enc_fraction)
        return enc, total - enc

    we, wp = split(w)
    ae, ap = split(a)
    ce, cp = split(c)
    return LayerTraffic(
        name=f"synthetic-{kind}",
        kind=kind,
        macs=m * n * k,
        weight_bytes_encrypted=we,
        weight_bytes_plain=wp,
        input_bytes_encrypted=ae,
        input_bytes_plain=ap,
        output_bytes_encrypted=ce,
        output_bytes_plain=cp,
        gemm_m=m,
        gemm_n=n,
        gemm_k=k,
    )


def full_state(simulator, result):
    """Every observable a run leaves behind, as one comparable structure."""
    state = [
        ("cycles", result.cycles),
        ("instructions", result.instructions),
        ("data_bytes", result.data_bytes),
        ("counter_fetch_bytes", result.counter_fetch_bytes),
        ("encrypted_bytes", result.encrypted_bytes),
        ("bypass_bytes", result.bypass_bytes),
        ("dram_utilization", result.dram_utilization),
        ("engine_utilization", result.engine_utilization),
        (
            "counter_hit_rate",
            "nan" if math.isnan(result.counter_hit_rate) else result.counter_hit_rate,
        ),
        (
            "sm_stats",
            tuple(
                (s.instructions, s.busy_cycles, s.steps, s.read_requests, s.write_requests)
                for s in result.sm_stats
            ),
        ),
    ]
    for mc in simulator.controllers:
        st_ = mc.stats
        state.append(
            (
                st_.read_requests,
                st_.write_requests,
                st_.data_bytes,
                st_.encrypted_bytes,
                st_.bypass_bytes,
                st_.mac_bytes,
                st_.counter_fetch_bytes,
                st_.dram_busy_cycles,
                st_.engine_busy_cycles,
            )
        )
        state.append(
            (mc._dram.next_free, mc._dram.busy, tuple(sorted(mc._last_row.items())))
        )
        if mc.engine is not None:
            state.append(
                (
                    mc.engine._next_free,
                    mc.engine.busy_cycles,
                    mc.engine.lines_processed,
                    mc.engine.bytes_processed,
                )
            )
        cache = mc.counter_cache
        if cache is not None:
            cs = cache.stats
            state.append(
                (cs.hits, cs.misses, cs.evictions, cs.writebacks, cs.reencryptions, cs.reencrypted_lines)
            )
            # LRU key order AND per-line counter contents must match.
            state.append(
                tuple(
                    tuple(
                        (tag, line.dirty, tuple(sorted(line.counters.items())))
                        for tag, line in cache_set.items()
                    )
                    for cache_set in cache._sets
                )
            )
            state.append(tuple(sorted(cache._backing.items())))
    return state


def run_one(config, traffic, scheme, backend, repeats=1):
    """Run a layer ``repeats`` times on one simulator (warm-state reuse)."""
    simulator = GpuSimulator(config, backend=backend)
    tagged = traffic_for_scheme(traffic, scheme)
    states = []
    for _ in range(repeats):
        streams = layer_streams(config, tagged, heap=SecureHeap())
        result = simulator.run(streams, label=f"{traffic.name}/{scheme}")
        states.append(full_state(simulator, result))
    return result, states


def assert_backends_identical(config, traffic, scheme, repeats=1):
    result_s, states_s = run_one(config, traffic, scheme, "scalar", repeats)
    result_v, states_v = run_one(config, traffic, scheme, "vector", repeats)
    assert_results_identical(result_s, result_v)
    assert states_s == states_v, f"{scheme}/{traffic.name}: state diverged"


class TestGoldenWorkloads:
    """Every golden-suite workload, field-for-field across both backends."""

    @pytest.fixture(scope="class")
    def traffics(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(
            build_model("mlp"), 0.5, input_shape=(3, 32, 32)
        )
        return plan.layer_traffic()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_layers_identical(self, traffics, scheme):
        config = scheme_config(scheme)
        for traffic in traffics:
            assert_backends_identical(config, traffic, scheme)

    @pytest.mark.parametrize("scheme", ("Counter", "SEAL-C"))
    def test_warm_cache_state_identical(self, traffics, scheme):
        # Consecutive runs on one simulator: the second run starts from
        # warm counter-cache/controller state, exercising the state
        # import/export round-trip of the native kernel.
        config = scheme_config(scheme, counter_cache_kb=24)
        for traffic in traffics:
            assert_backends_identical(config, traffic, scheme, repeats=2)


class TestRandomizedConfigs:
    """Hypothesis-randomized geometry: the equivalence is not tuned to the
    GTX480 point — any SM count, channel count, ratio, tile size works."""

    @given(
        num_sms=st.integers(min_value=1, max_value=24),
        num_channels=st.sampled_from([1, 2, 3, 6]),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        tile=st.sampled_from([16, 32, 64]),
        scheme=st.sampled_from(SCHEMES),
        dims=st.sampled_from([(96, 64, 48), (256, 96, 32), (64, 64, 256)]),
    )
    @settings(max_examples=12, deadline=None)
    def test_randomized_layer_identical(
        self, num_sms, num_channels, fraction, tile, scheme, dims
    ):
        m, n, k = dims
        config = replace(
            scheme_config(scheme, counter_cache_kb=24),
            num_sms=num_sms,
            num_channels=num_channels,
        )
        traffic = synthetic_layer("fc", m, n, k, fraction)
        tagged = traffic_for_scheme(traffic, scheme)
        results, states = {}, {}
        for backend in ("scalar", "vector"):
            simulator = GpuSimulator(config, backend=backend)
            streams = layer_streams(config, tagged, tile=tile, heap=SecureHeap())
            results[backend] = simulator.run(streams)
            states[backend] = full_state(simulator, results[backend])
        assert_results_identical(results["scalar"], results["vector"])
        assert states["scalar"] == states["vector"]

    @given(fraction=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=4, deadline=None)
    def test_pool_layers_identical(self, fraction):
        traffic = LayerTraffic(
            name="synthetic-pool",
            kind="pool",
            macs=0,
            weight_bytes_encrypted=0,
            weight_bytes_plain=0,
            input_bytes_encrypted=int(262144 * fraction),
            input_bytes_plain=262144 - int(262144 * fraction),
            output_bytes_encrypted=int(65536 * fraction),
            output_bytes_plain=65536 - int(65536 * fraction),
        )
        for scheme in ("Counter", "SEAL-D"):
            assert_backends_identical(scheme_config(scheme), traffic, scheme)


class TestMetricsCounters:
    """The ``sim.*`` metrics stream is backend-invariant (modulo the
    backend-name counter itself)."""

    def _counters(self, backend):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            traffic = synthetic_layer("fc", 128, 64, 64, 0.5)
            config = scheme_config("SEAL-C")
            run_one(config, traffic, "SEAL-C", backend)
        finally:
            set_metrics(previous)
        counters = dict(registry.snapshot().get("counters") or {})
        return {
            name: value
            for name, value in counters.items()
            if name.startswith("sim.") and not name.startswith("sim.backend.")
        }

    def test_sim_counters_identical(self):
        scalar = self._counters("scalar")
        vector = self._counters("vector")
        assert scalar and scalar == vector

    def test_backend_counter_names_the_engine(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            traffic = synthetic_layer("fc", 64, 32, 32, 0.5)
            run_one(scheme_config("Baseline"), traffic, "Baseline", "vector")
        finally:
            set_metrics(previous)
        counters = registry.snapshot().get("counters") or {}
        assert counters.get("sim.backend.vector") == 1


class TestPythonFallback:
    """REPRO_SIM_NATIVE=0 pins the pure-Python vector loop; it must agree
    with the scalar engine (and therefore with the native kernel) exactly."""

    @pytest.fixture()
    def no_native(self, monkeypatch):
        monkeypatch.setenv(_native.ENV_NATIVE, "0")
        monkeypatch.setattr(_native, "_attempted", False)
        monkeypatch.setattr(_native, "_cached", None)
        yield
        # monkeypatch restores the module attributes afterwards, so later
        # tests re-resolve (and re-use) the native kernel normally.

    def test_fallback_loads_nothing(self, no_native):
        assert _native.load() is None

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fallback_identical_to_scalar(self, no_native, scheme):
        traffic = synthetic_layer("fc", 128, 96, 48, 0.6)
        config = scheme_config(scheme, counter_cache_kb=24)
        assert_backends_identical(config, traffic, scheme, repeats=2)
