"""Roofline cross-validation: the DES can approach but never beat the
analytical lower bounds, and agrees with them when saturated."""

import pytest

from repro.core.memory import SecureHeap
from repro.sim.config import gtx480_config
from repro.sim.gpu import GpuSimulator
from repro.sim.roofline import predict_streams
from repro.sim.workloads import matmul_streams


def run_both(scheme_config, m=512, n=512, k=512, encrypted=True):
    streams = matmul_streams(
        scheme_config, m, n, k, encrypted=encrypted, heap=SecureHeap()
    )
    des = GpuSimulator(scheme_config).run(streams)
    roofline = predict_streams(streams, scheme_config)
    return des, roofline


class TestLowerBound:
    @pytest.mark.parametrize("mode", ["none", "direct", "counter"])
    def test_des_never_beats_roofline(self, mode):
        config = gtx480_config(mode)
        des, roofline = run_both(config)
        assert des.cycles >= roofline.cycles * 0.99

    def test_saturated_engine_regime_agrees(self):
        # Fully encrypted matmul under Direct: the engine bound dominates
        # and the DES should land within ~35% of it (queueing + latency).
        config = gtx480_config("direct")
        des, roofline = run_both(config)
        assert roofline.bottleneck == "engine"
        assert des.cycles <= roofline.cycles * 1.35

    def test_compute_bound_regime_agrees(self):
        # Unencrypted matmul at tile 32 is compute bound; DES within 25%.
        config = gtx480_config("none")
        des, roofline = run_both(config, encrypted=False)
        assert roofline.bottleneck == "compute"
        assert des.cycles <= roofline.cycles * 1.25


class TestOrderingAgreement:
    def test_normalized_ipc_ordering_matches(self):
        results = {}
        for mode in ("none", "direct", "counter"):
            config = gtx480_config(mode)
            des, roofline = run_both(config)
            results[mode] = (des.ipc, roofline.ipc)
        # Both models agree encryption hurts.
        assert results["none"][0] > results["direct"][0]
        assert results["none"][1] > results["direct"][1]
        # And agree Direct ~ Counter.
        des_ratio = results["counter"][0] / results["direct"][0]
        roofline_ratio = results["counter"][1] / results["direct"][1]
        assert des_ratio == pytest.approx(roofline_ratio, abs=0.25)


class TestPredictionFields:
    def test_bottleneck_labels(self):
        config = gtx480_config("direct")
        _, roofline = run_both(config)
        assert roofline.bottleneck in ("compute", "dram", "engine")
        assert roofline.cycles == max(
            roofline.compute_cycles, roofline.dram_cycles, roofline.engine_cycles
        )

    def test_engine_bound_zero_when_disabled(self):
        config = gtx480_config("none")
        _, roofline = run_both(config, encrypted=True)
        assert roofline.engine_cycles == 0.0

    def test_authentication_adds_dram_bytes(self):
        import dataclasses

        base = gtx480_config("counter")
        authed = dataclasses.replace(
            base,
            encryption=dataclasses.replace(base.encryption, authenticate=True),
        )
        streams = matmul_streams(base, 256, 256, 256, heap=SecureHeap())
        from repro.sim.roofline import predict_streams as ps

        assert ps(streams, authed).dram_cycles > ps(streams, base).dram_cycles