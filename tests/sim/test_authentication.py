"""Memory-authentication performance-model tests (extension of [24])."""

import dataclasses

import pytest

from repro.sim.config import gtx480_config
from repro.sim.memctrl import MemoryController
from repro.sim.request import Access, MemRequest


def auth_config(mode="counter", selective=False):
    base = gtx480_config(mode, selective=selective)
    return dataclasses.replace(
        base,
        encryption=dataclasses.replace(base.encryption, authenticate=True),
    )


class TestAuthenticatedController:
    def test_mac_traffic_charged_per_line(self):
        mc = MemoryController(0, auth_config())
        mc.submit(MemRequest(0, 512, Access.READ, True), 0)
        assert mc.stats.mac_bytes == 4 * 8  # 4 lines x 8-byte tags

    def test_authentication_adds_latency(self):
        plain = MemoryController(0, gtx480_config("counter"))
        authed = MemoryController(0, auth_config())
        request = MemRequest(0, 128, Access.READ, True)
        assert authed.submit(request, 0) > plain.submit(request, 0)

    def test_writes_store_tags(self):
        mc = MemoryController(0, auth_config())
        done_plain = MemoryController(0, gtx480_config("counter")).submit(
            MemRequest(0, 128, Access.WRITE, True), 0
        )
        done_auth = mc.submit(MemRequest(0, 128, Access.WRITE, True), 0)
        assert done_auth > done_plain
        assert mc.stats.mac_bytes == 8

    def test_bypass_lines_not_authenticated(self):
        mc = MemoryController(0, auth_config(selective=True))
        mc.submit(MemRequest(0, 128, Access.READ, False), 0)
        assert mc.stats.mac_bytes == 0

    def test_direct_mode_also_supported(self):
        mc = MemoryController(0, auth_config(mode="direct"))
        mc.submit(MemRequest(0, 128, Access.READ, True), 0)
        assert mc.stats.mac_bytes == 8

    def test_total_bytes_includes_macs(self):
        mc = MemoryController(0, auth_config())
        mc.submit(MemRequest(0, 128, Access.READ, True), 0)
        assert (
            mc.stats.total_bytes
            == mc.stats.data_bytes + mc.stats.counter_fetch_bytes + mc.stats.mac_bytes
        )

    def test_overhead_is_modest(self):
        """8-byte tags on 128-byte lines: ~6% traffic, small slowdown."""
        base = gtx480_config("counter")
        plain = MemoryController(0, base)
        authed = MemoryController(0, auth_config())
        last_plain = last_auth = 0.0
        for index in range(200):
            request = MemRequest(index * 128, 128, Access.READ, True)
            last_plain = plain.submit(request, 0)
            last_auth = authed.submit(request, 0)
        assert last_auth / last_plain < 1.35
