"""Configuration tests: the paper's GTX480 parameters and derived rates."""

import pytest

from repro.crypto.engine import PAPER_ENGINE
from repro.sim.config import (
    GTX480_CONFIG,
    EncryptionConfig,
    EncryptionMode,
    GpuConfig,
    gtx480_config,
)


class TestGtx480Defaults:
    def test_paper_parameters(self):
        # Section IV-A: 15 SMs, GDDR5 1848 MHz, 384-bit, 6 channels.
        assert GTX480_CONFIG.num_sms == 15
        assert GTX480_CONFIG.num_channels == 6
        assert GTX480_CONFIG.core_clock_ghz == pytest.approx(0.7)

    def test_total_bandwidth_matches_gtx480(self):
        # 1848 MHz x 2 (DDR) x 48 bytes = 177.4 GB/s.
        assert GTX480_CONFIG.total_bandwidth_gbps == pytest.approx(177.4, rel=0.01)

    def test_bandwidth_gap(self):
        # 6 engines x 8 GB/s = 48 GB/s << 177 GB/s: the paper's key gap.
        engines = GTX480_CONFIG.num_channels * PAPER_ENGINE.throughput_gbps
        assert engines / GTX480_CONFIG.total_bandwidth_gbps < 0.3

    def test_derived_bytes_per_cycle(self):
        assert GTX480_CONFIG.channel_bytes_per_cycle == pytest.approx(42.24, rel=0.01)

    def test_peak_ipc(self):
        assert GTX480_CONFIG.peak_ipc == 15

    def test_peak_macs(self):
        assert GTX480_CONFIG.peak_macs_per_cycle == 15 * 32


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GpuConfig(num_sms=0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            GpuConfig(line_bytes=100)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            GpuConfig(channel_bandwidth_gbps=0.0)


class TestEncryptionConfig:
    def test_labels_match_paper(self):
        assert EncryptionConfig().label() == "Baseline"
        assert EncryptionConfig(mode=EncryptionMode.DIRECT).label() == "Direct"
        assert EncryptionConfig(mode=EncryptionMode.COUNTER).label() == "Counter"
        assert (
            EncryptionConfig(mode=EncryptionMode.DIRECT, selective=True).label()
            == "SEAL-D"
        )
        assert (
            EncryptionConfig(mode=EncryptionMode.COUNTER, selective=True).label()
            == "SEAL-C"
        )

    def test_enabled_flag(self):
        assert not EncryptionConfig().enabled
        assert EncryptionConfig(mode=EncryptionMode.DIRECT).enabled

    def test_with_encryption_copies(self):
        new = GTX480_CONFIG.with_encryption(
            EncryptionConfig(mode=EncryptionMode.DIRECT)
        )
        assert new.encryption.enabled
        assert not GTX480_CONFIG.encryption.enabled
        assert new.num_sms == GTX480_CONFIG.num_sms


class TestFactory:
    def test_string_mode_accepted(self):
        config = gtx480_config("direct")
        assert config.encryption.mode is EncryptionMode.DIRECT

    @pytest.mark.parametrize("kb", [24, 96, 384, 1536])
    def test_counter_cache_split_across_channels(self, kb):
        config = gtx480_config("counter", counter_cache_kb=kb)
        per_mc = config.encryption.counter_cache.size_bytes
        assert per_mc * config.num_channels == pytest.approx(kb * 1024, rel=0.05)

    def test_engine_bytes_per_cycle(self):
        config = gtx480_config("direct")
        assert config.engine_bytes_per_cycle == pytest.approx(8.0 / 0.7, rel=0.01)

    def test_selective_flag(self):
        assert gtx480_config("direct", selective=True).encryption.selective
