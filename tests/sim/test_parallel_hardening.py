"""Hardened run_units: named failures, retry, crash isolation, cache safety."""

import math
from dataclasses import fields

import pytest

from repro.core.plan import LayerTraffic
from repro.faults.chaos import CHAOS_ENV_VAR
from repro.faults.runner import RetryPolicy, UnitExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.sim import parallel
from repro.sim.parallel import SimulationCache, run_units
from repro.sim.runner import layer_unit


def _traffic(name: str, m: int = 8) -> LayerTraffic:
    return LayerTraffic(
        name=name,
        kind="fc",
        macs=m * m * m,
        weight_bytes_encrypted=m * m * 2,
        weight_bytes_plain=m * m * 2,
        input_bytes_encrypted=m * m * 2,
        input_bytes_plain=m * m * 2,
        output_bytes_encrypted=m * m * 2,
        output_bytes_plain=m * m * 2,
        gemm_m=m,
        gemm_n=m,
        gemm_k=m,
    )


def test_serial_failure_names_the_unit_key(monkeypatch):
    units = [layer_unit(_traffic("alpha"), "Baseline"), layer_unit(_traffic("beta", 12), "SEAL-D")]
    real = parallel.simulate_unit

    def sabotage(unit):
        if unit.label == units[1].label:
            raise RuntimeError("simulator exploded")
        return real(unit)

    monkeypatch.setattr(parallel, "simulate_unit", sabotage)
    cache = SimulationCache()
    with pytest.raises(UnitExecutionError) as excinfo:
        run_units(units, jobs=1, cache=cache, metrics=MetricsRegistry())
    assert excinfo.value.key == units[1].key()
    assert units[1].key()[:16] in str(excinfo.value)
    assert excinfo.value.label == units[1].label
    # the healthy unit's result was cached before the error propagated
    assert cache.get(units[0].key()) is not None


def test_serial_retry_recovers_flaky_unit(monkeypatch):
    unit = layer_unit(_traffic("gamma"), "Baseline")
    real = parallel.simulate_unit
    calls = {"n": 0}

    def flaky(u):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return real(u)

    monkeypatch.setattr(parallel, "simulate_unit", flaky)
    metrics = MetricsRegistry()
    results = run_units(
        [unit],
        jobs=1,
        cache=False,
        metrics=metrics,
        policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
    )
    assert len(results) == 1 and results[0].label == unit.label
    assert metrics.counter("runner.retries") == 1
    assert metrics.snapshot()["derived"]["runner_retry_rate"] == 0.5


def test_pool_chaos_failure_spares_other_units(monkeypatch, tmp_path):
    units = [
        layer_unit(_traffic("alpha"), "Baseline"),
        layer_unit(_traffic("beta", 12), "Baseline"),
    ]
    monkeypatch.setenv(
        CHAOS_ENV_VAR, '{"fail": ["%s"]}' % units[1].label
    )
    cache = SimulationCache()
    with pytest.raises(UnitExecutionError) as excinfo:
        run_units(units, jobs=2, cache=cache, metrics=MetricsRegistry())
    assert excinfo.value.label == units[1].label
    assert cache.get(units[0].key()) is not None
    # rerun without chaos: the survivor is a cache hit, only the failed
    # unit recomputes, and the batch completes
    monkeypatch.delenv(CHAOS_ENV_VAR)
    metrics = MetricsRegistry()
    results = run_units(units, jobs=2, cache=cache, metrics=metrics)
    assert [r.label for r in results] == [u.label for u in units]
    assert metrics.counter("sim.cache.hits") == 1


def test_pool_chaos_crash_retried_with_policy(monkeypatch, tmp_path):
    units = [
        layer_unit(_traffic("alpha"), "Baseline"),
        layer_unit(_traffic("beta", 12), "Baseline"),
    ]
    monkeypatch.setenv(
        CHAOS_ENV_VAR,
        '{"crash": ["%s"], "sentinel_dir": "%s"}' % (units[0].label, tmp_path),
    )
    metrics = MetricsRegistry()
    results = run_units(
        units,
        jobs=2,
        cache=False,
        metrics=metrics,
        policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
    )
    assert [r.label for r in results] == [u.label for u in units]
    assert metrics.counter("runner.crashes") >= 1
    assert metrics.counter("runner.pool_restarts") >= 1


def test_hardened_results_match_plain_serial_run():
    units = [
        layer_unit(_traffic("alpha"), scheme)
        for scheme in ("Baseline", "SEAL-D", "Counter")
    ]
    plain = run_units(units, jobs=1, cache=False, metrics=MetricsRegistry())
    hardened = run_units(
        units,
        jobs=2,
        cache=False,
        metrics=MetricsRegistry(),
        policy=RetryPolicy(max_attempts=3, timeout_seconds=120.0),
    )
    for a, b in zip(plain, hardened):
        for f in fields(a):
            va, vb = getattr(a, f.name), getattr(b, f.name)
            if isinstance(va, float) and math.isnan(va):
                assert math.isnan(vb)
            else:
                assert va == vb, f.name
