"""SM-model unit tests: TileStep validation and SmState bookkeeping."""

import pytest

from repro.sim.request import Access, MemRequest
from repro.sim.sm import SmState, SmStats, TileStep


class TestTileStep:
    def test_instructions_default_to_compute_cycles(self):
        step = TileStep(compute_cycles=25)
        assert step.instructions == 25

    def test_explicit_instructions(self):
        step = TileStep(compute_cycles=10, instructions=99)
        assert step.instructions == 99

    def test_zero_compute_allowed(self):
        # Pure-memory steps (e.g. prefetch-only) are legal.
        step = TileStep(compute_cycles=0)
        assert step.instructions == 0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            TileStep(compute_cycles=-1)

    def test_is_frozen(self):
        step = TileStep(compute_cycles=5)
        with pytest.raises(Exception):
            step.compute_cycles = 10


class TestMemRequest:
    def test_lines_single(self):
        req = MemRequest(0, 128, Access.READ, False)
        assert req.lines(128) == 1

    def test_lines_straddling(self):
        req = MemRequest(64, 128, Access.READ, False)
        assert req.lines(128) == 2

    def test_lines_large(self):
        req = MemRequest(0, 1024, Access.READ, False)
        assert req.lines(128) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            MemRequest(0, 0, Access.READ, False)
        with pytest.raises(ValueError):
            MemRequest(-1, 128, Access.READ, False)

    def test_is_read(self):
        assert MemRequest(0, 1, Access.READ, False).is_read
        assert not MemRequest(0, 1, Access.WRITE, False).is_read


class TestSmState:
    def test_done_on_empty(self):
        state = SmState(sm_id=0, steps=[])
        assert state.done

    def test_next_event_time_is_max(self):
        state = SmState(sm_id=0, steps=[TileStep(1)])
        state.ready_time = 50.0
        state.compute_end = 80.0
        assert state.next_event_time == 80.0

    def test_stats_default(self):
        stats = SmStats()
        assert stats.instructions == 0
        assert stats.steps == 0
