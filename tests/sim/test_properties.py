"""Property-based simulator tests: ordering and conservation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import LayerTraffic
from repro.sim.config import gtx480_config
from repro.sim.gpu import GpuSimulator
from repro.sim.request import Access, MemRequest
from repro.sim.runner import run_layer
from repro.sim.sm import TileStep


def _layer(kind, m, n, k, enc_fraction):
    """Synthetic layer-traffic record with a given encrypted fraction."""
    w = k * n * 4
    a = m * k * 4
    c = m * n * 4

    def split(total):
        enc = int(total * enc_fraction)
        return enc, total - enc

    we, wp = split(w)
    ae, ap = split(a)
    ce, cp = split(c)
    return LayerTraffic(
        name=f"synthetic-{kind}",
        kind=kind,
        macs=m * n * k,
        weight_bytes_encrypted=we,
        weight_bytes_plain=wp,
        input_bytes_encrypted=ae,
        input_bytes_plain=ap,
        output_bytes_encrypted=ce,
        output_bytes_plain=cp,
        gemm_m=m,
        gemm_n=n,
        gemm_k=k,
    )


class TestOrderingProperties:
    @given(
        st.sampled_from([(512, 512, 512), (1024, 256, 256)]),
        st.floats(0.3, 0.9),
    )
    @settings(max_examples=6, deadline=None)
    def test_more_encryption_never_faster(self, dims, fraction):
        # Bandwidth-bound sizes: on tiny latency-bound kernels the split
        # pattern noise (row-buffer, request counts) can exceed the
        # encryption effect, so the monotone ordering only holds once the
        # engine is a real bottleneck.
        m, n, k = dims
        low = run_layer(_layer("fc", m, n, k, fraction * 0.3), "SEAL-D")
        high = run_layer(_layer("fc", m, n, k, fraction), "SEAL-D")
        assert high.cycles >= low.cycles * 0.95

    @given(st.sampled_from([(128, 128, 128), (64, 256, 128)]))
    @settings(max_examples=6, deadline=None)
    def test_baseline_at_least_as_fast_as_any_scheme(self, dims):
        m, n, k = dims
        traffic = _layer("fc", m, n, k, 0.5)
        baseline = run_layer(traffic, "Baseline")
        for scheme in ("Direct", "Counter", "SEAL-D", "SEAL-C"):
            result = run_layer(traffic, scheme)
            assert result.cycles >= baseline.cycles * 0.999

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_instructions_independent_of_scheme(self, seed):
        rng = np.random.default_rng(seed)
        m, n, k = (int(rng.integers(32, 256)) for _ in range(3))
        traffic = _layer("fc", m, n, k, 0.5)
        counts = {
            scheme: run_layer(traffic, scheme).instructions
            for scheme in ("Baseline", "Direct", "SEAL-C")
        }
        assert len(set(counts.values())) == 1


class TestConservation:
    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, 8), st.booleans()),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_bytes_in_equals_bytes_counted(self, step_specs):
        config = gtx480_config("direct")
        simulator = GpuSimulator(config)
        total = 0
        steps = []
        for index, (compute, kilobytes, encrypted) in enumerate(step_specs):
            reads = ()
            if kilobytes:
                size = kilobytes * 1024
                total += size
                reads = (
                    MemRequest(index * (1 << 20), size, Access.READ, encrypted),
                )
            steps.append(TileStep(compute_cycles=compute, reads=reads))
        result = simulator.run([steps])
        assert result.data_bytes == total
        assert result.encrypted_bytes + result.bypass_bytes == total

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_cycles_at_least_busy_time(self, compute):
        config = gtx480_config("none")
        simulator = GpuSimulator(config)
        steps = [TileStep(compute_cycles=compute)] * 3
        result = simulator.run([steps])
        assert result.cycles >= 3 * compute
        assert result.instructions == 3 * compute
