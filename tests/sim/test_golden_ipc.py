"""Golden-result regression suite for the parallel cached runner.

Pins the normalized IPC of all five schemes on a small fixed model, and
locks the parallel/cached execution paths to the serial uncached reference
(:func:`repro.sim.runner.run_layer`): every ``SimResult`` field must be
identical — not approximately equal — no matter the worker count or cache
state.  The only NaN-valued field (``counter_hit_rate`` outside counter
mode) is compared NaN-aware, since ``nan != nan``.
"""

import json
import math
from dataclasses import fields

import pytest

from repro.core.plan import ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import build_model
from repro.obs.metrics import MetricsRegistry
from repro.sim.parallel import SimulationCache, run_units
from repro.sim.runner import SCHEMES, compare_schemes, layer_unit, run_layer

#: Normalized IPC of the MLP model at ratio 0.5, GTX480 config, as
#: simulated by the serial reference runner.  These are exact simulation
#: outputs (the traffic lowering is count-based, so random weight init
#: does not move them); a drift here means the simulator's math changed.
GOLDEN_NORMALIZED_IPC = {
    "Baseline": 1.0,
    "Direct": 0.546478563,
    "Counter": 0.547430372,
    "SEAL-D": 0.749939880,
    "SEAL-C": 0.748941268,
}

#: Same pins for the registered :mod:`repro.schemes` instances on the
#: same workload.  ``direct`` maps onto the exact config of the paper's
#: Direct scheme, so its value matches above; the authenticated schemes
#: pay their MAC/counter metadata traffic (seculator's slimmer metadata
#: path lands it above counter-gmac).
REGISTRY_GOLDEN_NORMALIZED_IPC = {
    "seal-se": 0.725189934,
    "direct": 0.546478563,
    "counter-gmac": 0.535086582,
    "seculator": 0.536865022,
}


def assert_results_identical(a, b):
    """Field-for-field SimResult equality, treating NaN == NaN."""
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ):
            continue
        assert va == vb, f"{a.label}: field {f.name} differs: {va!r} != {vb!r}"


@pytest.fixture(scope="module", params=["scalar", "vector"])
def sim_backend(request):
    """Run the golden suite under both simulator backends.

    The env var (not a plumbed argument) is what ``run_layer`` and the
    parallel runner's worker processes resolve, so one fixture pins every
    execution path in the module to the requested engine.
    """
    import os

    from repro.sim.engine import ENV_VAR

    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = request.param
    yield request.param
    if previous is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = previous


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(
        build_model("mlp"), 0.5, input_shape=(3, 32, 32)
    )


@pytest.fixture(scope="module")
def serial_results(plan, sim_backend):
    """The uncached serial reference: one run_layer call per unit.

    Parametrized over both simulator backends — the golden values are
    properties of the simulation, not of the engine that replayed it.
    The pinning below compares whole-model aggregates (summed
    instructions over summed cycles), which are insensitive to the order
    individual layer results arrive in.
    """
    traffics = plan.layer_traffic()
    return {
        scheme: [run_layer(traffic, scheme) for traffic in traffics]
        for scheme in SCHEMES
    }


class TestGoldenNormalizedIpc:
    def test_all_schemes_pinned(self, serial_results):
        baseline = serial_results["Baseline"]
        baseline_ipc = sum(r.instructions for r in baseline) / sum(
            r.cycles for r in baseline
        )
        for scheme, golden in GOLDEN_NORMALIZED_IPC.items():
            results = serial_results[scheme]
            ipc = sum(r.instructions for r in results) / sum(
                r.cycles for r in results
            )
            assert ipc / baseline_ipc == pytest.approx(golden, rel=1e-6), scheme

    def test_scheme_ordering(self, serial_results):
        normalized = {}
        baseline = serial_results["Baseline"]
        baseline_ipc = sum(r.instructions for r in baseline) / sum(
            r.cycles for r in baseline
        )
        for scheme, results in serial_results.items():
            ipc = sum(r.instructions for r in results) / sum(
                r.cycles for r in results
            )
            normalized[scheme] = ipc / baseline_ipc
        assert normalized["Direct"] < normalized["SEAL-D"] <= 1.0
        assert normalized["Counter"] < normalized["SEAL-C"] <= 1.0


_REGISTRY_SERIAL: dict = {}


def registry_serial_results(plan, sim_backend, scheme_name):
    """Serial reference runs per (sim backend, registered scheme),
    memoised so the pinning and identity tests share one computation."""
    key = (sim_backend, scheme_name)
    if key not in _REGISTRY_SERIAL:
        _REGISTRY_SERIAL[key] = [
            run_layer(traffic, scheme_name) for traffic in plan.layer_traffic()
        ]
    return _REGISTRY_SERIAL[key]


class TestRegistrySchemeGoldens:
    """Golden IPC + parallel identity for every registered
    ProtectionScheme (the ``scheme_name`` fixture in tests/conftest.py)
    — the sim half of the scheme-parametrized regression matrix."""

    def test_normalized_ipc_pinned(self, plan, sim_backend, serial_results, scheme_name):
        baseline = serial_results["Baseline"]
        baseline_ipc = sum(r.instructions for r in baseline) / sum(
            r.cycles for r in baseline
        )
        results = registry_serial_results(plan, sim_backend, scheme_name)
        ipc = sum(r.instructions for r in results) / sum(
            r.cycles for r in results
        )
        assert ipc / baseline_ipc == pytest.approx(
            REGISTRY_GOLDEN_NORMALIZED_IPC[scheme_name], rel=1e-6
        ), scheme_name

    def test_parallel_cached_identical(self, plan, sim_backend, scheme_name):
        serial = registry_serial_results(plan, sim_backend, scheme_name)
        parallel = compare_schemes(
            plan, (scheme_name,), jobs=2, cache=SimulationCache()
        )
        assert len(parallel[scheme_name].layer_results) == len(serial)
        for a, b in zip(serial, parallel[scheme_name].layer_results):
            assert_results_identical(a, b)

    def test_rival_scheme_beats_counter_gmac(self):
        """The Seculator-style metadata path must actually pay off."""
        assert (
            REGISTRY_GOLDEN_NORMALIZED_IPC["seculator"]
            > REGISTRY_GOLDEN_NORMALIZED_IPC["counter-gmac"]
        )


class TestParallelMatchesSerial:
    def test_cached_jobs1_identical(self, plan, serial_results):
        results = compare_schemes(plan, SCHEMES, jobs=1, cache=SimulationCache())
        for scheme in SCHEMES:
            assert len(results[scheme].layer_results) == len(serial_results[scheme])
            for a, b in zip(serial_results[scheme], results[scheme].layer_results):
                assert_results_identical(a, b)

    def test_pool_jobs4_identical(self, plan, serial_results):
        results = compare_schemes(plan, SCHEMES, jobs=4, cache=SimulationCache())
        for scheme in SCHEMES:
            for a, b in zip(serial_results[scheme], results[scheme].layer_results):
                assert_results_identical(a, b)

    def test_warm_cache_identical(self, plan, serial_results):
        cache = SimulationCache()
        compare_schemes(plan, SCHEMES, cache=cache)  # warm every key
        warm = compare_schemes(plan, SCHEMES, cache=cache)
        for scheme in SCHEMES:
            for a, b in zip(serial_results[scheme], warm[scheme].layer_results):
                assert_results_identical(a, b)

    def test_cache_disabled_identical(self, plan, serial_results):
        results = compare_schemes(plan, SCHEMES, cache=False)
        for scheme in SCHEMES:
            for a, b in zip(serial_results[scheme], results[scheme].layer_results):
                assert_results_identical(a, b)

    def test_run_units_preserves_submission_order(self, plan):
        traffics = plan.layer_traffic()
        units = [
            layer_unit(traffic, scheme)
            for scheme in ("SEAL-D", "Baseline")
            for traffic in traffics
        ]
        results = run_units(units, cache=SimulationCache(), metrics=MetricsRegistry())
        assert [r.label for r in results] == [u.label for u in units]


class TestResnet18CacheHits:
    """Acceptance: a ResNet-18 run reports a positive cache hit rate in
    its metrics JSON — its repeated residual blocks dedupe to one
    simulation each."""

    def test_cache_hit_rate_positive_in_metrics_json(self, tmp_path):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(
            build_model("resnet18"), 0.5, input_shape=(3, 32, 32)
        )
        metrics = MetricsRegistry()
        cache = SimulationCache()
        units = []
        for scheme in SCHEMES:
            for traffic in plan.layer_traffic():
                units.append(layer_unit(traffic, scheme))
        results = run_units(units, jobs=2, cache=cache, metrics=metrics)
        assert len(results) == len(units)

        path = metrics.emit(tmp_path / "resnet18_metrics.json")
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.metrics/v1"
        assert document["counters"]["sim.cache.hits"] > 0
        assert document["derived"]["cache_hit_rate"] > 0
        # The cache never trades away correctness for reuse: a hit returns
        # exactly what a fresh simulation of that unit produces.
        spot = units[-1]
        assert_results_identical(
            results[-1],
            run_layer(
                spot.traffic, "SEAL-C", config=spot.config, tile=spot.tile
            ),
        )
