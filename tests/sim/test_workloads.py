"""Workload-lowering tests: byte/MAC conservation and criticality tagging."""

import numpy as np
import pytest

from repro.core.memory import SecureHeap
from repro.core.plan import ModelEncryptionPlan
from repro.nn.layers import set_init_rng
from repro.nn.models import vgg16
from repro.sim.config import gtx480_config
from repro.sim.request import Access
from repro.sim.workloads import (
    gemm_layer_streams,
    layer_streams,
    matmul_streams,
    matmul_traffic,
    pool_layer_streams,
)

CONFIG = gtx480_config("none")


def stream_bytes(streams, access):
    total = 0
    for stream in streams:
        for step in stream:
            requests = step.reads if access is Access.READ else step.writes
            total += sum(r.size for r in requests)
    return total


def stream_macs(streams):
    return sum(
        step.compute_cycles * CONFIG.macs_per_sm_per_cycle
        for stream in streams
        for step in stream
    )


@pytest.fixture(scope="module")
def plan():
    set_init_rng(0)
    return ModelEncryptionPlan.build(vgg16(width_scale=0.25), 0.5)


class TestMatmul:
    def test_read_bytes_match_tiling_model(self):
        m = n = k = 256
        tile = 32
        streams = matmul_streams(CONFIG, m, n, k, tile=tile, heap=SecureHeap())
        expected = 2 * (m // tile) * (n // tile) * (k) * tile * 4
        assert stream_bytes(streams, Access.READ) == expected

    def test_write_bytes_equal_c_matrix(self):
        m = n = k = 128
        streams = matmul_streams(CONFIG, m, n, k, heap=SecureHeap())
        assert stream_bytes(streams, Access.WRITE) == m * n * 4

    def test_compute_cycles_cover_all_macs(self):
        m = n = k = 128
        streams = matmul_streams(CONFIG, m, n, k, heap=SecureHeap())
        assert stream_macs(streams) >= m * n * k

    def test_encrypted_flag_propagates(self):
        streams = matmul_streams(CONFIG, 64, 64, 64, encrypted=True, heap=SecureHeap())
        requests = [r for s in streams for st in s for r in st.reads]
        assert requests and all(r.encrypted for r in requests)

    def test_plaintext_matmul(self):
        streams = matmul_streams(CONFIG, 64, 64, 64, encrypted=False, heap=SecureHeap())
        requests = [r for s in streams for st in s for r in st.reads]
        assert requests and not any(r.encrypted for r in requests)

    def test_work_distributed_across_sms(self):
        streams = matmul_streams(CONFIG, 512, 512, 64, heap=SecureHeap())
        active = sum(1 for s in streams if s)
        assert active == CONFIG.num_sms

    def test_non_tile_multiple_dimensions(self):
        # 100 is not a multiple of 32: edge tiles must still conserve bytes.
        streams = matmul_streams(CONFIG, 100, 100, 100, heap=SecureHeap())
        assert stream_bytes(streams, Access.WRITE) == 100 * 100 * 4

    def test_traffic_record(self):
        traffic = matmul_traffic(64, 32, 16)
        assert traffic.macs == 64 * 32 * 16
        assert traffic.total_bytes == (64 * 16 + 16 * 32 + 64 * 32) * 4
        assert traffic.encrypted_fraction == 1.0


class TestGemmLayers:
    def test_conv_layer_split_fractions(self, plan):
        traffic = next(t for t in plan.layer_traffic() if t.kind == "conv")
        streams = gemm_layer_streams(CONFIG, traffic, heap=SecureHeap())
        requests = [r for s in streams for st in s for r in st.reads]
        assert requests
        enc = sum(r.size for r in requests if r.encrypted)
        total = sum(r.size for r in requests)
        expected = (
            traffic.input_bytes_encrypted + traffic.weight_bytes_encrypted
        ) / (
            traffic.input_bytes_encrypted
            + traffic.input_bytes_plain
            + traffic.weight_bytes_encrypted
            + traffic.weight_bytes_plain
        )
        assert enc / total == pytest.approx(expected, abs=0.05)

    def test_selective_layer_has_both_criticalities(self, plan):
        selective = plan.selective_layers[0]
        traffic = next(t for t in plan.layer_traffic() if t.name == selective.name)
        streams = gemm_layer_streams(CONFIG, traffic, heap=SecureHeap())
        requests = [r for s in streams for st in s for r in st.reads]
        assert any(r.encrypted for r in requests)
        assert any(not r.encrypted for r in requests)

    def test_rejects_pool_traffic(self, plan):
        pool = next(t for t in plan.layer_traffic() if t.kind == "pool")
        with pytest.raises(ValueError):
            gemm_layer_streams(CONFIG, pool, heap=SecureHeap())

    def test_step_budget_respected_for_huge_layers(self):
        traffic = matmul_traffic(4096, 4096, 4096)
        streams = matmul_streams(CONFIG, 4096, 4096, 4096, heap=SecureHeap())
        from repro.sim.workloads import MAX_STEPS_PER_SM

        assert max(len(s) for s in streams) <= MAX_STEPS_PER_SM * 2
        # Bytes are conserved despite k-step merging.
        assert stream_bytes(streams, Access.WRITE) == traffic.gemm_m * traffic.gemm_n * 4


class TestPoolLayers:
    def test_read_bytes_equal_input(self, plan):
        traffic = next(t for t in plan.layer_traffic() if t.kind == "pool")
        streams = pool_layer_streams(CONFIG, traffic, heap=SecureHeap())
        in_total = traffic.input_bytes_encrypted + traffic.input_bytes_plain
        assert stream_bytes(streams, Access.READ) == in_total

    def test_write_bytes_close_to_output(self, plan):
        traffic = next(t for t in plan.layer_traffic() if t.kind == "pool")
        streams = pool_layer_streams(CONFIG, traffic, heap=SecureHeap())
        out_total = traffic.output_bytes_encrypted + traffic.output_bytes_plain
        written = stream_bytes(streams, Access.WRITE)
        assert written == pytest.approx(out_total, rel=0.02)

    def test_pool_is_memory_dominated(self, plan):
        """The structural fact behind Figure 6: POOL moves ~1 byte per op."""
        traffic = next(t for t in plan.layer_traffic() if t.kind == "pool")
        streams = pool_layer_streams(CONFIG, traffic, heap=SecureHeap())
        macs = stream_macs(streams)
        in_total = traffic.input_bytes_encrypted + traffic.input_bytes_plain
        assert macs / in_total < 16  # orders below GEMM intensity

    def test_rejects_gemm_traffic(self, plan):
        conv = next(t for t in plan.layer_traffic() if t.kind == "conv")
        with pytest.raises(ValueError):
            pool_layer_streams(CONFIG, conv, heap=SecureHeap())

    def test_dispatch(self, plan):
        for traffic in plan.layer_traffic():
            streams = layer_streams(CONFIG, traffic, heap=SecureHeap())
            assert len(streams) == CONFIG.num_sms


class TestAddressing:
    def test_requests_carry_heap_addresses(self, plan):
        heap = SecureHeap()
        traffic = next(t for t in plan.layer_traffic() if t.kind == "conv")
        streams = gemm_layer_streams(CONFIG, traffic, heap=heap)
        allocations = list(heap)
        assert allocations
        low = min(a.address for a in allocations)
        high = max(a.end for a in allocations)
        for stream in streams:
            for step in stream:
                for request in (*step.reads, *step.writes):
                    assert low <= request.address < high

    def test_criticality_matches_heap_region(self, plan):
        heap = SecureHeap()
        traffic = next(t for t in plan.layer_traffic() if t.kind == "conv")
        streams = gemm_layer_streams(CONFIG, traffic, heap=heap)
        for stream in streams:
            for step in stream:
                for request in (*step.reads, *step.writes):
                    assert heap.is_encrypted(request.address) == request.encrypted

    def test_line_alignment(self, plan):
        traffic = next(t for t in plan.layer_traffic() if t.kind == "conv")
        streams = gemm_layer_streams(CONFIG, traffic, heap=SecureHeap())
        for stream in streams:
            for step in stream:
                for request in step.reads:
                    assert request.address % CONFIG.line_bytes == 0
