"""Property tests for the parallel cached runner.

For arbitrary layer-traffic records: a cache hit returns exactly what the
cold run produced, cache keys ignore display names, and the merged result
order depends only on submission order — never on worker count.
"""

import math
from dataclasses import fields, replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import LayerTraffic
from repro.obs.metrics import MetricsRegistry
from repro.sim.parallel import SimulationCache, cache_key, run_units
from repro.sim.runner import SCHEMES, layer_unit


def _identical(a, b) -> bool:
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ):
            continue
        if va != vb:
            return False
    return True


def _split(total: int, fraction: float) -> tuple[int, int]:
    encrypted = int(total * fraction)
    return encrypted, total - encrypted


@st.composite
def traffics(draw) -> LayerTraffic:
    """Small random conv/fc/pool traffic records (cheap to simulate)."""
    kind = draw(st.sampled_from(["conv", "fc", "pool"]))
    fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    name = draw(st.sampled_from(["alpha", "beta", "gamma"]))
    if kind == "pool":
        in_bytes = draw(st.integers(min_value=1, max_value=48)) * 1024
        out_bytes = max(in_bytes // 4, 256)
        in_enc, in_plain = _split(in_bytes, fraction)
        out_enc, out_plain = _split(out_bytes, fraction)
        return LayerTraffic(
            name=name,
            kind="pool",
            macs=in_bytes // 4,
            weight_bytes_encrypted=0,
            weight_bytes_plain=0,
            input_bytes_encrypted=in_enc,
            input_bytes_plain=in_plain,
            output_bytes_encrypted=out_enc,
            output_bytes_plain=out_plain,
        )
    m = draw(st.integers(min_value=4, max_value=48))
    n = draw(st.integers(min_value=4, max_value=48))
    k = draw(st.integers(min_value=4, max_value=48))
    w_enc, w_plain = _split(k * n * 4, fraction)
    a_enc, a_plain = _split(m * k * 4, fraction)
    c_enc, c_plain = _split(m * n * 4, fraction)
    return LayerTraffic(
        name=name,
        kind=kind,
        macs=m * n * k,
        weight_bytes_encrypted=w_enc,
        weight_bytes_plain=w_plain,
        input_bytes_encrypted=a_enc,
        input_bytes_plain=a_plain,
        output_bytes_encrypted=c_enc,
        output_bytes_plain=c_plain,
        gemm_m=m,
        gemm_n=n,
        gemm_k=k,
    )


class TestCacheSemantics:
    @given(traffic=traffics(), scheme=st.sampled_from(SCHEMES))
    @settings(max_examples=25, deadline=None)
    def test_cache_hit_equals_cold_run(self, traffic, scheme):
        unit = layer_unit(traffic, scheme)
        cache = SimulationCache()
        (cold,) = run_units([unit], cache=cache, metrics=MetricsRegistry())
        metrics = MetricsRegistry()
        (warm,) = run_units([unit], cache=cache, metrics=metrics)
        assert metrics.counter("sim.cache.hits") == 1
        assert metrics.counter("sim.cache.misses") == 0
        assert _identical(cold, warm)

    @given(traffic=traffics(), scheme=st.sampled_from(SCHEMES))
    @settings(max_examples=25, deadline=None)
    def test_cache_key_ignores_name_only(self, traffic, scheme):
        unit = layer_unit(traffic, scheme)
        renamed = layer_unit(replace(traffic, name="renamed"), scheme)
        assert unit.key() == renamed.key()
        # ...but any simulated quantity entering the key separates it.
        grown = layer_unit(
            replace(traffic, input_bytes_plain=traffic.input_bytes_plain + 128),
            scheme,
        )
        assert unit.key() != grown.key()

    @given(traffic=traffics(), scheme=st.sampled_from(SCHEMES))
    @settings(max_examples=10, deadline=None)
    def test_renamed_layer_reuses_simulation_with_own_label(self, traffic, scheme):
        """Repeated same-shape layers (ResNet blocks) share one simulation
        but keep their own labels; every other field matches exactly."""
        original = layer_unit(traffic, scheme)
        renamed = layer_unit(replace(traffic, name="renamed"), scheme)
        metrics = MetricsRegistry()
        first, second = run_units(
            [original, renamed], cache=SimulationCache(), metrics=metrics
        )
        assert metrics.counter("sim.cache.misses") == 1
        assert metrics.counter("sim.cache.hits") == 1
        assert first.label == original.label
        assert second.label == renamed.label
        assert _identical(first, replace(second, label=first.label))


class TestMergeDeterminism:
    @given(
        batch=st.lists(traffics(), min_size=2, max_size=4),
        jobs=st.sampled_from([2, 3]),
    )
    @settings(max_examples=5, deadline=None)
    def test_merge_order_independent_of_worker_count(self, batch, jobs):
        units = [
            layer_unit(traffic, scheme)
            for traffic in batch
            for scheme in ("Baseline", "SEAL-D")
        ]
        serial = run_units(
            units, jobs=1, cache=SimulationCache(), metrics=MetricsRegistry()
        )
        pooled = run_units(
            units, jobs=jobs, cache=SimulationCache(), metrics=MetricsRegistry()
        )
        assert len(serial) == len(pooled) == len(units)
        for a, b in zip(serial, pooled):
            assert _identical(a, b)

    @given(batch=st.lists(traffics(), min_size=2, max_size=5, unique_by=id))
    @settings(max_examples=10, deadline=None)
    def test_results_follow_submission_order(self, batch):
        units = [
            layer_unit(replace(traffic, name=f"layer{i}"), "Direct")
            for i, traffic in enumerate(batch)
        ]
        reversed_units = list(reversed(units))
        cache = SimulationCache()
        forward = run_units(units, cache=cache, metrics=MetricsRegistry())
        backward = run_units(reversed_units, cache=cache, metrics=MetricsRegistry())
        assert [r.label for r in forward] == [u.label for u in units]
        assert [r.label for r in backward] == [u.label for u in reversed_units]
        for a, b in zip(forward, reversed(backward)):
            assert _identical(a, b)
