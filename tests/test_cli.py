"""CLI smoke tests: ``--jobs``, ``--metrics-out``, and subcommand exit
codes / output shape (the per-command behaviours are covered in
``tests/eval/test_cli.py``; this file exercises the runner flags)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.runner import SCHEMES


class TestRunnerFlags:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.jobs == 1
        assert args.metrics_out is None

    def test_figure_accepts_runner_flags(self):
        args = build_parser().parse_args(
            ["figure", "5", "--jobs", "3", "--metrics-out", "m.json"]
        )
        assert args.jobs == 3
        assert args.metrics_out == "m.json"

    def test_jobs_requires_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--jobs", "many"])


class TestSimulateSmoke:
    def test_simulate_exit_code_and_table_shape(self, capsys):
        assert main(["simulate", "--model", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "MLP @ ratio 50% on GTX480" in out
        for scheme in SCHEMES:
            assert scheme in out
        for header in ("IPC", "norm IPC", "norm latency", "latency (ms)"):
            assert header in out

    def test_simulate_with_jobs_pool(self, capsys):
        assert main(["simulate", "--model", "mlp", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        for scheme in SCHEMES:
            assert scheme in out

    def test_simulate_unknown_scheme_exits_2(self, capsys):
        code = main(["simulate", "--model", "mlp", "--schemes", "Baseline,XTS"])
        assert code == 2
        assert "XTS" in capsys.readouterr().err

    def test_metrics_out_writes_schema_v1(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(
            [
                "simulate",
                "--model",
                "mlp",
                "--schemes",
                "Baseline,SEAL-D",
                "--jobs",
                "2",
                "--metrics-out",
                str(path),
            ]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.metrics/v1"
        assert document["counters"]["sim.kernel_runs"] > 0
        assert document["counters"]["parallel.units"] > 0
        assert "sim.cache.hits" in document["counters"]
        assert "sim.cache.misses" in document["counters"]
        assert 0.0 <= document["derived"]["cache_hit_rate"] <= 1.0
        assert document["timers"]["parallel.compute"]["count"] >= 1


def _sweep_args(*extra):
    """Tiny-MLP security-sweep invocation (~seconds, every adversary)."""
    return [
        "security-sweep",
        "--models", "mlp",
        "--ratios", "0.5",
        "--width-scale", "0.25",
        "--train-size", "160",
        "--test-size", "64",
        "--victim-epochs", "2",
        "--substitute-epochs", "1",
        "--augmentation-rounds", "1",
        "--max-samples", "128",
        "--transfer-examples", "16",
        *extra,
    ]


class TestSecuritySweep:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["security-sweep"])
        assert args.models == "vgg16"
        assert args.ratios == "0.8,0.5,0.2"
        assert args.variants == "init-only"
        assert args.jobs == 1
        assert args.checkpoint_dir is None
        assert not args.resume

    def test_unknown_model_exits_2(self, capsys):
        assert main(["security-sweep", "--models", "alexnet"]) == 2
        assert "alexnet" in capsys.readouterr().err

    def test_bad_ratios_exit_2(self, capsys):
        assert main(["security-sweep", "--ratios", "half"]) == 2
        assert "comma-separated floats" in capsys.readouterr().err

    def test_unknown_variant_exits_2(self, capsys):
        assert main(["security-sweep", "--variants", "thawed"]) == 2
        assert "thawed" in capsys.readouterr().err

    def test_sweep_smoke_tables(self, capsys):
        assert main(_sweep_args()) == 0
        out = capsys.readouterr().out
        assert "Fig 3: substitute accuracy" in out
        assert "Fig 4: transferability" in out
        for label in ("white-box", "black-box", "seal@0.50"):
            assert label in out

    def test_sweep_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoints = tmp_path / "ckpt"
        code = main(
            _sweep_args(
                "--jobs", "2",
                "--checkpoint-dir", str(checkpoints),
                "--metrics-out", str(tmp_path / "metrics.json"),
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 total, 0 resumed, 3 computed" in out
        assert len(list(checkpoints.glob("*.json"))) == 3
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert document["schema"] == "repro.metrics/v1"
        assert document["counters"]["sweep.checkpoints.written"] == 3
        assert document["counters"]["attack.queries"] > 0
        assert document["timers"]["sweep.cell"]["count"] == 3
        assert document["derived"]["mean_cell_seconds"] > 0

        code = main(
            _sweep_args("--checkpoint-dir", str(checkpoints), "--resume")
        )
        assert code == 0
        assert "3 total, 3 resumed, 0 computed" in capsys.readouterr().out

    def test_no_transfer_skips_fig4(self, capsys):
        assert main(_sweep_args("--no-transfer")) == 0
        out = capsys.readouterr().out
        assert "Fig 3: substitute accuracy" in out
        assert "Fig 4" not in out


class TestTraceFlags:
    @pytest.fixture(autouse=True)
    def _fresh_run_state(self):
        """Traces only cover *computed* work and reports cross-check the
        process-global metrics registry, so clear both the shared unit
        cache and the registry that earlier CLI tests populated."""
        from repro.obs.metrics import reset_metrics
        from repro.sim.parallel import clear_default_cache

        clear_default_cache()
        reset_metrics()
        yield
        clear_default_cache()
        reset_metrics()

    def test_trace_out_writes_schema_v1(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            ["simulate", "--model", "mlp", "--schemes", "Baseline",
             "--trace-out", str(path)]
        )
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.trace/v1"
        names = {span["name"] for span in document["spans"]}
        assert {"runner.compare_schemes", "sim.unit", "sim.kernel"} <= names

    def test_run_alias_chrome_format_with_pool(self, tmp_path, capsys):
        """``repro run --jobs 2 --format chrome`` yields a Perfetto-loadable
        file with one process row per worker, re-rooted under dispatch."""
        trace_path = tmp_path / "trace.json"
        code = main(
            ["run", "--model", "mlp", "--schemes", "Baseline,SEAL-C",
             "--jobs", "2", "--trace-out", str(trace_path),
             "--format", "chrome"]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        process_names = {
            event["args"]["name"]
            for event in events
            if event.get("name") == "process_name"
        }
        assert "main" in process_names
        assert any(name.startswith("worker-") for name in process_names)
        complete = [event for event in events if event["ph"] == "X"]
        assert {"sim.unit", "parallel.run_units"} <= {
            event["name"] for event in complete
        }

    def test_trace_wrapper_subcommand(self, tmp_path, capsys):
        path = tmp_path / "wrapped.json"
        code = main(
            ["trace", "--out", str(path), "simulate", "--model", "mlp",
             "--schemes", "Baseline"]
        )
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.trace/v1"
        assert any(s["name"] == "sim.kernel" for s in document["spans"])

    def test_trace_wrapper_requires_a_command(self, capsys):
        assert main(["trace", "--out", "t.json"]) == 2
        assert "command" in capsys.readouterr().err

    def test_report_from_paired_run(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        assert main(
            ["simulate", "--model", "mlp", "--schemes", "Baseline,SEAL-C",
             "--metrics-out", str(metrics_path),
             "--trace-out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["report", "--metrics", str(metrics_path),
             "--trace", str(trace_path), "--top", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "top 5 spans by self-time" in out
        assert "sim.kernel" in out
        metrics = json.loads(metrics_path.read_text())
        runs = metrics["counters"]["sim.kernel_runs"]
        assert f"sim.kernel spans {runs} vs sim.kernel_runs {runs}: ok" in out

    def test_report_rejects_wrong_schema_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "other/v1"}))
        assert main(["report", "--trace", str(bogus)]) == 2
        assert "repro.trace/v1" in capsys.readouterr().err


class TestOtherSubcommandsSmoke:
    def test_plan_exit_code(self, capsys):
        assert main(["plan", "--model", "mlp"]) == 0
        assert "SEAL plan" in capsys.readouterr().out

    def test_table1_exit_code(self, capsys):
        assert main(["table1"]) == 0
        assert "Throughput" in capsys.readouterr().out

    def test_snoop_exit_code(self, capsys):
        assert main(["snoop", "--model", "mlp"]) == 0
        assert "plaintext" in capsys.readouterr().out

    def test_figure_unsupported_number_rejected(self, capsys):
        # Figure 3 runs via benchmarks/bench_fig3_ip_stealing.py; argparse
        # rejects it at the choices gate.
        with pytest.raises(SystemExit):
            main(["figure", "3"])
        assert "invalid choice" in capsys.readouterr().err
