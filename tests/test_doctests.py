"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro
import repro.attacks
import repro.attacks.security
import repro.attacks.sweep
import repro.core.keys
import repro.core.seal
import repro.crypto.aes
import repro.crypto.fastpath
import repro.faults.campaign
import repro.obs.trace
import repro.serve.protocol
import repro.serve.quota


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.attacks,
        repro.attacks.security,
        repro.attacks.sweep,
        repro.core.keys,
        repro.core.seal,
        repro.crypto.aes,
        repro.crypto.fastpath,
        repro.faults.campaign,
        repro.obs.trace,
        repro.serve.protocol,
        repro.serve.quota,
    ],
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
