"""The repo's markdown cross-references must resolve (tools/check_links.py).

Runs the checker exactly as the CI docs job does over the real tree, plus
unit coverage of its failure modes against synthetic documents.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_links.py"

sys.path.insert(0, str(REPO / "tools"))
import check_links  # noqa: E402


class TestRepoDocs:
    def test_repo_markdown_has_no_broken_links(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(CHECKER),
                "README.md",
                "EXPERIMENTS.md",
                "DESIGN.md",
                "docs/",
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "0 broken links" in proc.stdout

    def test_docs_pages_exist(self):
        for page in (
            "index.md",
            "architecture.md",
            "serving.md",
            "metrics.md",
            "tracing.md",
            "threat-model.md",
            "fault-model.md",
        ):
            assert (REPO / "docs" / page).exists()

    def test_index_links_every_docs_page(self):
        index = (REPO / "docs" / "index.md").read_text()
        for page in sorted(p.name for p in (REPO / "docs").glob("*.md")):
            if page != "index.md":
                assert f"({page})" in index, f"docs/index.md misses {page}"


class TestChecker:
    def test_broken_target_fails(self, tmp_path):
        (tmp_path / "a.md").write_text("see [gone](missing.md)\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "broken link -> missing.md" in problems[0]

    def test_valid_relative_link_passes(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.md").write_text("up: [root](../b.md)\n")
        (tmp_path / "b.md").write_text("# B\n")
        assert check_links.check_file(tmp_path / "sub" / "a.md") == []

    def test_anchor_checked_in_target(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[ok](b.md#the-heading) [bad](b.md#nope)\n"
        )
        (tmp_path / "b.md").write_text("## The heading\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "missing anchor -> b.md#nope" in problems[0]

    def test_self_fragment_link(self, tmp_path):
        (tmp_path / "a.md").write_text("# Top\n\n[up](#top) [bad](#below)\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "#below" in problems[0]

    def test_code_fences_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```\n[not a link](nowhere.md)\n```\nreal text\n"
        )
        assert check_links.check_file(tmp_path / "a.md") == []

    def test_external_links_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[x](https://example.com/y) [m](mailto:a@b.c)\n"
        )
        assert check_links.check_file(tmp_path / "a.md") == []

    def test_duplicate_headings_get_github_suffixes(self, tmp_path):
        (tmp_path / "b.md").write_text(
            "## Setup\ntext\n## Setup\ntext\n## Setup\n"
        )
        (tmp_path / "a.md").write_text(
            "[first](b.md#setup) [second](b.md#setup-1) "
            "[third](b.md#setup-2) [bad](b.md#setup-3)\n"
        )
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "missing anchor -> b.md#setup-3" in problems[0]

    def test_html_id_and_name_anchors_match_verbatim(self, tmp_path):
        (tmp_path / "b.md").write_text(
            "# Doc\n\n<a id=\"Wire-Format\"></a>\nsection\n"
            "<a name='quotas'></a>\nmore\n"
        )
        (tmp_path / "a.md").write_text(
            "[id](b.md#Wire-Format) [name](b.md#quotas) [bad](b.md#nope)\n"
        )
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "b.md#nope" in problems[0]

    def test_html_anchor_inside_fence_is_not_an_anchor(self, tmp_path):
        (tmp_path / "b.md").write_text(
            "# Doc\n```html\n<a id=\"fenced\"></a>\n```\n"
        )
        (tmp_path / "a.md").write_text("[bad](b.md#fenced)\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1

    def test_anchor_slug_strips_backticks_and_punctuation(self):
        slug = check_links.github_anchor("`repro.metrics/v1` — the schema")
        assert slug == "reprometricsv1--the-schema"

    def test_missing_input_file_exits_1(self, capsys):
        assert check_links.main(["definitely-not-here.md"]) == 1
        assert "no such file" in capsys.readouterr().err
