"""The repo's markdown cross-references must resolve (tools/check_links.py).

Runs the checker exactly as the CI docs job does over the real tree, plus
unit coverage of its failure modes against synthetic documents.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_links.py"

sys.path.insert(0, str(REPO / "tools"))
import check_links  # noqa: E402


class TestRepoDocs:
    def test_repo_markdown_has_no_broken_links(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(CHECKER),
                "README.md",
                "EXPERIMENTS.md",
                "DESIGN.md",
                "docs/",
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "0 broken links" in proc.stdout

    def test_docs_pages_exist(self):
        for page in ("architecture.md", "metrics.md", "threat-model.md"):
            assert (REPO / "docs" / page).exists()


class TestChecker:
    def test_broken_target_fails(self, tmp_path):
        (tmp_path / "a.md").write_text("see [gone](missing.md)\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "broken link -> missing.md" in problems[0]

    def test_valid_relative_link_passes(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.md").write_text("up: [root](../b.md)\n")
        (tmp_path / "b.md").write_text("# B\n")
        assert check_links.check_file(tmp_path / "sub" / "a.md") == []

    def test_anchor_checked_in_target(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[ok](b.md#the-heading) [bad](b.md#nope)\n"
        )
        (tmp_path / "b.md").write_text("## The heading\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "missing anchor -> b.md#nope" in problems[0]

    def test_self_fragment_link(self, tmp_path):
        (tmp_path / "a.md").write_text("# Top\n\n[up](#top) [bad](#below)\n")
        problems = check_links.check_file(tmp_path / "a.md")
        assert len(problems) == 1
        assert "#below" in problems[0]

    def test_code_fences_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```\n[not a link](nowhere.md)\n```\nreal text\n"
        )
        assert check_links.check_file(tmp_path / "a.md") == []

    def test_external_links_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[x](https://example.com/y) [m](mailto:a@b.c)\n"
        )
        assert check_links.check_file(tmp_path / "a.md") == []

    def test_anchor_slug_strips_backticks_and_punctuation(self):
        slug = check_links.github_anchor("`repro.metrics/v1` — the schema")
        assert slug == "reprometricsv1--the-schema"

    def test_missing_input_file_exits_1(self, capsys):
        assert check_links.main(["definitely-not-here.md"]) == 1
        assert "no such file" in capsys.readouterr().err
