"""Counter-mode consistency across the functional and performance models.

The counter cache inside the simulated memory controller tracks the same
architectural counters that the functional :class:`CounterModeEncryptor`
consumes.  These tests drive both against the same access sequence and
check they agree — the property a real SEAL implementation needs for
decryption to ever succeed.
"""

import numpy as np
import pytest

from repro.crypto.counter_cache import CounterCache, CounterCacheConfig
from repro.crypto.modes import CounterModeEncryptor
from repro.sim.config import gtx480_config
from repro.sim.memctrl import MemoryController
from repro.sim.request import Access, MemRequest


class TestFunctionalPerformanceAgreement:
    def test_write_read_roundtrip_with_cache_counters(self):
        """Encrypt lines with counters taken from the cache model, evict
        them, and verify decryption with the post-eviction counters."""
        cache = CounterCache(
            CounterCacheConfig(size_bytes=4 * 64, block_bytes=64, associativity=2)
        )
        encryptor = CounterModeEncryptor(bytes(range(16)))
        stored: dict[int, bytes] = {}
        rng = np.random.default_rng(0)
        addresses = [int(a) * 128 for a in rng.integers(0, 64, size=40)]
        for address in addresses:
            cache.access(address, write=True)
            counter = cache.counter_of(address)
            line = rng.bytes(128)
            stored[address] = (line, encryptor.encrypt_line(address, counter, line))
        # Thrash the cache so every line's counter block is evicted.
        for page in range(100):
            cache.access(page * 4096 + (1 << 22))
        for address, (line, ciphertext) in stored.items():
            counter = cache.counter_of(address)
            assert encryptor.decrypt_line(address, counter, ciphertext) == line

    def test_memctrl_counter_matches_write_count(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        address = 0x4000
        for _ in range(5):
            mc.submit(MemRequest(address, 128, Access.WRITE, True), 0)
        assert mc.counter_cache.counter_of(address) == 5

    def test_distinct_counters_give_distinct_pads(self):
        """Counter-mode security rests on never reusing (address, counter);
        the write path bumps the counter, so successive ciphertexts of the
        same plaintext must differ."""
        cache = CounterCache()
        encryptor = CounterModeEncryptor(bytes(16))
        address = 0x100
        line = bytes(64)
        ciphertexts = []
        for _ in range(4):
            cache.access(address, write=True)
            ciphertexts.append(
                encryptor.encrypt_line(address, cache.counter_of(address), line)
            )
        assert len(set(ciphertexts)) == 4


class TestSimulatorCounterTraffic:
    def test_counter_fetch_traffic_matches_misses(self):
        config = gtx480_config("counter")
        mc = MemoryController(0, config)
        rng = np.random.default_rng(1)
        for address in rng.integers(0, 1 << 22, size=200):
            mc.submit(MemRequest(int(address) // 128 * 128, 128, Access.READ, True), 0)
        misses = mc.counter_cache.stats.misses
        assert mc.stats.counter_fetch_bytes == misses * 64

    def test_bypass_lines_never_touch_counters(self):
        config = gtx480_config("counter", selective=True)
        mc = MemoryController(0, config)
        for index in range(20):
            mc.submit(MemRequest(index * 128, 128, Access.READ, False), 0)
        assert mc.counter_cache.stats.accesses == 0
        assert mc.stats.counter_fetch_bytes == 0
