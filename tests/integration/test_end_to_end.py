"""Cross-module integration tests: the full SEAL pipeline end to end."""

import numpy as np
import pytest

from repro.attacks import (
    IfgsmConfig,
    SubstituteConfig,
    make_query_fn,
    seal_substitute,
    measure_transferability,
)
from repro.core import ModelEncryptionPlan, SealScheme, SecureHeap, summarize_traffic
from repro.nn import Adam, SyntheticCIFAR10, fit, resnet18, set_init_rng, vgg16
from repro.sim import SCHEMES, GpuSimulator, layer_streams, run_model, scheme_config


class TestPlanToSimulatorPipeline:
    """Model → plan → heap layout → traces → simulation, consistently."""

    @pytest.fixture(scope="class")
    def plan(self):
        set_init_rng(0)
        return ModelEncryptionPlan.build(vgg16(width_scale=0.25), 0.5)

    def test_traffic_reaches_simulator_with_exact_criticality(self, plan):
        config = scheme_config("SEAL-D")
        simulator = GpuSimulator(config)
        traffic = plan.layer_traffic()[4]
        streams = layer_streams(config, traffic, heap=SecureHeap())
        result = simulator.run(streams)
        total = result.encrypted_bytes + result.bypass_bytes
        assert total == result.data_bytes
        assert result.encrypted_bytes / total == pytest.approx(
            traffic.encrypted_fraction, abs=0.05
        )

    def test_summary_fraction_predicts_simulated_fraction(self, plan):
        summary = summarize_traffic(plan)
        result = run_model(plan, "SEAL-D")
        simulated_fraction = result.encrypted_bytes / result.data_bytes
        # The simulator amplifies operand reuse, but uniformly across
        # criticalities, so the fractions must agree approximately.
        assert simulated_fraction == pytest.approx(
            summary.encrypted_fraction, abs=0.15
        )

    def test_all_schemes_run_the_same_work(self, plan):
        instructions = {
            scheme: run_model(plan, scheme).instructions for scheme in SCHEMES
        }
        reference = instructions["Baseline"]
        for scheme, count in instructions.items():
            assert count == reference, scheme


class TestEncryptionRatioPerformanceTradeoff:
    def test_lower_ratio_means_higher_seal_ipc(self):
        set_init_rng(0)
        model = vgg16()
        results = {}
        for ratio in (0.2, 0.8):
            plan = ModelEncryptionPlan.build(model, ratio)
            results[ratio] = run_model(plan, "SEAL-D").ipc
        assert results[0.2] > results[0.8]


class TestSecurityPipeline:
    """Victim → SEAL snooping → substitute → transfer, at toy scale."""

    def test_full_attack_chain_executes(self):
        set_init_rng(0)
        gen = SyntheticCIFAR10(noise=0.2)
        train = gen.sample(160, seed=1)
        test = gen.sample(48, seed=2)

        victim = vgg16(width_scale=0.125)
        fit(victim, train, Adam(list(victim.parameters()), lr=2e-3),
            epochs=3, batch_size=32)

        scheme = SealScheme(victim, ratio=0.5)
        snooped = scheme.snooped_view()
        assert 0.0 < snooped.known_fraction() < 1.0

        def builder():
            set_init_rng(3)
            return vgg16(width_scale=0.125)

        config = SubstituteConfig(
            augmentation_rounds=1, epochs=1, max_samples=96, batch_size=16
        )
        substitute = seal_substitute(builder, victim, snooped, train.subset(
            np.arange(16)
        ), config)
        result = measure_transferability(
            substitute.model,
            victim,
            test,
            num_examples=16,
            config=IfgsmConfig(epsilon=0.1, alpha=0.02, iterations=5),
            substitute_kind="seal",
            ratio=0.5,
        )
        assert 0.0 <= result.transferability <= 1.0

    def test_query_oracle_matches_direct_prediction(self):
        set_init_rng(0)
        victim = resnet18(width_scale=0.125)
        data = SyntheticCIFAR10().sample(16, seed=0)
        query = make_query_fn(victim)
        from repro.nn.training import predict_labels

        np.testing.assert_array_equal(
            query(data.images), predict_labels(victim, data.images)
        )


class TestFunctionalEncryptionOfRealWeights:
    def test_snooped_plus_decryption_recovers_model(self):
        """Encrypt the critical weight bytes with the real AES datapath and
        verify the legitimate accelerator (with the key) recovers them."""
        set_init_rng(0)
        model = vgg16(width_scale=0.125)
        scheme = SealScheme(model, 0.5, mode="direct")
        layer = scheme.plan.layers[2]
        weights = dict(model.named_parameters())[f"{layer.name}.weight"].data
        mask = scheme.plan.weight_masks()[layer.name]
        critical = np.ascontiguousarray(weights[mask], dtype=np.float32)
        raw = critical.tobytes()
        padded = raw + bytes(-len(raw) % 16)
        ciphertext = scheme.encrypt_line(0x1000, padded)
        assert ciphertext != padded
        recovered = scheme.decrypt_line(0x1000, ciphertext)[: len(raw)]
        np.testing.assert_array_equal(
            np.frombuffer(recovered, dtype=np.float32), critical
        )


class TestResNetPipeline:
    def test_resnet_plan_simulates_under_all_schemes(self):
        set_init_rng(0)
        plan = ModelEncryptionPlan.build(resnet18(width_scale=0.25), 0.5)
        ipcs = {scheme: run_model(plan, scheme).ipc for scheme in SCHEMES}
        assert ipcs["Direct"] < ipcs["Baseline"]
        assert ipcs["SEAL-D"] >= ipcs["Direct"]
