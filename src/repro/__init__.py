"""SEAL: criticality-aware selective memory encryption for DL accelerators.

Reproduction of Zuo et al., "SEALing Neural Network Models in Encrypted
Deep Learning Accelerators", DAC 2021.

Subpackages
-----------
``repro.core``
    The paper's contribution: l1-norm kernel-row criticality analysis,
    smart-encryption planning, the ``emalloc`` secure heap.
``repro.nn``
    Numpy deep-learning substrate (autograd, VGG/ResNet models, training,
    synthetic CIFAR-10).
``repro.crypto``
    FIPS-197 AES, direct/counter memory-encryption modes, counter cache,
    hardware-engine performance models (Table I).
``repro.sim``
    GPGPU-Sim-style cycle-level GPU + encrypted-memory-system simulator
    (GTX480 configuration of the paper).
``repro.attacks``
    Bus-snooping adversary: substitute models, Jacobian augmentation,
    I-FGSM, transferability.
``repro.eval``
    One entry point per paper table/figure.

Quick start
-----------
>>> from repro.nn import vgg16
>>> from repro.core import SealScheme
>>> scheme = SealScheme(vgg16(width_scale=0.25), ratio=0.5)
>>> 0.5 <= scheme.plan.realized_ratio <= 1.0
True
"""

from . import attacks, core, crypto, eval, nn, sim
from .core import DEFAULT_ENCRYPTION_RATIO, ModelEncryptionPlan, SealScheme
from .sim import SCHEMES, compare_schemes, run_model

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "core",
    "crypto",
    "eval",
    "nn",
    "sim",
    "DEFAULT_ENCRYPTION_RATIO",
    "ModelEncryptionPlan",
    "SealScheme",
    "SCHEMES",
    "compare_schemes",
    "run_model",
    "__version__",
]
