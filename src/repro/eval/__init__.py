"""Experiment harness: one entry point per paper table/figure."""

from .experiments import (
    MODEL_NAMES,
    fig1_straightforward,
    fig3_fig4_security,
    fig5_conv_layers,
    fig6_pool_layers,
    fig7_overall_ipc,
    fig8_latency,
    table1_engines,
)
from .reporting import ascii_table, bar, format_series, normalize_to_first

__all__ = [
    "MODEL_NAMES",
    "fig1_straightforward",
    "fig3_fig4_security",
    "fig5_conv_layers",
    "fig6_pool_layers",
    "fig7_overall_ipc",
    "fig8_latency",
    "table1_engines",
    "ascii_table",
    "bar",
    "format_series",
    "normalize_to_first",
]
