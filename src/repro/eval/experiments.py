"""One entry point per table/figure of the paper's evaluation.

Every function returns a structured result object whose ``report()``
renders the same rows/series the paper presents.  The benchmark scripts in
``benchmarks/`` are thin wrappers over these functions, so results can also
be produced interactively:

>>> from repro.eval.experiments import fig7_overall_ipc
>>> print(fig7_overall_ipc(models=("vgg16",)).report())  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..attacks.security import (
    PAPER_RATIOS,
    SecurityExperimentConfig,
    SecurityOutcome,
    run_security_experiment,
)
from ..attacks.substitute import SubstituteConfig
from ..core.plan import ModelEncryptionPlan
from ..crypto.engine import ENGINE_SURVEY
from ..nn.models import build_model
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..sim.parallel import SimUnit, SimulationCache, run_units
from ..sim.runner import (
    SCHEMES,
    ModelRunResult,
    compare_schemes,
    layer_unit,
    scheme_config,
)
from ..sim.workloads import matmul_traffic
from .reporting import ascii_table, format_series

__all__ = [
    "table1_engines",
    "fig1_straightforward",
    "fig3_fig4_security",
    "fig5_conv_layers",
    "fig6_pool_layers",
    "fig7_overall_ipc",
    "fig8_latency",
    "fault_injection",
    "MODEL_NAMES",
]

MODEL_NAMES = ("vgg16", "resnet18", "resnet34")
_PRETTY = {"vgg16": "VGG-16", "resnet18": "ResNet-18", "resnet34": "ResNet-34"}


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
@dataclass
class Table1Result:
    rows: list[tuple[str, str, str, int, float]]

    def report(self) -> str:
        return ascii_table(
            ("Implementation", "Area (mm2)", "Power (mW)", "Latency (cyc)", "Throughput (GB/s)"),
            self.rows,
        )


def table1_engines() -> Table1Result:
    """Table I: the hardware AES engine survey, plus derived rates."""
    rows = []
    for spec in ENGINE_SURVEY:
        rows.append(
            (
                spec.name,
                "N/A" if spec.area_mm2 is None else f"{spec.area_mm2:.1f}",
                "N/A" if spec.power_mw is None else f"{spec.power_mw:.0f}",
                spec.latency_cycles,
                spec.throughput_gbps,
            )
        )
    return Table1Result(rows)


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """IPC of encrypted GPUs on matmul + counter-cache hit-rate sweep."""

    matmul_shape: tuple[int, int, int]
    ipc: dict[str, float]  # Baseline / Direct / Ctr-<kb> labels
    hit_rates: dict[int, float]  # cache KB -> hit rate

    def report(self) -> str:
        labels = list(self.ipc)
        values = [self.ipc[l] for l in labels]
        part_a = format_series(
            f"Fig 1a: IPC, matmul {self.matmul_shape} (normalized to Baseline)",
            labels,
            values,
            normalized=True,
        )
        part_b = ascii_table(
            ("Counter cache (KB)", "Hit rate"),
            [(kb, rate) for kb, rate in sorted(self.hit_rates.items())],
        )
        return part_a + "\n\nFig 1b: counter cache hit rate\n" + part_b


def fig1_straightforward(
    *,
    matmul_shape: tuple[int, int, int] = (1024, 1024, 1024),
    cache_sizes_kb: tuple[int, ...] = (24, 96, 384, 1536),
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> Fig1Result:
    """Figure 1: straightforward Direct/Counter encryption on matmul.

    Runs Baseline, Direct, and Counter with each counter-cache size; the
    counter runs also produce the Figure 1b hit-rate curve.  All runs are
    independent simulation units, fanned out over ``jobs`` workers.
    """
    m, n, k = matmul_shape
    traffic = matmul_traffic(m, n, k, encrypted=True)
    labels = ["Baseline", "Direct"] + [f"Ctr-{kb}" for kb in cache_sizes_kb]
    units = [
        SimUnit(traffic=traffic, config=scheme_config("Baseline"), label="Baseline"),
        SimUnit(traffic=traffic, config=scheme_config("Direct"), label="Direct"),
    ] + [
        SimUnit(
            traffic=traffic,
            config=scheme_config("Counter", counter_cache_kb=kb),
            label=f"Ctr-{kb}",
        )
        for kb in cache_sizes_kb
    ]
    with get_metrics().timer("eval.fig1"), get_tracer().span(
        "eval.fig1", {"matmul": list(matmul_shape)}
    ):
        results = run_units(units, jobs=jobs, cache=cache)
    ipc = {label: result.ipc for label, result in zip(labels, results)}
    hit_rates = {
        kb: result.counter_hit_rate
        for kb, result in zip(cache_sizes_kb, results[2:])
    }
    return Fig1Result(matmul_shape, ipc, hit_rates)


# ----------------------------------------------------------------------
# Figures 3 and 4
# ----------------------------------------------------------------------
@dataclass
class SecuritySweepResult:
    """Fig 3 (substitute accuracy) + Fig 4 (transferability), all models."""

    outcomes: dict[str, SecurityOutcome]

    def accuracy_rows(self) -> list[list[object]]:
        labels = ["white-box"] + [
            SecurityOutcome.seal_key(r) for r in PAPER_RATIOS
        ] + ["black-box"]
        rows: list[list[object]] = []
        for label in labels:
            row: list[object] = [label]
            for outcome in self.outcomes.values():
                row.append(outcome.accuracy.get(label, float("nan")))
            rows.append(row)
        return rows

    def transfer_rows(self) -> list[list[object]]:
        labels = ["white-box"] + [
            SecurityOutcome.seal_key(r) for r in PAPER_RATIOS
        ] + ["black-box"]
        rows: list[list[object]] = []
        for label in labels:
            row: list[object] = [label]
            for outcome in self.outcomes.values():
                result = outcome.transferability.get(label)
                row.append(result.transferability if result else float("nan"))
            rows.append(row)
        return rows

    def report(self) -> str:
        headers = ["substitute"] + [
            _PRETTY.get(name, name) for name in self.outcomes
        ]
        victim = ", ".join(
            f"{_PRETTY.get(name, name)}={o.victim_accuracy:.3f}"
            for name, o in self.outcomes.items()
        )
        parts = [
            f"victim accuracy: {victim}",
            "Fig 3: inference accuracy of substitute models",
            ascii_table(headers, self.accuracy_rows()),
        ]
        if any(o.transferability for o in self.outcomes.values()):
            parts += [
                "Fig 4: transferability of adversarial examples",
                ascii_table(headers, self.transfer_rows()),
            ]
        return "\n\n".join(parts)


def fig3_fig4_security(
    models: tuple[str, ...] = MODEL_NAMES,
    *,
    ratios: tuple[float, ...] = PAPER_RATIOS,
    width_scale: float = 0.125,
    train_size: int = 1500,
    test_size: int = 400,
    victim_epochs: int = 12,
    substitute: SubstituteConfig | None = None,
    transfer_examples: int = 150,
    measure_transfer: bool = True,
    verbose: bool = False,
) -> SecuritySweepResult:
    """Figures 3 and 4: the full security sweep over all three models.

    Scaled-down defaults run in minutes; raise the budgets for sharper
    curves (see EXPERIMENTS.md for the settings used in the recorded run).
    """
    outcomes: dict[str, SecurityOutcome] = {}
    for model in models:
        config = SecurityExperimentConfig(
            model=model,
            width_scale=width_scale,
            ratios=ratios,
            train_size=train_size,
            test_size=test_size,
            victim_epochs=victim_epochs,
            # Default to the strongest (init-only) adversary; see
            # repro.attacks.security for the rationale.
            substitute=substitute or SubstituteConfig(freeze_known=False),
            transfer_examples=transfer_examples,
        )
        outcomes[model] = run_security_experiment(
            config, measure_transfer=measure_transfer, verbose=verbose
        )
    return SecuritySweepResult(outcomes)


# ----------------------------------------------------------------------
# Figures 5 and 6 (per-layer IPC)
# ----------------------------------------------------------------------
@dataclass
class LayerSweepResult:
    """Normalized IPC for a set of layers under all five schemes."""

    title: str
    layer_labels: list[str]
    normalized_ipc: dict[str, list[float]]  # scheme -> per-layer values

    def report(self) -> str:
        headers = ["scheme"] + self.layer_labels
        rows = [
            [scheme] + values for scheme, values in self.normalized_ipc.items()
        ]
        return f"{self.title}\n" + ascii_table(headers, rows)

    def improvement_over(self, scheme: str, baseline_scheme: str) -> float:
        """Mean ratio of one scheme's normalized IPC over another's."""
        a = self.normalized_ipc[scheme]
        b = self.normalized_ipc[baseline_scheme]
        ratios = [x / y for x, y in zip(a, b) if y]
        return sum(ratios) / len(ratios) if ratios else 0.0


def _layer_sweep(
    title: str,
    plan: ModelEncryptionPlan,
    layer_names: list[str],
    labels: list[str],
    schemes: tuple[str, ...] = SCHEMES,
    *,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> LayerSweepResult:
    traffic_by_name = {t.name: t for t in plan.layer_traffic()}
    units = [
        layer_unit(traffic_by_name[name], scheme)
        for name in layer_names
        for scheme in schemes
    ]
    with get_metrics().timer("eval.layer_sweep"), get_tracer().span(
        "eval.layer_sweep", {"title": title, "layers": len(layer_names)}
    ):
        results = run_units(units, jobs=jobs, cache=cache)
    normalized: dict[str, list[float]] = {scheme: [] for scheme in schemes}
    for index in range(len(layer_names)):
        per_layer = results[index * len(schemes) : (index + 1) * len(schemes)]
        baseline_ipc = per_layer[0].ipc or 1.0
        for scheme, result in zip(schemes, per_layer):
            normalized[scheme].append(result.ipc / baseline_ipc)
    return LayerSweepResult(title, labels, normalized)


def _vgg_plan(
    ratio: float, input_size: int, *, boundary: bool = True
) -> ModelEncryptionPlan:
    model = build_model("vgg16", input_size=input_size)
    if boundary:
        return ModelEncryptionPlan.build(
            model, ratio, input_shape=(3, input_size, input_size)
        )
    # The paper's per-layer performance experiments (Figures 5 and 6) apply
    # the SE scheme at the stated ratio to the evaluated layers themselves,
    # so the boundary-layer full encryption of the security analysis is
    # disabled here; Figures 7 and 8 keep the full deployable scheme.
    return ModelEncryptionPlan.build(
        model,
        ratio,
        input_shape=(3, input_size, input_size),
        boundary_first_convs=0,
        boundary_last_conv=False,
        boundary_last_fc=False,
    )


def fig5_conv_layers(
    *,
    ratio: float = 0.5,
    input_size: int = 32,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> LayerSweepResult:
    """Figure 5: four typical VGG CONV layers (64/128/256/512 channels)."""
    plan = _vgg_plan(ratio, input_size, boundary=False)
    wanted_channels = (64, 128, 256, 512)
    names: list[str] = []
    labels: list[str] = []
    for index, channels in enumerate(wanted_channels, start=1):
        candidates = [
            p
            for p in plan.layers
            if p.kind == "conv"
            and p.weight_shape[0] == channels
            and p.weight_shape[1] == channels
        ]
        if not candidates:
            raise ValueError(f"no {channels}->{channels} CONV layer found")
        names.append(candidates[0].name)
        labels.append(f"CONV-{index}")
    return _layer_sweep(
        f"Fig 5: normalized IPC, VGG CONV layers (ratio {ratio:.0%})",
        plan,
        names,
        labels,
        jobs=jobs,
        cache=cache,
    )


def fig6_pool_layers(
    *,
    ratio: float = 0.5,
    input_size: int = 32,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> LayerSweepResult:
    """Figure 6: the five VGG POOL layers."""
    plan = _vgg_plan(ratio, input_size, boundary=False)
    names = [p.name for p in plan.pools]
    labels = [f"POOL-{i + 1}" for i in range(len(names))]
    return _layer_sweep(
        f"Fig 6: normalized IPC, VGG POOL layers (ratio {ratio:.0%})",
        plan,
        names,
        labels,
        jobs=jobs,
        cache=cache,
    )


# ----------------------------------------------------------------------
# Figures 7 and 8 (whole-model IPC and latency)
# ----------------------------------------------------------------------
@dataclass
class ModelSweepResult:
    """Whole-model results for all schemes × models."""

    title: str
    models: list[str]
    results: dict[str, dict[str, ModelRunResult]] = field(repr=False, default_factory=dict)
    normalized_ipc: dict[str, list[float]] = field(default_factory=dict)
    normalized_latency: dict[str, list[float]] = field(default_factory=dict)

    def report(self, *, metric: str = "ipc") -> str:
        table = self.normalized_ipc if metric == "ipc" else self.normalized_latency
        headers = ["scheme"] + [_PRETTY.get(m, m) for m in self.models]
        rows = [[scheme] + values for scheme, values in table.items()]
        return f"{self.title}\n" + ascii_table(headers, rows)

    def seal_speedup(self, mode: str = "D") -> float:
        """Mean SEAL-x IPC gain over its full-encryption counterpart."""
        full = "Direct" if mode == "D" else "Counter"
        seal = f"SEAL-{mode}"
        ratios = [
            s / f
            for s, f in zip(self.normalized_ipc[seal], self.normalized_ipc[full])
            if f
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def latency_reduction(self, mode: str = "D") -> float:
        """Mean latency reduction of SEAL-x versus Direct/Counter."""
        full = "Direct" if mode == "D" else "Counter"
        seal = f"SEAL-{mode}"
        reductions = [
            1.0 - s / f
            for s, f in zip(
                self.normalized_latency[seal], self.normalized_latency[full]
            )
            if f
        ]
        return sum(reductions) / len(reductions) if reductions else 0.0


def _model_sweep(
    title: str,
    models: tuple[str, ...],
    *,
    ratio: float,
    input_size: int,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> ModelSweepResult:
    sweep = ModelSweepResult(title=title, models=list(models))
    for scheme in schemes:
        sweep.normalized_ipc[scheme] = []
        sweep.normalized_latency[scheme] = []
    metrics = get_metrics()
    for model_name in models:
        model = (
            build_model(model_name, input_size=input_size)
            if model_name == "vgg16"
            else build_model(model_name)
        )
        plan = ModelEncryptionPlan.build(
            model, ratio, input_shape=(3, input_size, input_size)
        )
        with metrics.timer("eval.model_sweep"), get_tracer().span(
            "eval.model_sweep", {"model": model_name}
        ):
            per_scheme = compare_schemes(plan, schemes, jobs=jobs, cache=cache)
        baseline: ModelRunResult | None = None
        for scheme in schemes:
            result = per_scheme[scheme]
            if baseline is None:
                baseline = result
            sweep.normalized_ipc[scheme].append(
                result.ipc / baseline.ipc if baseline.ipc else 0.0
            )
            sweep.normalized_latency[scheme].append(
                result.cycles / baseline.cycles if baseline.cycles else 0.0
            )
        sweep.results[model_name] = per_scheme
    return sweep


def fig7_overall_ipc(
    models: tuple[str, ...] = MODEL_NAMES,
    *,
    ratio: float = 0.5,
    input_size: int = 32,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> ModelSweepResult:
    """Figure 7: overall IPC for full-model inference, all schemes."""
    return _model_sweep(
        f"Fig 7: overall IPC normalized to Baseline (ratio {ratio:.0%})",
        models,
        ratio=ratio,
        input_size=input_size,
        jobs=jobs,
        cache=cache,
    )


def fig8_latency(
    models: tuple[str, ...] = MODEL_NAMES,
    *,
    ratio: float = 0.5,
    input_size: int = 32,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> ModelSweepResult:
    """Figure 8: inference latency normalized to Baseline, all schemes."""
    sweep = _model_sweep(
        f"Fig 8: inference latency normalized to Baseline (ratio {ratio:.0%})",
        models,
        ratio=ratio,
        input_size=input_size,
        jobs=jobs,
        cache=cache,
    )
    return sweep


# ----------------------------------------------------------------------
# Fault injection (docs/fault-model.md)
# ----------------------------------------------------------------------
def fault_injection(
    model: str = "mlp",
    *,
    ratio: float = 0.5,
    width_scale: float = 0.25,
    faults_per_class: int = 8,
    seed: int = 0,
    max_lines_per_region: int = 24,
    authenticate: bool = True,
    backend: str | None = None,
):
    """Bus-tampering campaign on one model's SEAL-protected memory image.

    Quantifies the integrity side of smart encryption: 100 % detection of
    bit flips, splices, replays, counter desyncs and MAC truncation on
    authenticated encrypted lines versus silent corruption on the
    plaintext lines the scheme leaves unprotected.  Returns a
    :class:`~repro.faults.campaign.FaultCampaignResult`; also runnable as
    ``python -m repro faults`` and benchmarked by
    ``benchmarks/bench_fault_injection.py``.
    """
    from ..faults.campaign import FaultCampaignConfig, run_fault_campaign

    return run_fault_campaign(
        FaultCampaignConfig(
            model=model,
            ratio=ratio,
            width_scale=width_scale,
            faults_per_class=faults_per_class,
            seed=seed,
            max_lines_per_region=max_lines_per_region,
            authenticate=authenticate,
            backend=backend,
        )
    )
