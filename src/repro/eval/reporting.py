"""Formatting helpers: paper-style ASCII tables and normalized series."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["ascii_table", "format_series", "normalize_to_first", "bar"]


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
    nan_text: str = "n/a",
) -> str:
    """Render rows as a fixed-width ASCII table.

    NaN floats render as ``nan_text`` — sweep tables use NaN for cells a
    run did not measure (a ratio one model skipped, a disabled Figure-4
    pass), and ``n/a`` reads better than ``nan`` in the reports.
    """
    materialized: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(nan_text if math.isnan(value) else float_format.format(value))
            else:
                cells.append(str(value))
        materialized.append(cells)
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def normalize_to_first(values: Sequence[float]) -> list[float]:
    """Divide every value by the first (the paper normalizes to Baseline)."""
    if not values:
        return []
    reference = values[0]
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def bar(fraction: float, width: int = 30) -> str:
    """Inline text bar for quick visual comparison in terminal output."""
    filled = max(0, min(width, int(round(fraction * width))))
    return "#" * filled + "." * (width - filled)


def format_series(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    normalized: bool = False,
    width: int = 30,
) -> str:
    """One figure series as labelled bars (the closest ASCII gets to the
    paper's bar charts)."""
    shown = normalize_to_first(values) if normalized else list(values)
    label_width = max((len(l) for l in labels), default=0)
    lines = [title]
    for label, value in zip(labels, shown):
        peak = max(shown) if shown else 1.0
        fraction = value / peak if peak else 0.0
        lines.append(f"  {label.ljust(label_width)}  {value:6.3f}  {bar(fraction, width)}")
    return "\n".join(lines)
