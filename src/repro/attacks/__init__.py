"""Model-extraction and adversarial-attack substrate (Sections III-B)."""

from .adversarial import AdversarialBatch, IfgsmConfig, craft_adversarial_batch, ifgsm
from .augmentation import AugmentationResult, jacobian_augment, jacobian_step
from .security import (
    PAPER_RATIOS,
    SecurityExperimentConfig,
    SecurityOutcome,
    run_security_experiment,
)
from .substitute import (
    SubstituteConfig,
    SubstituteResult,
    black_box_substitute,
    make_query_fn,
    seal_substitute,
    train_substitute,
    white_box_substitute,
)
from .transferability import TransferResult, measure_transferability

__all__ = [
    "AdversarialBatch",
    "IfgsmConfig",
    "craft_adversarial_batch",
    "ifgsm",
    "AugmentationResult",
    "jacobian_augment",
    "jacobian_step",
    "PAPER_RATIOS",
    "SecurityExperimentConfig",
    "SecurityOutcome",
    "run_security_experiment",
    "SubstituteConfig",
    "SubstituteResult",
    "black_box_substitute",
    "make_query_fn",
    "seal_substitute",
    "train_substitute",
    "white_box_substitute",
    "TransferResult",
    "measure_transferability",
]
