"""Model-extraction and adversarial-attack substrate (Sections III-B).

Three adversary strengths — white-box, black-box, and SEAL(r) — are built
by :mod:`repro.attacks.substitute`; :mod:`repro.attacks.security` runs one
serial Figure-3/4 experiment, and :mod:`repro.attacks.sweep` runs the same
cells checkpointed and in parallel (see ``docs/threat-model.md``).

>>> from repro.attacks import SecurityOutcome, SubstituteConfig
>>> SecurityOutcome.seal_key(0.5)
'seal@0.50'
>>> SubstituteConfig().freeze_known        # the paper's exact adversary
True
"""

from .adversarial import AdversarialBatch, IfgsmConfig, craft_adversarial_batch, ifgsm
from .augmentation import AugmentationResult, jacobian_augment, jacobian_step
from .security import (
    PAPER_RATIOS,
    SecurityExperimentConfig,
    SecurityOutcome,
    run_security_experiment,
)
from .substitute import (
    SubstituteConfig,
    SubstituteResult,
    black_box_substitute,
    make_query_fn,
    seal_substitute,
    train_substitute,
    white_box_substitute,
)
from .sweep import (
    CellResult,
    CheckpointStore,
    SweepResult,
    SweepUnit,
    cell_key,
    plan_units,
    run_cell,
    run_sweep,
)
from .transferability import TransferResult, measure_transferability

__all__ = [
    "AdversarialBatch",
    "IfgsmConfig",
    "craft_adversarial_batch",
    "ifgsm",
    "AugmentationResult",
    "jacobian_augment",
    "jacobian_step",
    "PAPER_RATIOS",
    "SecurityExperimentConfig",
    "SecurityOutcome",
    "run_security_experiment",
    "SubstituteConfig",
    "SubstituteResult",
    "black_box_substitute",
    "make_query_fn",
    "seal_substitute",
    "train_substitute",
    "white_box_substitute",
    "CellResult",
    "CheckpointStore",
    "SweepResult",
    "SweepUnit",
    "cell_key",
    "plan_units",
    "run_cell",
    "run_sweep",
    "TransferResult",
    "measure_transferability",
]
