"""Substitute-model generation (Section III-B.1 of the paper).

Three adversary strengths, matching the paper's threat analysis:

* **white-box** — no memory encryption: the snooper reads every weight, so
  the substitute *is* the victim.
* **black-box** — full encryption: the adversary knows only the
  architecture (via side channels) and trains a fresh model on
  query-labelled, Jacobian-augmented data.
* **SEAL(r)** — smart encryption at ratio ``r``: plaintext (non-critical)
  weights are copied into the substitute and **frozen**; encrypted weights
  are He-initialised and fine-tuned on the query data.  The paper notes the
  adversary could exploit the ordering constraint (encrypted rows have the
  larger ℓ1 sums) but found it does not help; we reproduce the plain
  fine-tuning attack and expose the constraint check for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.seal import SnoopedModel
from ..nn.data import Dataset
from ..nn.layers import Module
from ..nn.optim import Adam
from ..nn.training import evaluate, fit, predict_labels
from .augmentation import jacobian_augment

__all__ = [
    "SubstituteConfig",
    "SubstituteResult",
    "make_query_fn",
    "train_substitute",
    "black_box_substitute",
    "initialize_seal_substitute",
    "seal_substitute",
    "white_box_substitute",
]

ModelBuilder = Callable[[], Module]


@dataclass(frozen=True)
class SubstituteConfig:
    """Training budget for substitute generation (scaled-down defaults).

    ``freeze_known`` selects the SEAL fine-tuning variant — named
    ``frozen`` / ``init-only`` throughout the sweep pipeline
    (:data:`repro.attacks.sweep.VARIANTS`):

    * ``True`` (default) — the paper's exact adversary, who "keeps the
      known weight parameters unchanged and fine-tunes unknown weight
      parameters";
    * ``False`` — the strictly stronger *init-only* variant that merely
      initialises from the snooped plaintext and fine-tunes everything.

    The two cross over with query budget: once the budget is large enough
    for fine-tuning to exploit the leak (hundreds of queries against a
    meaningfully trained victim, and a fortiori the paper's 45k-query
    scale) the frozen adversary is stronger at every ratio, while at tiny
    smoke-test budgets the frozen values constrain optimisation more than
    they inform it and ``init-only`` comes out ahead.  See
    ``docs/threat-model.md`` ("Adversary variants and their crossover")
    for the measured numbers; security sweeps should evaluate both
    (``python -m repro security-sweep --variants init-only,frozen``).
    """

    augmentation_rounds: int = 2
    augmentation_lambda: float = 0.1
    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 1e-3
    max_samples: int | None = 4000
    seed: int = 0
    freeze_known: bool = True


@dataclass
class SubstituteResult:
    """A trained substitute plus its provenance."""

    kind: str  # "white-box" | "black-box" | "seal"
    model: Module
    ratio: float | None
    queries: int
    train_accuracy: float

    def accuracy_on(self, dataset: Dataset) -> float:
        return evaluate(self.model, dataset)


def make_query_fn(victim: Module) -> Callable[[np.ndarray], np.ndarray]:
    """The oracle the threat model grants: images in, hard labels out."""

    def query(images: np.ndarray) -> np.ndarray:
        return predict_labels(victim, images)

    return query


def train_substitute(
    model: Module,
    dataset: Dataset,
    config: SubstituteConfig,
    *,
    freeze_masks: dict[str, np.ndarray] | None = None,
) -> float:
    """Fine-tune ``model`` on query-labelled data; returns final train acc.

    ``freeze_masks`` maps parameter names (``<layer>.weight``) to boolean
    arrays; True entries are the adversary's *known* plaintext weights and
    stay fixed during training (the paper's SEAL-substitute procedure).
    """
    optimizer = Adam(list(model.parameters()), lr=config.learning_rate)
    if freeze_masks:
        named = dict(model.named_parameters())
        for name, mask in freeze_masks.items():
            if name not in named:
                raise KeyError(f"no parameter named {name!r} to freeze")
            optimizer.set_freeze_mask(named[name], mask)
    report = fit(
        model,
        dataset,
        optimizer,
        epochs=config.epochs,
        batch_size=config.batch_size,
        seed=config.seed,
    )
    return report.train_accuracy[-1]


def white_box_substitute(victim: Module) -> SubstituteResult:
    """No encryption: the adversary's substitute is the victim itself."""
    return SubstituteResult(
        kind="white-box", model=victim, ratio=None, queries=0, train_accuracy=1.0
    )


def black_box_substitute(
    builder: ModelBuilder,
    victim: Module,
    seed_data: Dataset,
    config: SubstituteConfig | None = None,
) -> SubstituteResult:
    """Full encryption: architecture known, all weights retrained from
    scratch on Jacobian-augmented query data."""
    config = config or SubstituteConfig()
    substitute = builder()
    query = make_query_fn(victim)

    def refresh(model: Module, data: Dataset) -> None:
        train_substitute(model, data, config)

    augmented = jacobian_augment(
        substitute,
        seed_data,
        query,
        rounds=config.augmentation_rounds,
        lambda_=config.augmentation_lambda,
        max_samples=config.max_samples,
        train_between_rounds=refresh,
        rng=np.random.default_rng(config.seed),
    )
    accuracy = train_substitute(substitute, augmented.dataset, config)
    return SubstituteResult(
        kind="black-box",
        model=substitute,
        ratio=None,
        queries=augmented.queries,
        train_accuracy=accuracy,
    )


def initialize_seal_substitute(
    builder: ModelBuilder, snooped: SnoopedModel
) -> tuple[Module, dict[str, np.ndarray]]:
    """Instantiate a SEAL substitute pre-loaded with the snooped plaintext.

    Copies every known (plaintext) kernel weight, bias, batch-norm
    parameter and running statistic into a freshly built model, leaving
    encrypted entries at their He initialisation, and returns the model
    together with the per-parameter freeze masks (True = known = frozen
    during fine-tuning).
    """
    substitute = builder()
    named = dict(substitute.named_parameters())
    freeze_masks: dict[str, np.ndarray] = {}
    for layer_name, values in snooped.weights.items():
        param_name = f"{layer_name}.weight"
        if param_name not in named:
            raise KeyError(
                f"substitute architecture lacks parameter {param_name!r}"
            )
        param = named[param_name]
        mask = snooped.masks[layer_name]
        if param.shape != mask.shape:
            raise ValueError(
                f"substitute parameter {param_name!r} has shape {param.shape} "
                f"but the snooped view has {mask.shape} — architecture mismatch"
            )
        known = ~mask
        # Copy the plaintext weights; encrypted ones keep the builder's
        # He initialisation (exactly the paper's adversary procedure [7]).
        param.data[known] = values[known]
        freeze_masks[param_name] = known

    # The bus also leaks unencrypted per-channel auxiliary data (biases,
    # batch-norm parameters); copy and freeze what the snooper saw.
    for param_name, values in snooped.aux_params.items():
        param = named.get(param_name)
        if param is None or param.shape != values.shape:
            continue
        known = ~snooped.aux_masks[param_name]
        param.data[known] = values[known]
        freeze_masks[param_name] = known
    # Snooped batch-norm running statistics seed the substitute's buffers.
    if snooped.aux_buffers:
        modules = dict(substitute.named_modules())
        for buffer_name, values in snooped.aux_buffers.items():
            module_name, _, attr = buffer_name.rpartition(".")
            module = modules.get(module_name)
            if module is None or not hasattr(module, attr):
                continue
            buffer = getattr(module, attr)
            known = ~snooped.aux_masks[buffer_name]
            if buffer.shape == values.shape:
                buffer[known] = values[known]
    return substitute, freeze_masks


def seal_substitute(
    builder: ModelBuilder,
    victim: Module,
    snooped: SnoopedModel,
    seed_data: Dataset,
    config: SubstituteConfig | None = None,
) -> SubstituteResult:
    """SEAL at the snooped view's ratio: copy the snooped plaintext data
    (kernel weights, biases, batch-norm parameters and statistics, all
    frozen), He-initialise the encrypted entries, and fine-tune them on
    Jacobian-augmented query data — the paper's §III-B.1 adversary.
    """
    config = config or SubstituteConfig()
    substitute, freeze_masks = initialize_seal_substitute(builder, snooped)
    if not config.freeze_known:
        freeze_masks = {}
    query = make_query_fn(victim)

    def refresh(model: Module, data: Dataset) -> None:
        train_substitute(model, data, config, freeze_masks=freeze_masks)

    augmented = jacobian_augment(
        substitute,
        seed_data,
        query,
        rounds=config.augmentation_rounds,
        lambda_=config.augmentation_lambda,
        max_samples=config.max_samples,
        train_between_rounds=refresh,
        rng=np.random.default_rng(config.seed),
    )
    accuracy = train_substitute(
        substitute, augmented.dataset, config, freeze_masks=freeze_masks
    )
    return SubstituteResult(
        kind="seal",
        model=substitute,
        ratio=snooped.ratio,
        queries=augmented.queries,
        train_accuracy=accuracy,
    )
