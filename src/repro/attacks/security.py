"""End-to-end security experiments: Figures 3 and 4 of the paper.

One experiment instance trains a victim on its private 90% split, builds
the adversary's substitutes (white-box, black-box, SEAL at a sweep of
encryption ratios) from the 10% query seed, and evaluates both attack
goals:

* **IP stealing** (Figure 3): test-set accuracy of each substitute.
* **Adversarial attacks** (Figure 4): transferability of I-FGSM examples
  crafted on each substitute.

Substitute training is the expensive part, so the harness shares the
trained substitutes between both measurements.

Scaled-down defaults (width-scaled models, synthetic CIFAR-10, small query
budgets) keep a full three-model sweep tractable in pure numpy; every knob
is exposed for larger runs.  For checkpointed, parallel and resumable runs
of the same cells, use :mod:`repro.attacks.sweep` (``python -m repro
security-sweep``).

>>> outcome = SecurityOutcome(
...     model="vgg16",
...     victim_accuracy=0.94,
...     accuracy={"white-box": 0.94, "black-box": 0.49,
...               "seal@0.50": 0.42, "seal@0.20": 0.61},
...     transferability={},
... )
>>> [label for label, _ in outcome.accuracy_series()]
['white-box', 'seal@0.50', 'seal@0.20', 'black-box']
>>> SecurityOutcome.seal_key(0.8)
'seal@0.80'
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.seal import SealScheme
from ..nn.data import Dataset, SyntheticCIFAR10, train_adversary_split
from ..nn.layers import Module, set_init_rng
from ..nn.models import build_model
from ..nn.optim import Adam
from ..nn.training import evaluate, fit
from .adversarial import IfgsmConfig
from .substitute import (
    SubstituteConfig,
    SubstituteResult,
    black_box_substitute,
    seal_substitute,
    white_box_substitute,
)
from .transferability import TransferResult, measure_transferability

__all__ = ["SecurityExperimentConfig", "SecurityOutcome", "run_security_experiment"]

#: The ratio sweep of Figures 3 and 4 (90% … 10%).
PAPER_RATIOS = (0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1)


def _default_substitute_config() -> SubstituteConfig:
    # The security-relevant measurement is the *strongest* attack.  At our
    # scaled-down query budgets the paper's frozen-known-weights adversary
    # cannot exploit the low-ratio leak (the frozen values constrain
    # optimisation more than they inform it), whereas the init-only variant
    # — copy the snooped plaintext, fine-tune everything — reproduces the
    # paper's Figure-3 trend.  Pass freeze_known=True to evaluate the
    # paper's exact adversary instead.
    return SubstituteConfig(freeze_known=False)


@dataclass(frozen=True)
class SecurityExperimentConfig:
    """Everything one Figure-3/Figure-4 run needs."""

    model: str = "vgg16"
    width_scale: float = 0.125
    ratios: tuple[float, ...] = PAPER_RATIOS
    train_size: int = 1500
    test_size: int = 400
    victim_epochs: int = 12
    victim_lr: float = 2e-3
    substitute: SubstituteConfig = field(default_factory=_default_substitute_config)
    ifgsm: IfgsmConfig = field(default_factory=IfgsmConfig)
    transfer_examples: int = 150
    dataset_seed: int = 7
    seed: int = 0


@dataclass
class SecurityOutcome:
    """Results of one experiment (accuracy = Fig. 3, transfer = Fig. 4)."""

    model: str
    victim_accuracy: float
    accuracy: dict[str, float]  # "white-box" | "black-box" | "seal@0.50" …
    transferability: dict[str, TransferResult]
    substitutes: dict[str, SubstituteResult] = field(repr=False, default_factory=dict)

    @staticmethod
    def seal_key(ratio: float) -> str:
        return f"seal@{ratio:.2f}"

    def accuracy_series(self) -> list[tuple[str, float]]:
        """(label, accuracy) rows in the paper's figure order."""
        rows = [("white-box", self.accuracy["white-box"])]
        rows += [
            (key, value)
            for key, value in sorted(
                ((k, v) for k, v in self.accuracy.items() if k.startswith("seal@")),
                key=lambda item: -float(item[0].split("@")[1]),
            )
        ]
        rows.append(("black-box", self.accuracy["black-box"]))
        return rows


def _train_victim(
    model: Module, train_set: Dataset, test_set: Dataset, config: SecurityExperimentConfig
) -> float:
    optimizer = Adam(list(model.parameters()), lr=config.victim_lr)
    fit(
        model,
        train_set,
        optimizer,
        epochs=config.victim_epochs,
        batch_size=config.substitute.batch_size,
        seed=config.seed,
    )
    return evaluate(model, test_set)


def run_security_experiment(
    config: SecurityExperimentConfig = SecurityExperimentConfig(),
    *,
    measure_transfer: bool = True,
    verbose: bool = False,
) -> SecurityOutcome:
    """Run one full Figure-3 (+ optionally Figure-4) experiment."""

    def builder() -> Module:
        return build_model(config.model, width_scale=config.width_scale)

    generator = SyntheticCIFAR10(seed=config.dataset_seed)
    train_set, test_set = generator.standard_splits(
        train_size=config.train_size, test_size=config.test_size
    )
    victim_set, adversary_seed = train_adversary_split(train_set, seed=config.seed)

    set_init_rng(config.seed)
    victim = builder()
    victim_accuracy = _train_victim(victim, victim_set, test_set, config)
    if verbose:
        print(f"victim {config.model} accuracy: {victim_accuracy:.3f}")

    substitutes: dict[str, SubstituteResult] = {}
    substitutes["white-box"] = white_box_substitute(victim)
    set_init_rng(config.seed + 1)
    substitutes["black-box"] = black_box_substitute(
        builder, victim, adversary_seed, config.substitute
    )
    for offset, ratio in enumerate(config.ratios):
        scheme = SealScheme(victim, ratio)
        set_init_rng(config.seed + 2 + offset)
        substitutes[SecurityOutcome.seal_key(ratio)] = seal_substitute(
            builder, victim, scheme.snooped_view(), adversary_seed, config.substitute
        )
        if verbose:
            key = SecurityOutcome.seal_key(ratio)
            print(f"built {key} (queries={substitutes[key].queries})")

    accuracy = {
        key: result.accuracy_on(test_set) for key, result in substitutes.items()
    }
    if verbose:
        for key, value in accuracy.items():
            print(f"accuracy[{key}] = {value:.3f}")

    transferability: dict[str, TransferResult] = {}
    if measure_transfer:
        for key, result in substitutes.items():
            ratio = result.ratio
            transferability[key] = measure_transferability(
                result.model,
                victim,
                test_set,
                num_examples=config.transfer_examples,
                config=config.ifgsm,
                substitute_kind=result.kind,
                ratio=ratio,
                seed=config.seed,
            )
            if verbose:
                print(f"transfer[{key}] = {transferability[key].transferability:.3f}")

    return SecurityOutcome(
        model=config.model,
        victim_accuracy=victim_accuracy,
        accuracy=accuracy,
        transferability=transferability,
        substitutes=substitutes,
    )
