"""Jacobian-based dataset augmentation (Papernot et al., ASIA CCS'17).

The adversary holds a small seed set (the paper gives them 10% of the
CIFAR-10 training split) and no other data.  To train a useful substitute
they synthesise new inputs that probe the victim's decision boundary:

    x' = x + λ · sign(∂F_ŷ(x) / ∂x)

where ``F`` is the *current substitute* and ``ŷ`` the victim's label for
``x``.  The new points are labelled by querying the victim, doubling the
dataset per round.  The paper's adversary turns 5,000 seed images into
45,000 via this procedure; scaled-down runs use fewer rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer

__all__ = ["jacobian_step", "jacobian_augment", "AugmentationResult"]

QueryFn = Callable[[np.ndarray], np.ndarray]


def jacobian_step(
    substitute: Module,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    lambda_: float = 0.1,
    batch_size: int = 128,
) -> np.ndarray:
    """One augmentation step: perturb ``images`` along the substitute's
    Jacobian sign in the direction of their (victim-assigned) labels."""
    substitute.eval()
    outputs = []
    for start in range(0, len(images), batch_size):
        batch = images[start : start + batch_size].astype(np.float32)
        batch_labels = labels[start : start + batch_size]
        x = Tensor(batch, requires_grad=True)
        logits = substitute(x)
        # Sum of the label-logit over the batch: its input gradient is the
        # per-sample Jacobian row for each sample's own label.
        selected = logits[np.arange(len(batch_labels)), batch_labels.astype(int)]
        selected.sum().backward()
        gradient = x.grad
        perturbed = batch + lambda_ * np.sign(gradient)
        outputs.append(np.clip(perturbed, 0.0, 1.0).astype(np.float32))
    return np.concatenate(outputs, axis=0)


@dataclass
class AugmentationResult:
    """Dataset produced by Jacobian augmentation plus provenance info."""

    dataset: Dataset
    rounds: int
    queries: int


def jacobian_augment(
    substitute: Module,
    seed: Dataset,
    query_victim: QueryFn,
    *,
    rounds: int = 2,
    lambda_: float = 0.1,
    max_samples: int | None = None,
    train_between_rounds: Callable[[Module, Dataset], None] | None = None,
    rng: np.random.Generator | None = None,
) -> AugmentationResult:
    """Grow ``seed`` by ``rounds`` of Jacobian augmentation.

    ``query_victim`` maps an image batch to the victim's hard labels (the
    only oracle the threat model grants).  ``train_between_rounds``
    optionally refreshes the substitute on the accumulated data after each
    round — the full Papernot procedure; omitting it still produces
    boundary-probing data from the initial substitute.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    metrics = get_metrics()
    tracer = get_tracer()
    rng = rng or np.random.default_rng(0)
    with metrics.timer("attack.augment"), tracer.span(
        "attack.augment", {"rounds": rounds, "seed_samples": len(seed.images)}
    ):
        images = seed.images.copy()
        labels = query_victim(images)
        queries = len(images)
        for round_index in range(rounds):
            base = images
            if max_samples is not None and 2 * len(base) > max_samples:
                keep = max_samples - len(base)
                if keep <= 0:
                    break
                choice = rng.choice(len(base), size=keep, replace=False)
                base = base[choice]
                base_labels = labels[choice]
            else:
                base_labels = labels
            with tracer.span("attack.augment.round", {"round": round_index}) as span:
                new_images = jacobian_step(
                    substitute, base, base_labels, lambda_=lambda_
                )
                new_labels = query_victim(new_images)
                queries += len(new_images)
                metrics.count("attack.augmentation_rounds")
                if span:
                    span.set_attr("new_samples", len(new_images))
                    span.set_attr("total_samples", len(images) + len(new_images))
            images = np.concatenate([images, new_images], axis=0)
            labels = np.concatenate([labels, new_labels], axis=0)
            if train_between_rounds is not None:
                train_between_rounds(substitute, Dataset(images, labels))
    metrics.count("attack.queries", queries)
    return AugmentationResult(Dataset(images, labels), rounds, queries)
