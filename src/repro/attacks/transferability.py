"""Transferability measurement (Figure 4 of the paper).

Transferability = the fraction of adversarial examples crafted against a
*substitute* that also fool the *victim* — "a widely used metric to
evaluate the efficiency of substitute models for adversarial attacks".
White-box substitutes transfer almost perfectly; black-box substitutes sit
around 20%; SEAL substitutes approach black-box once the encryption ratio
reaches ~50%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Module
from ..nn.training import predict_labels
from .adversarial import AdversarialBatch, IfgsmConfig, craft_adversarial_batch

__all__ = ["TransferResult", "measure_transferability"]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one substitute → victim transfer test."""

    substitute_kind: str
    ratio: float | None
    examples: int
    substitute_success_rate: float
    transferability: float
    targeted_transferability: float

    def __str__(self) -> str:
        label = self.substitute_kind
        if self.ratio is not None:
            label += f"@{self.ratio:.0%}"
        return (
            f"{label}: substitute success {self.substitute_success_rate:.1%}, "
            f"transferability {self.transferability:.1%}"
        )


def measure_transferability(
    substitute: Module,
    victim: Module,
    dataset: Dataset,
    *,
    num_examples: int = 200,
    config: IfgsmConfig = IfgsmConfig(),
    substitute_kind: str = "substitute",
    ratio: float | None = None,
    seed: int = 0,
    only_correctly_classified: bool = True,
) -> TransferResult:
    """Craft on ``substitute``, attack ``victim``, report success ratios.

    ``only_correctly_classified`` restricts the pool to images the victim
    classifies correctly (standard practice: an example the victim already
    gets wrong cannot demonstrate a *caused* misclassification).
    Transferability counts victim misclassification of the true label; the
    targeted variant (victim predicts the pre-assigned target) is also
    reported for completeness.
    """
    rng = np.random.default_rng(seed)
    images, labels = dataset.images, dataset.labels
    if only_correctly_classified:
        victim_predictions = predict_labels(victim, images)
        keep = victim_predictions == labels
        images, labels = images[keep], labels[keep]
    if len(images) == 0:
        raise ValueError("no usable images for the transfer test")
    if len(images) > num_examples:
        choice = rng.choice(len(images), size=num_examples, replace=False)
        images, labels = images[choice], labels[choice]

    batch: AdversarialBatch = craft_adversarial_batch(
        substitute, images, labels, config, rng=rng
    )
    victim_predictions = predict_labels(victim, batch.examples)
    misclassified = victim_predictions != batch.true_labels
    transfer = float(misclassified.mean())
    if batch.target_labels is not None:
        targeted = float((victim_predictions == batch.target_labels).mean())
    else:
        targeted = transfer
    return TransferResult(
        substitute_kind=substitute_kind,
        ratio=ratio,
        examples=len(images),
        substitute_success_rate=batch.substitute_success_rate,
        transferability=transfer,
        targeted_transferability=targeted,
    )
