"""Checkpointed, parallel security-sweep pipeline (Figures 3 and 4).

:func:`repro.attacks.security.run_security_experiment` runs one model's
whole ratio sweep serially in one process; this module decomposes the same
experiment into independent :class:`SweepUnit` cells — one per
``model × encryption-ratio × adversary-variant`` — and runs them through

* a **content-addressed result key** (:func:`cell_key`, built on
  :mod:`repro.core.keys`) covering the experiment configuration, seeds,
  ratio and adversary variant,
* **atomic per-cell JSON checkpoints** (:class:`CheckpointStore`) written
  as each cell finishes, so a crash or Ctrl-C loses at most the cells in
  flight,
* ``--jobs N`` fan-out over a :class:`~concurrent.futures
  .ProcessPoolExecutor`, and
* ``--resume``, which reloads completed cells and recomputes only the
  rest (corrupt or stale checkpoints are rejected and recomputed).

Every cell is a pure function of its unit: the victim is retrained
deterministically from the experiment seeds (and memoised per process),
and each substitute build re-seeds the parameter-initialisation RNG
exactly as the serial experiment does (``seed + 1`` for black-box,
``seed + 2 + ratio_offset`` for SEAL cells).  Parallel and resumed runs
are therefore **field-for-field identical** to a serial run — the golden
suite in ``tests/attacks/test_sweep.py`` pins this, including equality
with :func:`~repro.attacks.security.run_security_experiment` itself.

See ``docs/threat-model.md`` for the adversary variants and
``docs/metrics.md`` for the counters/timers a sweep emits.

>>> from repro.attacks.security import SecurityExperimentConfig
>>> config = SecurityExperimentConfig(model="mlp", ratios=(0.5, 0.2))
>>> units = plan_units(config)
>>> [unit.label for unit in units]
['white-box', 'black-box', 'seal@0.50', 'seal@0.20']
>>> cell_key(units[2]) == cell_key(units[2])        # deterministic
True
>>> from dataclasses import replace
>>> cell_key(replace(units[2], ratio=0.3)) == cell_key(units[2])
False
>>> other_seed = replace(config, seed=1)
>>> cell_key(plan_units(other_seed)[2]) == cell_key(units[2])
False
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

from ..core.keys import canonical_encode, content_key
from ..core.seal import SealScheme
from ..faults import CHAOS_ENV_VAR, RetryPolicy, chaos_probe, run_hardened
from ..faults.quarantine import quarantine_artifact
from ..nn.data import SyntheticCIFAR10, train_adversary_split
from ..nn.layers import set_init_rng
from ..nn.models import build_model
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.trace import get_tracer, worker_tracer
from ..sim.parallel import resolve_jobs
from .security import SecurityExperimentConfig, SecurityOutcome, _train_victim
from .substitute import (
    SubstituteResult,
    black_box_substitute,
    seal_substitute,
    white_box_substitute,
)
from .transferability import measure_transferability

__all__ = [
    "SWEEP_SCHEMA",
    "ADVERSARIES",
    "VARIANTS",
    "SweepUnit",
    "CellResult",
    "SweepResult",
    "CheckpointError",
    "CheckpointStore",
    "cell_key",
    "plan_units",
    "run_cell",
    "run_sweep",
]

#: Schema tag written into every checkpoint document.
SWEEP_SCHEMA = "repro.sweep-checkpoint/v1"

#: The three adversary strengths of the paper's Section III-B.
ADVERSARIES = ("white-box", "black-box", "seal")

#: SEAL fine-tuning variants (see docs/threat-model.md): ``frozen`` is the
#: paper's exact adversary (known plaintext weights stay fixed),
#: ``init-only`` the strictly stronger one (copy, then fine-tune all).
VARIANTS = ("init-only", "frozen")


# ----------------------------------------------------------------------
# Units and keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepUnit:
    """One independent sweep cell: a single substitute build + evaluation.

    ``ratio_offset`` is the ratio's position in the experiment's original
    sweep grid; it seeds the substitute's parameter initialisation exactly
    as the serial experiment does, which is what makes a cell-by-cell run
    bit-identical to :func:`~repro.attacks.security.run_security_experiment`.
    """

    experiment: SecurityExperimentConfig
    adversary: str
    ratio: float | None = None
    ratio_offset: int = 0
    variant: str | None = None
    measure_transfer: bool = True

    def __post_init__(self) -> None:
        if self.adversary not in ADVERSARIES:
            raise ValueError(f"adversary must be one of {ADVERSARIES}")
        if self.adversary == "seal":
            if self.ratio is None:
                raise ValueError("seal units need an encryption ratio")
            if self.variant not in VARIANTS:
                raise ValueError(f"seal variant must be one of {VARIANTS}")
        elif self.ratio is not None:
            raise ValueError(f"{self.adversary} units take no ratio")

    @property
    def label(self) -> str:
        """Row label in the paper's figures (``seal@0.50`` style)."""
        if self.adversary == "seal":
            assert self.ratio is not None
            return SecurityOutcome.seal_key(self.ratio)
        return self.adversary

    @property
    def init_seed(self) -> int | None:
        """Parameter-init seed of the substitute build (None: no build)."""
        if self.adversary == "black-box":
            return self.experiment.seed + 1
        if self.adversary == "seal":
            return self.experiment.seed + 2 + self.ratio_offset
        return None

    def key(self) -> str:
        return cell_key(self)


def cell_key(unit: SweepUnit) -> str:
    """Content hash of everything one cell's result depends on.

    Covers the experiment configuration (model, sizes, epochs, every
    seed), the substitute training budget, the cell's adversary, ratio and
    derived init seed, and the fine-tuning variant.  The experiment's
    ``ratios`` grid is excluded (a cell depends on its own ratio and init
    seed, not on which other ratios the sweep happens to contain), and so
    is ``substitute.freeze_known`` (the unit's ``variant`` carries it).
    """
    experiment = canonical_encode(unit.experiment)
    assert isinstance(experiment, dict)
    experiment.pop("ratios", None)
    substitute = experiment.get("substitute")
    if isinstance(substitute, dict):
        substitute.pop("freeze_known", None)
    return content_key(
        {
            "schema": SWEEP_SCHEMA,
            "experiment": experiment,
            "adversary": unit.adversary,
            "ratio": None if unit.ratio is None else round(unit.ratio, 6),
            "variant": unit.variant if unit.adversary == "seal" else None,
            "init_seed": unit.init_seed,
            "measure_transfer": unit.measure_transfer,
        }
    )


def plan_units(
    experiment: SecurityExperimentConfig,
    *,
    variants: Sequence[str] | None = None,
    measure_transfer: bool = True,
) -> list[SweepUnit]:
    """Decompose one experiment into its independent cells.

    ``variants`` defaults to the single variant the experiment's
    substitute config selects (``freeze_known``); pass both to evaluate
    the paper's frozen adversary next to the stronger init-only one.
    """
    if variants is None:
        variants = ("frozen" if experiment.substitute.freeze_known else "init-only",)
    for variant in variants:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
    units = [
        SweepUnit(experiment, "white-box", measure_transfer=measure_transfer),
        SweepUnit(experiment, "black-box", measure_transfer=measure_transfer),
    ]
    for offset, ratio in enumerate(experiment.ratios):
        for variant in variants:
            units.append(
                SweepUnit(
                    experiment,
                    "seal",
                    ratio=ratio,
                    ratio_offset=offset,
                    variant=variant,
                    measure_transfer=measure_transfer,
                )
            )
    return units


# ----------------------------------------------------------------------
# Cell results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellResult:
    """Deterministic outcome of one cell (JSON-checkpointable scalars).

    Wall-clock time deliberately lives in the metrics registry and the
    checkpoint envelope, not here: every field of a ``CellResult`` is a
    pure function of its unit, which is what lets the golden suite compare
    serial, parallel and resumed sweeps field-for-field.
    """

    key: str
    model: str
    adversary: str
    variant: str | None
    ratio: float | None
    label: str
    victim_accuracy: float
    accuracy: float
    train_accuracy: float
    queries: int
    transferability: float | None = None
    targeted_transferability: float | None = None
    substitute_success_rate: float | None = None

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    #: Fields a checkpoint may omit (transfer measurement disabled).
    _OPTIONAL = (
        "transferability",
        "targeted_transferability",
        "substitute_success_rate",
    )

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CellResult":
        fields: dict[str, object] = {}
        for name in cls.__dataclass_fields__:
            if name in data:
                fields[name] = data[name]
            elif name not in cls._OPTIONAL:
                raise CheckpointError(f"checkpoint result misses field {name!r}")
        return cls(**fields)


def _victim_cache_key(experiment: SecurityExperimentConfig) -> str:
    return content_key(
        {
            "model": experiment.model,
            "width_scale": experiment.width_scale,
            "train_size": experiment.train_size,
            "test_size": experiment.test_size,
            "victim_epochs": experiment.victim_epochs,
            "victim_lr": experiment.victim_lr,
            "batch_size": experiment.substitute.batch_size,
            "dataset_seed": experiment.dataset_seed,
            "seed": experiment.seed,
        }
    )


#: Per-process memo of trained victims: rebuilding the victim is the only
#: work cells of one experiment share, and retraining it is deterministic,
#: so memoising is a pure optimisation (results are bit-identical either
#: way; the golden suite covers both the warm and cold paths).
_VICTIM_CACHE: dict[str, tuple] = {}
_VICTIM_CACHE_MAX = 4


def _victim_context(experiment: SecurityExperimentConfig) -> tuple:
    """(victim, test_set, adversary_seed, victim_accuracy), memoised."""
    metrics = get_metrics()
    key = _victim_cache_key(experiment)
    cached = _VICTIM_CACHE.get(key)
    if cached is not None:
        metrics.count("sweep.victims.cached")
        return cached
    generator = SyntheticCIFAR10(seed=experiment.dataset_seed)
    train_set, test_set = generator.standard_splits(
        train_size=experiment.train_size, test_size=experiment.test_size
    )
    victim_set, adversary_seed = train_adversary_split(
        train_set, seed=experiment.seed
    )
    set_init_rng(experiment.seed)
    victim = build_model(experiment.model, width_scale=experiment.width_scale)
    with metrics.timer("sweep.victim_fit"):
        victim_accuracy = _train_victim(victim, victim_set, test_set, experiment)
    metrics.count("sweep.victims.trained")
    if len(_VICTIM_CACHE) >= _VICTIM_CACHE_MAX:
        _VICTIM_CACHE.clear()
    context = (victim, test_set, adversary_seed, victim_accuracy)
    _VICTIM_CACHE[key] = context
    return context


def run_cell(unit: SweepUnit) -> CellResult:
    """Compute one cell cold: train/reuse the victim, build the cell's
    substitute with the serial experiment's exact seeding, evaluate."""
    experiment = unit.experiment
    metrics = get_metrics()
    tracer = get_tracer()
    with metrics.timer("sweep.cell"), tracer.span(
        "sweep.cell",
        {
            "label": unit.label,
            "adversary": unit.adversary,
            "ratio": unit.ratio,
            "variant": unit.variant,
        },
    ):
        victim, test_set, adversary_seed, victim_accuracy = _victim_context(experiment)

        def builder():
            return build_model(experiment.model, width_scale=experiment.width_scale)

        if unit.adversary == "white-box":
            substitute: SubstituteResult = white_box_substitute(victim)
        elif unit.adversary == "black-box":
            set_init_rng(unit.init_seed)
            substitute = black_box_substitute(
                builder, victim, adversary_seed, experiment.substitute
            )
        else:
            scheme = SealScheme(victim, unit.ratio)
            set_init_rng(unit.init_seed)
            substitute = seal_substitute(
                builder,
                victim,
                scheme.snooped_view(),
                adversary_seed,
                replace(experiment.substitute, freeze_known=unit.variant == "frozen"),
            )

        accuracy = substitute.accuracy_on(test_set)
        transferability = targeted = success_rate = None
        if unit.measure_transfer:
            transfer = measure_transferability(
                substitute.model,
                victim,
                test_set,
                num_examples=experiment.transfer_examples,
                config=experiment.ifgsm,
                substitute_kind=substitute.kind,
                ratio=substitute.ratio,
                seed=experiment.seed,
            )
            transferability = transfer.transferability
            targeted = transfer.targeted_transferability
            success_rate = transfer.substitute_success_rate
    metrics.count("sweep.cells.computed")
    return CellResult(
        key=unit.key(),
        model=experiment.model,
        adversary=unit.adversary,
        variant=unit.variant,
        ratio=unit.ratio,
        label=unit.label,
        victim_accuracy=victim_accuracy,
        accuracy=accuracy,
        train_accuracy=substitute.train_accuracy,
        queries=substitute.queries,
        transferability=transferability,
        targeted_transferability=targeted,
        substitute_success_rate=success_rate,
    )


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class CheckpointError(ValueError):
    """A checkpoint file exists but cannot be trusted (corrupt or stale)."""


class CheckpointStore:
    """Atomic per-cell JSON checkpoints under one directory.

    Each completed cell is written as ``<model>.<adversary>[.r<ratio>.
    <variant>].<key16>.json`` via a temp-file + :func:`os.replace` pair, so
    a kill can never leave a half-written document behind.  ``load``
    validates the schema tag, the embedded key against the unit's
    recomputed key, and the result payload; anything invalid raises
    :class:`CheckpointError` (the sweep recomputes and overwrites it).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, unit: SweepUnit) -> Path:
        parts = [unit.experiment.model, unit.adversary]
        if unit.adversary == "seal":
            parts += [f"r{unit.ratio:.2f}", str(unit.variant)]
        parts.append(unit.key()[:16])
        return self.root / (".".join(parts) + ".json")

    def load(self, unit: SweepUnit) -> CellResult | None:
        """The unit's checkpointed result, ``None`` if absent.

        Raises :class:`CheckpointError` for unreadable JSON, schema or key
        mismatches, and missing/invalid result fields.
        """
        path = self.path(unit)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
        if not isinstance(document, dict) or document.get("schema") != SWEEP_SCHEMA:
            raise CheckpointError(f"{path} is not a {SWEEP_SCHEMA} document")
        expected = unit.key()
        if document.get("key") != expected:
            raise CheckpointError(
                f"{path} was written for key {document.get('key')!r}, "
                f"but the unit hashes to {expected!r} (stale or copied)"
            )
        result = document.get("result")
        if not isinstance(result, dict):
            raise CheckpointError(f"{path} carries no result payload")
        cell = CellResult.from_dict(result)
        if cell.key != expected:
            raise CheckpointError(f"{path} result/envelope key mismatch")
        return cell

    def quarantine(self, unit: SweepUnit, *, reason: str = "") -> Path | None:
        """Move the unit's (corrupt) checkpoint aside; None when absent.

        The original path is freed for recomputation while the bad bytes
        land next to it as ``<name>.quarantine`` with a ``.reason``
        sidecar — see :func:`repro.faults.quarantine.quarantine_artifact`.
        """
        return quarantine_artifact(self.path(unit), reason=reason)

    def store(self, unit: SweepUnit, result: CellResult, *, wall_seconds: float) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(unit)
        document = {
            "schema": SWEEP_SCHEMA,
            "key": result.key,
            "wall_seconds": wall_seconds,
            "result": result.to_dict(),
        }
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """All cells of one sweep, in plan order."""

    cells: list[CellResult]

    def models(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.model, None)
        return list(seen)

    def variants(self) -> list[str | None]:
        seen: dict[str | None, None] = {}
        for cell in self.cells:
            if cell.adversary == "seal":
                seen.setdefault(cell.variant, None)
        return list(seen) or [None]

    def labels(self) -> list[str]:
        """Row labels in the paper's figure order (white-box first, SEAL
        by decreasing ratio, black-box last)."""
        ratios = sorted(
            {cell.ratio for cell in self.cells if cell.ratio is not None},
            reverse=True,
        )
        labels = ["white-box"]
        labels += [SecurityOutcome.seal_key(ratio) for ratio in ratios]
        labels.append("black-box")
        return [
            label
            for label in labels
            if any(cell.label == label for cell in self.cells)
        ]

    def cell(
        self, model: str, label: str, variant: str | None = None
    ) -> CellResult | None:
        for cell in self.cells:
            if cell.model != model or cell.label != label:
                continue
            if cell.adversary == "seal" and variant is not None and cell.variant != variant:
                continue
            return cell
        return None

    def accuracy_dict(self, model: str, variant: str | None = None) -> dict[str, float]:
        """``{label: accuracy}`` for one model/variant — the same mapping
        :class:`~repro.attacks.security.SecurityOutcome` carries."""
        out: dict[str, float] = {}
        for label in self.labels():
            cell = self.cell(model, label, variant)
            if cell is not None:
                out[label] = cell.accuracy
        return out

    def _table(self, field: str, variant: str | None) -> tuple[list[str], list[list[object]]]:
        models = self.models()
        headers = ["substitute"] + models
        rows: list[list[object]] = []
        for label in self.labels():
            row: list[object] = [label]
            for model in models:
                cell = self.cell(model, label, variant)
                value = getattr(cell, field) if cell is not None else None
                row.append(float("nan") if value is None else value)
            rows.append(row)
        return headers, rows

    def report(self) -> str:
        """Paper-style accuracy (+ transferability) tables, per variant."""
        from ..eval.reporting import ascii_table  # deferred: avoids import cycle

        parts: list[str] = []
        victims = {
            cell.model: cell.victim_accuracy for cell in self.cells
        }
        parts.append(
            "victim accuracy: "
            + ", ".join(f"{m}={a:.3f}" for m, a in victims.items())
        )
        for variant in self.variants():
            suffix = f" [{variant}]" if variant is not None else ""
            headers, rows = self._table("accuracy", variant)
            parts.append(
                f"Fig 3: substitute accuracy{suffix}\n" + ascii_table(headers, rows)
            )
            if any(cell.transferability is not None for cell in self.cells):
                headers, rows = self._table("transferability", variant)
                parts.append(
                    f"Fig 4: transferability{suffix}\n" + ascii_table(headers, rows)
                )
        return "\n\n".join(parts)


def _pool_worker(
    unit: SweepUnit,
) -> tuple[CellResult, dict[str, object], float, list[dict[str, object]]]:
    """Worker entry point: compute one cell in a fresh metrics registry.

    Returns ``(result, metrics snapshot, wall seconds, span dicts)`` — the
    spans are empty unless the parent enabled tracing (``REPRO_TRACE``).
    The chaos probe lets the hardening suite crash/hang/fail a chosen cell
    by label (no-op unless ``REPRO_CHAOS`` is set).
    """
    if os.environ.get(CHAOS_ENV_VAR):
        chaos_probe(unit.key(), unit.label)
    local = MetricsRegistry()
    previous = set_metrics(local)
    start = time.perf_counter()
    try:
        with worker_tracer() as tracer:
            result = run_cell(unit)
    finally:
        set_metrics(previous)
    spans = tracer.span_dicts() if tracer is not None else []
    return result, local.snapshot(), time.perf_counter() - start, spans


def run_sweep(
    units: Iterable[SweepUnit] | SecurityExperimentConfig,
    *,
    jobs: int | None = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
    metrics: MetricsRegistry | None = None,
    policy: RetryPolicy | None = None,
) -> SweepResult:
    """Execute sweep cells, deduplicated, checkpointed and in parallel.

    ``units`` may be a pre-planned list or a bare
    :class:`~repro.attacks.security.SecurityExperimentConfig` (then
    :func:`plan_units` decomposes it).  Results come back in plan order
    regardless of worker count or completion order.  With
    ``checkpoint_dir``, each finished cell is written atomically the
    moment it completes; with ``resume`` (the default), cells whose
    checkpoint validates are loaded instead of recomputed — a corrupt or
    stale checkpoint is quarantined (``*.quarantine`` next to it, reason
    in a sidecar) and its cell recomputed.

    Execution is hardened (see :mod:`repro.faults.runner`): ``policy``
    grants per-cell retries and timeouts, a crashed worker only charges
    the cells in flight, and a permanently-failing cell raises a
    :class:`~repro.faults.UnitExecutionError` naming its key — only after
    every other cell has completed *and been checkpointed*, so the next
    ``--resume`` run picks up exactly where this one failed.
    """
    if isinstance(units, SecurityExperimentConfig):
        units = plan_units(units)
    units = list(units)
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else get_metrics()
    tracer = get_tracer()
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None

    keys = [unit.key() for unit in units]
    resolved: dict[str, CellResult] = {}
    pending: dict[str, SweepUnit] = {}
    for unit, key in zip(units, keys):
        if key in resolved or key in pending:
            continue
        if store is not None and resume:
            try:
                loaded = store.load(unit)
            except CheckpointError as error:
                metrics.count("sweep.checkpoints.corrupt")
                if store.quarantine(unit, reason=str(error)) is not None:
                    metrics.count("sweep.checkpoints.quarantined")
                loaded = None
            if loaded is not None:
                resolved[key] = loaded
                metrics.count("sweep.cells.resumed")
                continue
        pending[key] = unit

    def checkpoint(unit: SweepUnit, result: CellResult, seconds: float) -> None:
        if store is not None:
            store.store(unit, result, wall_seconds=seconds)
            metrics.count("sweep.checkpoints.written")

    todo = [(key, unit.label, unit) for key, unit in pending.items()]
    if todo:
        with metrics.timer("sweep.compute"), tracer.span(
            "sweep.run_sweep",
            {"cells": len(units), "pending": len(todo), "jobs": jobs},
        ) as dispatch:
            if jobs == 1 or len(todo) == 1:
                # Route run_cell's ambient instrumentation (cell timers,
                # train/augmentation counters) into this run's registry,
                # exactly as the pool path does via worker snapshots.
                previous = set_metrics(metrics)
                try:

                    def serial_worker(unit: SweepUnit) -> tuple[CellResult, float]:
                        start = time.perf_counter()
                        return run_cell(unit), time.perf_counter() - start

                    def serial_deliver(key: str, unit: object, outcome: object) -> None:
                        result, seconds = outcome  # type: ignore[misc]
                        resolved[key] = result
                        checkpoint(unit, result, seconds)  # type: ignore[arg-type]

                    run_hardened(
                        serial_worker,
                        todo,
                        jobs=1,
                        policy=policy,
                        metrics=metrics,
                        on_result=serial_deliver,
                    )
                finally:
                    set_metrics(previous)
            else:
                metrics.count("sweep.pools")

                def pool_deliver(key: str, unit: object, outcome: object) -> None:
                    result, snapshot, seconds, spans = outcome  # type: ignore[misc]
                    resolved[key] = result
                    metrics.merge(snapshot)
                    if dispatch:
                        tracer.adopt(spans, parent=dispatch)
                    checkpoint(unit, result, seconds)  # type: ignore[arg-type]

                run_hardened(
                    _pool_worker,
                    todo,
                    jobs=jobs,
                    policy=policy,
                    metrics=metrics,
                    on_result=pool_deliver,
                )
    metrics.count("sweep.cells.total", len(units))
    return SweepResult(cells=[resolved[key] for key in keys])
