"""I-FGSM adversarial example generation (Kurakin et al. [12]).

The paper's adversarial-attack test crafts 1,000 adversarial examples per
substitute model with I-FGSM, verifies a 100% success rate against the
substitute itself, then measures how many transfer to the victim.

Iterative FGSM:  x_{t+1} = clip_{x,ε}( x_t + α · sign(∇_x L(x_t)) )
with the loss pushing toward a pre-assigned incorrect target (targeted
variant, the paper's setting) or away from the true label (untargeted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..nn.training import predict_labels

__all__ = ["IfgsmConfig", "AdversarialBatch", "ifgsm", "craft_adversarial_batch"]


@dataclass(frozen=True)
class IfgsmConfig:
    """Attack hyper-parameters (Kurakin et al.'s defaults, scaled to [0,1]
    pixel range)."""

    epsilon: float = 0.06  # L∞ budget
    alpha: float = 0.01  # per-iteration step
    iterations: int = 20
    targeted: bool = True

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.alpha <= 0 or self.iterations <= 0:
            raise ValueError("epsilon, alpha and iterations must be positive")


def _loss_gradient(model: Module, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
    x = Tensor(images.astype(np.float32), requires_grad=True)
    logits = model(x)
    loss = F.cross_entropy(logits, labels)
    loss.backward()
    return x.grad


def ifgsm(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: IfgsmConfig = IfgsmConfig(),
    *,
    batch_size: int = 128,
) -> np.ndarray:
    """Craft adversarial examples against ``model``.

    ``labels`` are the *targets* when ``config.targeted`` (descend the
    target-class loss) or the true labels otherwise (ascend the true-class
    loss).  Perturbations stay within the ε-ball and valid pixel range.
    """
    model.eval()
    sign = -1.0 if config.targeted else 1.0
    outputs = []
    for start in range(0, len(images), batch_size):
        clean = images[start : start + batch_size].astype(np.float32)
        batch_labels = labels[start : start + batch_size]
        adversarial = clean.copy()
        for _ in range(config.iterations):
            gradient = _loss_gradient(model, adversarial, batch_labels)
            adversarial = adversarial + sign * config.alpha * np.sign(gradient)
            adversarial = np.clip(
                adversarial, clean - config.epsilon, clean + config.epsilon
            )
            adversarial = np.clip(adversarial, 0.0, 1.0).astype(np.float32)
        outputs.append(adversarial)
    return np.concatenate(outputs, axis=0)


@dataclass
class AdversarialBatch:
    """Adversarial examples plus the bookkeeping transfer tests need."""

    examples: np.ndarray
    true_labels: np.ndarray
    target_labels: np.ndarray | None
    substitute_success: np.ndarray  # per-example success against substitute

    @property
    def substitute_success_rate(self) -> float:
        return float(self.substitute_success.mean()) if len(self.substitute_success) else 0.0


def craft_adversarial_batch(
    substitute: Module,
    images: np.ndarray,
    true_labels: np.ndarray,
    config: IfgsmConfig = IfgsmConfig(),
    *,
    rng: np.random.Generator | None = None,
    num_classes: int = 10,
) -> AdversarialBatch:
    """Generate a batch the way the paper's Section III-B.3 test does.

    For the targeted variant each example receives a random pre-assigned
    incorrect target.  Success against the substitute means the substitute
    predicts the target (targeted) or mispredicts the true label
    (untargeted).
    """
    rng = rng or np.random.default_rng(0)
    if config.targeted:
        offsets = rng.integers(1, num_classes, size=len(true_labels))
        targets = (true_labels + offsets) % num_classes
        examples = ifgsm(substitute, images, targets, config)
        predictions = predict_labels(substitute, examples)
        success = predictions == targets
    else:
        targets = None
        examples = ifgsm(substitute, images, true_labels, config)
        predictions = predict_labels(substitute, examples)
        success = predictions != true_labels
    return AdversarialBatch(
        examples=examples,
        true_labels=np.asarray(true_labels),
        target_labels=targets,
        substitute_success=np.asarray(success),
    )
