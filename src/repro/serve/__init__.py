"""Seal-as-a-service: an asyncio front end over the SEAL pipeline.

The ROADMAP's "millions of users" scenario made concrete: a newline-
delimited-JSON server (``python -m repro serve``) exposing the paper's
plan → AES-CTR seal → GMAC authenticate pipeline as concurrent
``seal`` / ``unseal`` / ``verify`` / ``plan`` operations.  Four moving
parts, one per module:

* :mod:`repro.serve.protocol` — the ``repro.serve/v1`` wire format
  (requests, responses, error codes) and payload base64 helpers;
* :mod:`repro.serve.quota` — per-tenant token buckets;
* :mod:`repro.serve.batcher` — the micro-batcher coalescing concurrent
  requests into one batched pass through the vectorized crypto fast path;
* :mod:`repro.serve.server` — admission control (bounded in-flight
  queue with 429-style rejection), per-request timeouts, a crash-isolated
  worker pool with a degraded-mode circuit breaker, graceful drain on
  SIGTERM/SIGINT, a quota-exempt ``health`` op, ``serve.*`` metrics and
  request spans;
* :mod:`repro.serve.client` — asyncio and blocking clients with
  automatic reconnect and bounded, nonce-safe retry
  (:class:`~repro.serve.client.RetryPolicy`), used by the tests and the
  load/soak benches.

Protocol reference and ops runbook: ``docs/serving.md``.
"""

from .batcher import MicroBatcher
from .client import BlockingServeClient, RetryPolicy, ServeClient, ServeError
from .protocol import (
    PROTOCOL_SCHEMA,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    decode_request,
    encode_response,
    from_b64,
    to_b64,
)
from .quota import QuotaManager, TokenBucket
from .server import ModelServer, ServeConfig

__all__ = [
    "PROTOCOL_SCHEMA",
    "ErrorCode",
    "ProtocolError",
    "Request",
    "Response",
    "decode_request",
    "encode_response",
    "from_b64",
    "to_b64",
    "TokenBucket",
    "QuotaManager",
    "MicroBatcher",
    "ModelServer",
    "ServeConfig",
    "ServeClient",
    "BlockingServeClient",
    "RetryPolicy",
    "ServeError",
]
