"""The ``repro.serve/v1`` wire protocol: newline-delimited JSON.

One request per line, one response per line, correlated by a client-chosen
``id`` (responses may arrive out of order — the server handles requests
concurrently and the micro-batcher reorders completions).  The full
protocol reference with request/response examples lives in
``docs/serving.md``; this module is the single source of truth for the
shapes.

Request::

    {"id": "r1", "op": "seal", "tenant": "acme", "params": {...}}

Response::

    {"id": "r1", "ok": true, "result": {...}}
    {"id": "r1", "ok": false,
     "error": {"code": "quota_exhausted", "status": 429, "message": "..."}}

Binary payloads (plaintext, ciphertext, tags) travel as standard base64
strings.  Unknown top-level request fields are rejected (a typo'd field
name should fail loudly, not silently change semantics); unknown *ops*
are a :class:`ProtocolError` with code ``bad_request``.

>>> request = decode_request('{"id": "1", "op": "ping"}')
>>> request.op
'ping'
>>> '"pong":true' in encode_response(request.success({"pong": True}))
True
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "PROTOCOL_SCHEMA",
    "OPS",
    "BATCHED_OPS",
    "MAX_LINE_BYTES",
    "STREAM_LIMIT_BYTES",
    "RETRYABLE_CODES",
    "ErrorCode",
    "ProtocolError",
    "Request",
    "Response",
    "decode_request",
    "encode_response",
    "decode_response",
    "to_b64",
    "from_b64",
]

#: Version tag carried in every ``stats`` result and the server banner.
PROTOCOL_SCHEMA = "repro.serve/v1"

#: Every operation the server understands.  ``seal``/``unseal``/``verify``
#: run through the micro-batcher; the rest execute directly.
#: ``ping``/``stats``/``health`` are liveness ops: exempt from per-tenant
#: quota, the bounded admission queue, and drain rejection, so they keep
#: answering under overload and during a graceful drain.
OPS = ("seal", "unseal", "verify", "plan", "stats", "ping", "health", "shutdown")

#: Operations coalesced by :class:`repro.serve.batcher.MicroBatcher`.
BATCHED_OPS = ("seal", "unseal", "verify")

#: Upper bound on one request line (wire bytes, pre-parse).  Base64 inflates
#: payloads 4/3×, so this admits payloads of ~1.5 MB — far beyond the
#: benched mix — while bounding per-request memory.
MAX_LINE_BYTES = 2 * 1024 * 1024

#: ``limit=`` for :func:`asyncio.start_server` / ``open_connection``.
#: asyncio's default ``StreamReader`` limit is 64 KiB, under which
#: ``readline`` raises :class:`ValueError` on any longer line — so both
#: sides of the connection must raise it to the protocol's line bound
#: (plus slack for framing) or legal payloads would kill the stream.
STREAM_LIMIT_BYTES = MAX_LINE_BYTES + 1024


class ErrorCode(str, Enum):
    """Error codes with their HTTP-flavoured status for familiarity."""

    BAD_REQUEST = "bad_request"          # 400: malformed JSON / params
    VERIFY_FAILED = "verify_failed"      # 403: authentication tag mismatch
    FORBIDDEN = "forbidden"              # 403: op not permitted (shutdown)
    OVERLOADED = "overloaded"            # 429: bounded queue full
    QUOTA_EXHAUSTED = "quota_exhausted"  # 429: tenant token bucket empty
    UNAVAILABLE = "unavailable"          # 503: draining; retry elsewhere
    TIMEOUT = "timeout"                  # 504: per-request budget exceeded
    CRASHED = "crashed"                  # 500: worker died mid-request
    CONNECTION_LOST = "connection_lost"  # 503: client-side, never on the wire
    INTERNAL = "internal"                # 500: anything else

    @property
    def status(self) -> int:
        return {
            ErrorCode.BAD_REQUEST: 400,
            ErrorCode.VERIFY_FAILED: 403,
            ErrorCode.FORBIDDEN: 403,
            ErrorCode.OVERLOADED: 429,
            ErrorCode.QUOTA_EXHAUSTED: 429,
            ErrorCode.UNAVAILABLE: 503,
            ErrorCode.TIMEOUT: 504,
            ErrorCode.CRASHED: 500,
            ErrorCode.CONNECTION_LOST: 503,
            ErrorCode.INTERNAL: 500,
        }[self]


#: Codes a retrying client may transparently replay: the request either
#: never reached execution (``overloaded``, ``unavailable``), the batch
#: died before completing (``crashed`` — the pool is rebuilt), or the
#: *response* was lost (``connection_lost``, synthesized client-side when
#: the connection drops with requests in flight).  ``timeout`` is
#: deliberately absent: a payload that hangs the datapath would burn a
#: full request budget per attempt, so timeouts are surfaced to the
#: caller instead of retried blindly (docs/serving.md, "Resilience").
RETRYABLE_CODES = frozenset(
    {
        ErrorCode.OVERLOADED,
        ErrorCode.UNAVAILABLE,
        ErrorCode.CRASHED,
        ErrorCode.CONNECTION_LOST,
    }
)


class ProtocolError(ValueError):
    """A request that cannot be served; carries its wire error code."""

    def __init__(
        self, message: str, code: ErrorCode = ErrorCode.BAD_REQUEST
    ) -> None:
        self.code = code
        super().__init__(message)


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    id: str
    op: str
    tenant: str = "default"
    params: dict = field(default_factory=dict)

    def success(self, result: dict) -> "Response":
        return Response(id=self.id, ok=True, result=result)

    def failure(
        self, code: ErrorCode, message: str, detail: dict | None = None
    ) -> "Response":
        return Response(
            id=self.id, ok=False, code=code, message=message, detail=detail
        )


@dataclass(frozen=True)
class Response:
    """One response line (success XOR error)."""

    id: str
    ok: bool
    result: dict | None = None
    code: ErrorCode | None = None
    message: str = ""
    detail: dict | None = None


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------
def to_b64(data: bytes) -> str:
    """Binary → wire text."""
    return base64.b64encode(data).decode("ascii")


def from_b64(text: object, what: str = "payload") -> bytes:
    """Wire text → binary; :class:`ProtocolError` on anything malformed."""
    if not isinstance(text, str):
        raise ProtocolError(f"{what} must be a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as error:
        raise ProtocolError(f"{what} is not valid base64: {error}") from None


_REQUEST_FIELDS = {"id", "op", "tenant", "params"}


def decode_request(line: str | bytes) -> Request:
    """Parse one request line; :class:`ProtocolError` on any malformation."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not UTF-8: {error}") from None
    elif len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request needs a non-empty string 'id'")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; choose from {', '.join(OPS)}"
        )
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    return Request(id=request_id, op=op, tenant=tenant, params=params)


def encode_response(response: Response) -> str:
    """Serialise a response to one wire line (no trailing newline)."""
    if response.ok:
        document: dict = {"id": response.id, "ok": True, "result": response.result or {}}
    else:
        code = response.code or ErrorCode.INTERNAL
        error: dict = {
            "code": code.value,
            "status": code.status,
            "message": response.message,
        }
        if response.detail:
            error["detail"] = response.detail
        document = {"id": response.id, "ok": False, "error": error}
    return json.dumps(document, separators=(",", ":"), sort_keys=True)


def decode_response(line: str | bytes) -> Response:
    """Parse one response line (the client half of the protocol)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"response is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "id" not in payload:
        raise ProtocolError("response must be a JSON object with an 'id'")
    if payload.get("ok"):
        result = payload.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("success response needs a 'result' object")
        return Response(id=str(payload["id"]), ok=True, result=result)
    error = payload.get("error")
    if not isinstance(error, dict):
        raise ProtocolError("failure response needs an 'error' object")
    try:
        code = ErrorCode(error.get("code"))
    except ValueError:
        code = ErrorCode.INTERNAL
    return Response(
        id=str(payload["id"]),
        ok=False,
        code=code,
        message=str(error.get("message", "")),
        detail=error.get("detail"),
    )


# ----------------------------------------------------------------------
# Parameter validation helpers (shared by the server's op handlers)
# ----------------------------------------------------------------------
def require_int(params: dict, name: str, default: int | None = None) -> int:
    value = params.get(name, default)
    if value is None:
        raise ProtocolError(f"missing required integer param {name!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"param {name!r} must be an integer")
    if value < 0:
        raise ProtocolError(f"param {name!r} must be non-negative")
    return value


def require_tags(params: dict, n_lines: int) -> list[bytes]:
    raw = params.get("tags")
    if not isinstance(raw, list) or len(raw) != n_lines:
        raise ProtocolError(
            f"'tags' must be a list of {n_lines} base64 tag(s)"
        )
    return [from_b64(tag, "tag") for tag in raw]
