"""Micro-batching: coalesce concurrent requests into one fastpath pass.

The vectorized crypto datapath (:mod:`repro.crypto.fastpath`) pays a
fixed lane-setup cost per call and then encrypts/tags blocks essentially
for free across array lanes — so ten concurrent 4-line seal requests are
far cheaper as one 40-line batch than as ten calls.  :class:`MicroBatcher`
is the coalescing point: requests queue up, a single drain task collects
whatever is waiting (up to ``max_batch`` items, optionally lingering
``window_seconds`` for stragglers) and hands the whole batch to one
``execute`` callable.  Each submitter gets its own result back through a
future, in any order — the wire protocol correlates by request id.

Latency behaviour: with the default ``window_seconds=0`` a lone request
is dispatched *immediately* (the drain loop only takes what is already
queued), so an idle server adds no artificial latency; under load the
queue naturally fills while the previous batch executes, which is where
the coalescing (and the throughput win ``benchmarks/
bench_serve_latency.py`` measures) comes from.

Counters: ``serve.batches`` (drains), ``serve.batch.requests`` (items
through batches) and the ``serve.batch`` timer land in the process
metrics registry; the batch-size distribution is visible as the timer's
per-batch samples and the ``serve_batch_mean_requests`` derived field.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Generic, Sequence, TypeVar

from ..obs.metrics import get_metrics

__all__ = ["MicroBatcher"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class MicroBatcher(Generic[ItemT, ResultT]):
    """Coalesce awaited submissions into batched ``execute`` calls.

    Parameters
    ----------
    execute:
        ``async (items) -> results`` with one result per item, in order.
        A result that is an :class:`Exception` instance is raised to that
        item's submitter alone; an exception raised by ``execute`` itself
        fails the whole batch (every submitter sees it).
    max_batch:
        Hard cap on items per drain (bounds worst-case batch latency).
    window_seconds:
        How long a non-full batch lingers for stragglers after its first
        item arrived.  ``0`` = dispatch what is already queued.
    label:
        Metrics prefix: ``<label>es``/``<label>s`` counter (drains),
        ``<label>.requests`` counter, ``<label>`` timer.
    """

    def __init__(
        self,
        execute: Callable[[Sequence[ItemT]], Awaitable[Sequence[ResultT]]],
        *,
        max_batch: int = 64,
        window_seconds: float = 0.0,
        label: str = "serve.batch",
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        self._execute = execute
        self.max_batch = max_batch
        self.window_seconds = window_seconds
        self.label = label
        suffix = "es" if label.endswith(("s", "ch", "sh", "x", "z")) else "s"
        self._drain_counter = label + suffix
        self._queue: asyncio.Queue[tuple[ItemT, asyncio.Future]] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopped = False
        if self._task is None:
            self._task = asyncio.create_task(self._drain_loop(), name=self.label)

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        # Fail anything still queued so no submitter hangs on shutdown.
        while not self._queue.empty():
            _, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(RuntimeError("batcher stopped"))

    async def submit(self, item: ItemT) -> ResultT:
        """Queue ``item`` and await its individual result.

        Raises ``RuntimeError("batcher stopped")`` after :meth:`stop` —
        a late submitter during shutdown must fail fast, not silently
        respawn the drain task on a server that is going away (an
        explicit :meth:`start` re-arms the batcher).
        """
        if self._stopped:
            raise RuntimeError("batcher stopped")
        if self._task is None:
            await self.start()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future))
        return await future

    def pending(self) -> int:
        """Items queued but not yet drained (monitoring only)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.window_seconds
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
            await self._run_batch(batch)

    async def _run_batch(
        self, batch: list[tuple[ItemT, asyncio.Future]]
    ) -> None:
        metrics = get_metrics()
        metrics.count(self._drain_counter)
        metrics.count(f"{self.label}.requests", len(batch))
        items = [item for item, _ in batch]
        try:
            with metrics.timer(self.label):
                results = await self._execute(items)
        except asyncio.CancelledError:
            for _, future in batch:
                if not future.done():
                    future.set_exception(RuntimeError("batcher stopped"))
            raise
        except Exception as error:  # whole-batch failure (timeout, crash)
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        if len(results) != len(batch):
            error = RuntimeError(
                f"batch executor returned {len(results)} results "
                f"for {len(batch)} items"
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)
