"""The asyncio seal-as-a-service server.

``python -m repro serve`` builds one :class:`ModelServer` over a TCP
socket speaking the newline-delimited-JSON protocol of
:mod:`repro.serve.protocol`.  Concurrent ``seal`` / ``unseal`` /
``verify`` requests coalesce through per-op
:class:`~repro.serve.batcher.MicroBatcher` instances into batched passes
over :class:`repro.core.seal.LineSealer` — the vectorized crypto fast
path — while ``plan`` / ``stats`` / ``ping`` execute directly.

Admission control mirrors a production front end in miniature:

* **backpressure** — at most ``queue_limit`` requests may be in flight;
  request ``queue_limit + 1`` is rejected immediately with a 429-style
  ``overloaded`` error (``serve.requests.rejected.backpressure``);
* **quotas** — per-tenant token buckets charge one token per cache line
  of crypto work (``serve.requests.rejected.quota``);
* **timeouts** — a request running past ``request_timeout`` fails with
  ``timeout`` (``serve.requests.timeout``); with a process pool the hung
  worker is killed and the pool rebuilt;
* **crash isolation** — with ``workers > 0`` the crypto executes in a
  :class:`~concurrent.futures.ProcessPoolExecutor`; a worker that dies
  mid-batch fails only that batch (``crashed``) and the pool is rebuilt
  (``serve.pool_restarts``), mirroring the ``run_hardened`` semantics of
  :mod:`repro.faults.runner`.  Workers honour the same ``REPRO_CHAOS``
  hooks as the sweep runners (label ``serve:<tenant>``), which is how the
  tests crash/hang them on purpose.

Observability: every admitted request lands one ``serve.request`` timer
observation (p50/p95/p99 via the reservoir quantiles of
:class:`repro.obs.metrics.TimerStat`) and — when tracing is enabled — one
``serve.request`` span; batch executions record ``serve.batch`` spans
with worker-side crypto spans re-rooted beneath them via
:meth:`repro.obs.trace.Tracer.adopt`.  Schema reference:
``docs/metrics.md`` and ``docs/tracing.md``; runbook: ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import signal
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence

from ..core.plan import ModelEncryptionPlan
from ..core.seal import LINE_BYTES
from ..schemes import get_scheme
from ..faults.chaos import chaos_io_action, chaos_probe
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.trace import get_tracer, worker_tracer
from .batcher import MicroBatcher
from .protocol import (
    BATCHED_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_SCHEMA,
    STREAM_LIMIT_BYTES,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    decode_request,
    encode_response,
    from_b64,
    require_int,
    require_tags,
    to_b64,
)
from .quota import QuotaManager

__all__ = ["DEFAULT_KEY", "ServeConfig", "ModelServer", "run_server"]

#: Demo service key — a real deployment would provision per-tenant keys
#: from an HSM; the protocol carries no key material either way.
DEFAULT_KEY = bytes(range(16))

#: Cap on cache lines per single request (keeps one request from
#: monopolising a batch; larger payloads should be chunked client-side).
MAX_LINES_PER_REQUEST = 4096

#: First server-assigned write counter for ``seal`` requests that omit
#: one.  The CTR keystream depends on the (line address, counter) pair —
#: reusing a pair under one key hands an attacker the XOR of the two
#: plaintexts — so the server allocates a fresh counter per defaulted
#: seal.  Starting high keeps the assigned range clear of the small
#: counters clients tend to pick by hand; the datapath packs counters
#: into 32 bits, so assignment wraps (and pads repeat) only after ~2.7
#: billion defaulted seals.
SEAL_COUNTER_BASE = 0x5EA1_0000

#: How many recent (base_address, counter) seal pairs are remembered for
#: pad-reuse detection (``serve.seal.pad_reuse``); bounded LRU so the
#: tracker cannot grow without limit.
PAD_REUSE_TRACKED = 65536


@dataclass(frozen=True)
class ServeConfig:
    """Everything `python -m repro serve` lets you tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (printed in the banner)
    key: bytes = DEFAULT_KEY
    #: Protection scheme sealing the lines (a :mod:`repro.schemes`
    #: registry name); picks the cipher pipeline and default tag size.
    scheme: str = "seal-se"
    tag_bytes: int | None = None  # None = the scheme's default truncation
    line_bytes: int = LINE_BYTES
    backend: str | None = None  # crypto backend (None = env/default)
    max_batch: int = 64  # requests per micro-batch
    batch_window: float = 0.0  # linger for stragglers (seconds)
    queue_limit: int = 256  # max in-flight requests before 429
    workers: int = 0  # 0 = in-process threads; N = process pool
    request_timeout: float | None = None  # seconds; None = unbounded
    quota_rate: float = 0.0  # tenant tokens (lines)/second; 0 = off
    quota_burst: float | None = None  # bucket capacity (default: rate)
    shutdown_token: str | None = None  # require params.token on shutdown
    allow_remote_shutdown: bool = False  # honour shutdown off-loopback
    drain_timeout: float = 5.0  # graceful-drain budget for in-flight work
    degraded_threshold: int = 3  # consecutive pool crashes before degrading
    degraded_recovery: float = 30.0  # seconds between pool recovery probes
    pad_reuse_tracked: int = PAD_REUSE_TRACKED  # LRU bound on tracked pairs

    def resolved_tag_bytes(self) -> int:
        """Stored tag bytes per line: explicit override or scheme default."""
        if self.tag_bytes is not None:
            return self.tag_bytes
        return get_scheme(self.scheme).tag_bytes

    def make_sealer(self):
        """The scheme's batched line sealer for this configuration."""
        return get_scheme(self.scheme).make_sealer(
            self.key,
            line_bytes=self.line_bytes,
            backend=self.backend,
            tag_bytes=self.tag_bytes,
        )


# ----------------------------------------------------------------------
# Worker-pool entry point (module level so it pickles under spawn)
# ----------------------------------------------------------------------
_WORKER_SEALERS: dict[tuple, object] = {}


def _worker_sealer(spec: dict):
    signature = (
        spec.get("scheme", "seal-se"),
        spec["key"],
        spec["tag_bytes"],
        spec["line_bytes"],
        spec["backend"],
    )
    sealer = _WORKER_SEALERS.get(signature)
    if sealer is None:
        scheme = get_scheme(spec.get("scheme", "seal-se"))
        sealer = _WORKER_SEALERS[signature] = scheme.make_sealer(
            spec["key"],
            tag_bytes=spec["tag_bytes"] or None,
            line_bytes=spec["line_bytes"],
            backend=spec["backend"],
        )
    return sealer


def _run_batch_spec(spec: dict) -> dict:
    """Execute one flattened batch spec (runs in a pool worker *or* an
    in-process thread — the only difference is who merges the metrics)."""
    for chaos_key, chaos_label in spec.get("chaos", ()):
        chaos_probe(chaos_key, chaos_label)
    sealer = _worker_sealer(spec)
    op = spec["op"]
    addresses = spec["addresses"]
    counters = spec["counters"]
    lines = spec["lines"]
    out: dict = {"op": op}
    with get_tracer().span("serve.batch") as span:
        if span:
            span.set_attr("op", op)
            span.set_attr("lines", len(lines))
            span.set_attr("requests", spec.get("requests", 1))
            span.set_attr("backend", sealer.backend)
        if op == "seal":
            ciphertexts, tags = sealer.seal_lines(addresses, counters, lines)
            out["ciphertexts"] = ciphertexts
            out["tags"] = tags
        elif op == "unseal":
            plaintexts, verdicts = sealer.open_lines(
                addresses, counters, lines, spec["tags"]
            )
            out["plaintexts"] = plaintexts
            out["verdicts"] = verdicts
        elif op == "verify":
            out["verdicts"] = sealer.verify_lines(
                addresses, counters, lines, spec["tags"]
            )
        else:  # pragma: no cover - guarded upstream
            raise ValueError(f"unbatchable op {op!r}")
    return out


def _pool_run_batch(spec: dict) -> tuple[dict, dict, list[dict]]:
    """Worker-process wrapper: private metrics + tracer, shipped back."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        with worker_tracer() as tracer:
            result = _run_batch_spec(spec)
            spans = tracer.span_dicts() if tracer is not None else []
    finally:
        set_metrics(previous)
    return result, registry.snapshot(), spans


# ----------------------------------------------------------------------
# Request → work item parsing
# ----------------------------------------------------------------------
@dataclass
class _WorkItem:
    """One batched request, flattened to its cache lines."""

    request: Request
    addresses: list[int]
    counters: list[int]
    lines: list[bytes]  # plaintext (seal) or ciphertext (unseal/verify)
    tags: list[bytes] = field(default_factory=list)
    length: int = 0  # original payload bytes (seal/unseal)

    @property
    def n_lines(self) -> int:
        return len(self.lines)


class _OpError(Exception):
    """Internal op failure carrying its wire error code."""

    def __init__(
        self, code: ErrorCode, message: str, detail: dict | None = None
    ) -> None:
        self.code = code
        self.detail = detail
        super().__init__(message)


def _split_lines(blob: bytes, line_bytes: int) -> list[bytes]:
    return [
        blob[offset : offset + line_bytes]
        for offset in range(0, len(blob), line_bytes)
    ]


def _parse_work_item(request: Request, line_bytes: int) -> _WorkItem:
    params = request.params
    base_address = require_int(params, "base_address", 0)
    counter = require_int(params, "counter", 1)
    if request.op == "seal":
        payload = from_b64(params.get("payload"), "payload")
        if not payload:
            raise ProtocolError("'payload' must not be empty")
        length = len(payload)
        payload += bytes(-length % line_bytes)
        lines = _split_lines(payload, line_bytes)
        tags: list[bytes] = []
    else:  # unseal / verify
        ciphertext = from_b64(params.get("ciphertext"), "ciphertext")
        if not ciphertext or len(ciphertext) % line_bytes:
            raise ProtocolError(
                f"'ciphertext' must be a non-empty multiple of {line_bytes} bytes"
            )
        lines = _split_lines(ciphertext, line_bytes)
        tags = require_tags(params, len(lines))
        length = (
            require_int(params, "length", len(ciphertext))
            if request.op == "unseal"
            else 0
        )
        if request.op == "unseal" and not 0 < length <= len(ciphertext):
            raise ProtocolError(
                "'length' must be within the ciphertext size"
            )
    if len(lines) > MAX_LINES_PER_REQUEST:
        raise ProtocolError(
            f"payload spans {len(lines)} lines; the per-request cap is "
            f"{MAX_LINES_PER_REQUEST} (chunk client-side)"
        )
    addresses = [base_address + index * line_bytes for index in range(len(lines))]
    return _WorkItem(
        request=request,
        addresses=addresses,
        counters=[counter] * len(lines),
        lines=lines,
        tags=tags,
        length=length,
    )


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class ModelServer:
    """Asyncio TCP server wiring protocol → admission → batcher → sealer."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.quota = QuotaManager(
            self.config.quota_rate, self.config.quota_burst
        )
        self._batchers = {
            op: MicroBatcher(
                self._make_executor(op),
                max_batch=self.config.max_batch,
                window_seconds=self.config.batch_window,
            )
            for op in BATCHED_OPS
        }
        self._sealer = None  # lazy (inline path; type per scheme)
        self._pool: ProcessPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._in_flight = 0
        self._stopping = asyncio.Event()
        self._seal_counter = SEAL_COUNTER_BASE
        self._sealed_pairs: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        # Lifecycle: graceful drain (stop accepting, finish in-flight).
        self._draining = False
        self._drain_deadline: float | None = None
        # Degraded mode: circuit breaker over the worker pool.
        self._degraded = False
        self._pool_crashes = 0  # consecutive, reset on any pool success
        self._probe_at = 0.0  # monotonic time of the next recovery probe
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> int:
        """Bind and start accepting; returns the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=STREAM_LIMIT_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for batcher in self._batchers.values():
            await batcher.start()
        return self.port

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` request) fires."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        self._stopping.set()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def degraded(self) -> bool:
        return self._degraded

    async def drain(self, timeout: float | None = None) -> bool:
        """Graceful drain: stop accepting, finish in-flight, then stop.

        The sequence (docs/serving.md, "Drain sequence"): close the
        listening socket so no new connection lands here; answer new
        requests on existing connections with ``unavailable`` +
        ``retry_after`` (liveness ops still answer); wait for in-flight
        requests to finish, up to ``timeout`` (default
        ``config.drain_timeout``); then set the stop event — the normal
        shutdown path closes connections, stops batchers and tears down
        the pool, and the CLI flushes ``--metrics-out``/``--trace-out``.

        Returns ``True`` if every in-flight request finished inside the
        budget, ``False`` on a drain timeout (remaining requests are cut
        off by shutdown).  Idempotent: a second call returns at once.
        """
        if self._draining:
            await self._stopping.wait()
            return self._in_flight == 0
        self._draining = True
        loop = asyncio.get_running_loop()
        budget = self.config.drain_timeout if timeout is None else timeout
        self._drain_deadline = loop.time() + budget
        get_metrics().count("serve.drain.started")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._in_flight > 0 and loop.time() < self._drain_deadline:
            await asyncio.sleep(0.02)
        drained = self._in_flight == 0
        get_metrics().count(
            "serve.drain.completed" if drained else "serve.drain.timeout"
        )
        self._stopping.set()
        return drained

    def _retry_after_hint(self) -> float:
        """How long a drained-away client should wait before retrying
        (against a replacement instance — this one is going away)."""
        if self._drain_deadline is None:
            return 1.0
        try:
            remaining = self._drain_deadline - asyncio.get_running_loop().time()
        except RuntimeError:  # pragma: no cover - callers are async
            remaining = 0.0
        return round(max(0.05, remaining), 3)

    async def __aenter__(self) -> "ModelServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._stopping.set()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing lingering connections sends EOF to their read loops, so
        # handler tasks finish (flushing buffered responses) instead of
        # being cancelled mid-readline at event-loop teardown.
        for writer in list(self._writers):
            writer.close()
        for batcher in self._batchers.values():
            await batcher.stop()
        self._teardown_pool(restart=False)

    # -- execution backends ---------------------------------------------
    def _inline_sealer(self):
        if self._sealer is None:
            self._sealer = self.config.make_sealer()
        return self._sealer

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool

    def _teardown_pool(self, *, restart: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # A hung or dead worker cannot be joined: kill outright, as
            # run_hardened does on timeout (docs/fault-model.md §2).
            for process in list(getattr(pool, "_processes", {}).values()):
                process.kill()
            pool.shutdown(wait=False, cancel_futures=True)
            if restart:
                get_metrics().count("serve.pool_restarts")

    def _spec(self, op: str, items: Sequence[_WorkItem]) -> dict:
        spec: dict = {
            "op": op,
            "key": self.config.key,
            "scheme": self.config.scheme,
            "tag_bytes": self.config.resolved_tag_bytes(),
            "line_bytes": self.config.line_bytes,
            "backend": self.config.backend,
            "requests": len(items),
            "addresses": [a for item in items for a in item.addresses],
            "counters": [c for item in items for c in item.counters],
            "lines": [line for item in items for line in item.lines],
            "chaos": [
                (item.request.id, f"serve:{item.request.tenant}")
                for item in items
            ],
        }
        if op in ("unseal", "verify"):
            spec["tags"] = [tag for item in items for tag in item.tags]
        return spec

    # -- degraded-mode circuit breaker ----------------------------------
    def _pool_allowed(self) -> bool:
        """Should this batch go to the worker pool right now?

        ``False`` with ``workers == 0`` (no pool configured) or while the
        circuit is open — except that once ``degraded_recovery`` seconds
        have passed since the last pool failure, one batch is let through
        as a *recovery probe*: if it succeeds the circuit closes, if it
        crashes the probe timer rearms and serial fallback continues.
        """
        if self.config.workers <= 0:
            return False
        if not self._degraded:
            return True
        if time.monotonic() >= self._probe_at:
            get_metrics().count("serve.degraded.probes")
            return True
        return False

    def _note_pool_crash(self) -> None:
        self._pool_crashes += 1
        if self._degraded:
            # A recovery probe crashed: stay degraded, back off again.
            self._probe_at = time.monotonic() + self.config.degraded_recovery
            return
        if self._pool_crashes >= self.config.degraded_threshold:
            self._degraded = True
            self._probe_at = time.monotonic() + self.config.degraded_recovery
            get_metrics().count("serve.degraded.entered")

    def _note_pool_success(self) -> None:
        self._pool_crashes = 0
        if self._degraded:
            self._degraded = False
            get_metrics().count("serve.degraded.recovered")

    async def _dispatch_spec(self, spec: dict) -> dict:
        """Run one flattened batch on the configured backend, hardened."""
        loop = asyncio.get_running_loop()
        timeout = self.config.request_timeout
        if self._pool_allowed():
            pool = self._ensure_pool()
            future = loop.run_in_executor(pool, _pool_run_batch, spec)
            try:
                result, metrics, spans = await asyncio.wait_for(future, timeout)
            except (asyncio.TimeoutError, TimeoutError):
                self._teardown_pool(restart=True)
                raise _OpError(
                    ErrorCode.TIMEOUT,
                    f"batch exceeded the {timeout:g}s request budget",
                ) from None
            except BrokenProcessPool:
                self._teardown_pool(restart=True)
                get_metrics().count("serve.worker_crashes")
                self._note_pool_crash()
                raise _OpError(
                    ErrorCode.CRASHED, "worker process died mid-batch"
                ) from None
            self._note_pool_success()
            get_metrics().merge(metrics)
            if spans:
                tracer = get_tracer()
                # Re-root the worker's serve.batch tree into this trace.
                tracer.adopt(spans, parent=None)
            return result
        if self.config.workers > 0:
            # Degraded fallback: serial in-process execution — correct but
            # slower and unisolated.  Worker-boundary chaos probes are
            # stripped: they model *worker* faults, and firing them here
            # would sabotage the very process the fallback keeps alive.
            get_metrics().count("serve.degraded.batches")
            get_metrics().count("serve.degraded.requests", spec.get("requests", 1))
            spec = dict(spec, chaos=())
        future = loop.run_in_executor(None, _run_batch_spec, spec)
        try:
            return await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, TimeoutError):
            # Inline threads cannot be killed; the response is released
            # but the thread leaks until it finishes (use workers > 0 for
            # real isolation — docs/serving.md "Failure modes").
            raise _OpError(
                ErrorCode.TIMEOUT,
                f"batch exceeded the {timeout:g}s request budget",
            ) from None

    def _make_executor(self, op: str):
        async def execute(items: Sequence[_WorkItem]) -> list[object]:
            result = await self._dispatch_spec(self._spec(op, items))
            return self._unflatten(op, items, result)

        return execute

    @staticmethod
    def _unflatten(
        op: str, items: Sequence[_WorkItem], result: dict
    ) -> list[object]:
        """Slice the flattened batch result back into per-request results.

        Returns wire ``result`` dicts, or :class:`_OpError` instances for
        requests that individually failed (tag mismatch on unseal).
        """
        metrics = get_metrics()
        out: list[object] = []
        offset = 0
        for item in items:
            span = slice(offset, offset + item.n_lines)
            offset += item.n_lines
            if op == "seal":
                ciphertexts = result["ciphertexts"][span]
                tags = result["tags"][span]
                metrics.count("serve.lines.sealed", item.n_lines)
                out.append(
                    {
                        "ciphertext": to_b64(b"".join(ciphertexts)),
                        "tags": [to_b64(tag) for tag in tags],
                        "base_address": item.addresses[0],
                        "counter": item.counters[0],
                        "length": item.length,
                        "line_bytes": len(item.lines[0]),
                        "lines": item.n_lines,
                    }
                )
            elif op == "unseal":
                verdicts = result["verdicts"][span]
                metrics.count("serve.lines.unsealed", item.n_lines)
                bad = [i for i, ok in enumerate(verdicts) if not ok]
                if bad:
                    metrics.count("serve.verify_failures")
                    out.append(
                        _OpError(
                            ErrorCode.VERIFY_FAILED,
                            f"verification failed on line(s) "
                            f"{', '.join(map(str, bad))}",
                            detail={"lines": bad},
                        )
                    )
                else:
                    payload = b"".join(result["plaintexts"][span])[: item.length]
                    out.append({"payload": to_b64(payload), "length": item.length})
            else:  # verify
                verdicts = [bool(ok) for ok in result["verdicts"][span]]
                metrics.count("serve.lines.verified", item.n_lines)
                if not all(verdicts):
                    metrics.count("serve.verify_failures")
                out.append(
                    {
                        "all_ok": all(verdicts),
                        "line_ok": verdicts,
                        "lines": item.n_lines,
                    }
                )
        return out

    # -- direct (non-batched) ops ---------------------------------------
    async def _op_plan(self, request: Request) -> dict:
        from ..nn.models import MODEL_BUILDERS, build_model

        params = request.params
        model_name = params.get("model", "mlp")
        if model_name not in MODEL_BUILDERS:
            raise ProtocolError(
                f"unknown model {model_name!r}; choose from "
                f"{', '.join(sorted(MODEL_BUILDERS))}"
            )
        ratio = params.get("ratio", 0.5)
        if not isinstance(ratio, (int, float)) or not 0 < float(ratio) <= 1:
            raise ProtocolError("'ratio' must be a number in (0, 1]")
        width_scale = params.get("width_scale", 0.25)
        if not isinstance(width_scale, (int, float)) or not 0 < float(width_scale) <= 1:
            raise ProtocolError("'width_scale' must be a number in (0, 1]")

        def build() -> dict:
            kwargs = {} if width_scale == 1.0 else {"width_scale": float(width_scale)}
            model = build_model(model_name, **kwargs)
            plan = ModelEncryptionPlan.build(model, float(ratio))
            return {
                "model": plan.model_name,
                "ratio": float(ratio),
                "realized_ratio": plan.realized_ratio,
                "layers": [
                    {
                        "name": layer.name,
                        "kind": layer.kind,
                        "rows": layer.n_rows,
                        "encrypted_rows": int(layer.row_mask.sum()),
                        "boundary": bool(layer.fully_encrypted),
                    }
                    for layer in plan.layers
                ],
            }

        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(None, build)
        try:
            return await asyncio.wait_for(future, self.config.request_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            raise _OpError(
                ErrorCode.TIMEOUT,
                f"plan exceeded the {self.config.request_timeout:g}s budget",
            ) from None

    def _op_stats(self) -> dict:
        snapshot = get_metrics().snapshot()
        counters = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith(("serve.", "crypto."))
        }
        timers = {
            name: {
                key: stat[key]
                for key in (
                    "count",
                    "mean_seconds",
                    "p50_seconds",
                    "p95_seconds",
                    "p99_seconds",
                )
            }
            for name, stat in snapshot["timers"].items()
            if name.startswith("serve.")
        }
        derived = {
            name: value
            for name, value in snapshot["derived"].items()
            if name.startswith("serve_")
        }
        return {
            "protocol": PROTOCOL_SCHEMA,
            "in_flight": self._in_flight,
            "tenants": self.quota.tenants(),
            "counters": counters,
            "timers": timers,
            "derived": derived,
        }

    def _op_health(self) -> dict:
        """Liveness/readiness snapshot — quota- and admission-exempt.

        ``status`` is the one-word summary supervisors branch on:
        ``ok`` | ``degraded`` (pool circuit open, serial fallback active)
        | ``draining`` (no new work admitted; this instance is going
        away).  The rest is the queue/worker detail behind it.
        """
        counters = get_metrics().counters
        if self._draining:
            status = "draining"
        elif self._degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "protocol": PROTOCOL_SCHEMA,
            "draining": self._draining,
            "degraded": self._degraded,
            "in_flight": self._in_flight,
            "queue_limit": self.config.queue_limit,
            "queued": {
                op: batcher.pending()
                for op, batcher in self._batchers.items()
            },
            "workers": {
                "configured": self.config.workers,
                "pool_live": self._pool is not None,
                "crashes": counters.get("serve.worker_crashes", 0),
                "restarts": counters.get("serve.pool_restarts", 0),
            },
        }

    # -- nonce hygiene ---------------------------------------------------
    def _next_seal_counter(self) -> int:
        self._seal_counter += 1
        return self._seal_counter & 0xFFFFFFFF

    def _note_seal_pair(
        self, base_address: int, counter: int, lines: Sequence[bytes]
    ) -> None:
        """Track recent seal (base_address, counter) pairs; count reuse.

        Request-granularity heuristic: two seals sharing a pair reuse
        the CTR pad line-for-line (overlapping ranges under the same
        counter do too, which this does not catch).  A payload digest is
        kept per pair so *byte-identical* repeats — the retrying client
        replaying a pinned-counter ``seal`` whose response was lost —
        count as benign ``serve.seal.replays`` (same pad, same plaintext,
        same ciphertext: nothing leaks), while a repeat with *different*
        bytes counts ``serve.seal.pad_reuse`` — the XOR-of-plaintexts
        leak, the signal to watch (docs/serving.md).
        """
        pair = (base_address, counter)
        digest = hashlib.sha256(b"".join(lines)).digest()[:16]
        known = self._sealed_pairs.get(pair)
        if known is not None:
            self._sealed_pairs.move_to_end(pair)
            get_metrics().count(
                "serve.seal.replays" if known == digest
                else "serve.seal.pad_reuse"
            )
            return
        self._sealed_pairs[pair] = digest
        if len(self._sealed_pairs) > self.config.pad_reuse_tracked:
            self._sealed_pairs.popitem(last=False)

    # -- shutdown gating -------------------------------------------------
    def _shutdown_denial(self, request: Request) -> Response | None:
        """None if this shutdown request may proceed, else the refusal.

        With a configured token the caller must present it; without one,
        shutdown is honoured only on loopback binds unless
        ``allow_remote_shutdown`` opts in — any socket peer can other-
        wise stop the service (docs/serving.md "Security caveats").
        """
        token = self.config.shutdown_token
        if token is not None:
            if request.params.get("token") == token:
                return None
            return request.failure(
                ErrorCode.FORBIDDEN,
                "shutdown requires the configured shutdown token",
            )
        host = self.config.host
        if host in ("localhost", "::1") or host.startswith("127."):
            return None
        if self.config.allow_remote_shutdown:
            return None
        return request.failure(
            ErrorCode.FORBIDDEN,
            "remote shutdown is disabled on a non-loopback bind; start "
            "with --allow-remote-shutdown or --shutdown-token",
        )

    # -- per-request pipeline -------------------------------------------
    async def handle_request(self, request: Request) -> Response:
        """Admission → execution → response for one parsed request.

        Public so unit tests (and in-process benches) can drive the full
        pipeline without sockets.
        """
        metrics = get_metrics()
        metrics.count("serve.requests.total")
        metrics.count(f"serve.op.{request.op}")

        # Liveness ops answer before every admission check — quota,
        # backpressure, drain — so monitors keep seeing the truth while
        # the server is overloaded or going away (docs/serving.md).
        if request.op == "ping":
            return request.success({"pong": True, "protocol": PROTOCOL_SCHEMA})
        if request.op == "stats":
            return request.success(self._op_stats())
        if request.op == "health":
            return request.success(self._op_health())
        if request.op == "shutdown":
            denial = self._shutdown_denial(request)
            if denial is not None:
                metrics.count("serve.requests.rejected.shutdown")
                return denial
            self._stopping.set()
            return request.success({"stopping": True})

        # Draining: no new work; tell the client when to retry elsewhere.
        if self._draining:
            metrics.count("serve.requests.rejected.draining")
            return request.failure(
                ErrorCode.UNAVAILABLE,
                "server is draining; retry against a live instance",
                detail={"retry_after": self._retry_after_hint()},
            )

        # Backpressure: reject before any work is queued.
        if self._in_flight >= self.config.queue_limit:
            metrics.count("serve.requests.rejected.backpressure")
            return request.failure(
                ErrorCode.OVERLOADED,
                f"{self._in_flight} requests in flight "
                f"(limit {self.config.queue_limit}); retry with backoff",
            )

        # A seal without an explicit counter gets a server-assigned one:
        # the client default used to be a constant, which made every
        # defaulted seal reuse the same CTR pad (XOR of two ciphertexts
        # = XOR of the plaintexts).  Fresh counters keep pads unique.
        if request.op == "seal" and request.params.get("counter") is None:
            request.params["counter"] = self._next_seal_counter()

        # Parse before charging quota so cost reflects real work.
        try:
            item = (
                _parse_work_item(request, self.config.line_bytes)
                if request.op in BATCHED_OPS
                else None
            )
        except ProtocolError as error:
            metrics.count("serve.requests.bad")
            return request.failure(ErrorCode.BAD_REQUEST, str(error))
        if item is not None and request.op == "seal":
            self._note_seal_pair(item.addresses[0], item.counters[0], item.lines)

        cost = float(item.n_lines) if item is not None else 1.0
        if not self.quota.try_acquire(request.tenant, cost):
            metrics.count("serve.requests.rejected.quota")
            return request.failure(
                ErrorCode.QUOTA_EXHAUSTED,
                f"tenant {request.tenant!r} is out of quota "
                f"({cost:g} line-token(s) needed)",
            )

        self._in_flight += 1
        wall_start = time.time()
        start = time.perf_counter()
        status = "ok"
        try:
            if item is not None:
                result = await self._batchers[request.op].submit(item)
                if isinstance(result, _OpError):
                    raise result
                response = request.success(result)
            elif request.op == "plan":
                response = request.success(await self._op_plan(request))
            else:  # pragma: no cover - decode_request rejects unknown ops
                raise ProtocolError(f"unknown op {request.op!r}")
            metrics.count("serve.requests.ok")
        except _OpError as error:
            status = error.code.value
            if error.code is ErrorCode.TIMEOUT:
                metrics.count("serve.requests.timeout")
            else:
                metrics.count("serve.requests.failed")
            response = request.failure(error.code, str(error), error.detail)
        except ProtocolError as error:
            status = ErrorCode.BAD_REQUEST.value
            metrics.count("serve.requests.bad")
            response = request.failure(ErrorCode.BAD_REQUEST, str(error))
        except Exception as error:  # internal: never drop the response
            status = ErrorCode.INTERNAL.value
            metrics.count("serve.requests.failed")
            response = request.failure(ErrorCode.INTERNAL, repr(error))
        finally:
            self._in_flight -= 1
            duration = time.perf_counter() - start
            metrics.observe("serve.request", duration)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "serve.request",
                    wall_start,
                    duration,
                    attrs={
                        "op": request.op,
                        "tenant": request.tenant,
                        "status": status,
                        "lines": item.n_lines if item is not None else 0,
                    },
                    parent=None,
                )
        return response

    # -- connection plumbing --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = get_metrics()
        metrics.count("serve.connections")
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(response: Response) -> None:
            async with write_lock:
                writer.write(encode_response(response).encode() + b"\n")
                await writer.drain()

        async def serve_line(line: bytes) -> None:
            try:
                request = decode_request(line)
            except ProtocolError as error:
                metrics.count("serve.requests.bad")
                await respond(
                    Response(
                        id="?",
                        ok=False,
                        code=error.code,
                        message=str(error),
                    )
                )
                return
            response = await self.handle_request(request)
            # Service-layer chaos: sabotage the *response* I/O after the
            # work succeeded — the faults a client-side retry must absorb.
            action = chaos_io_action(request.id, f"serve:{request.tenant}")
            if action is not None:
                kind, seconds = action
                if kind == "drop":
                    # Write a truncated response, then hard-close: the
                    # client sees a partial line and a dead socket.
                    metrics.count("serve.chaos.connection_drops")
                    async with write_lock:
                        wire = encode_response(response).encode()
                        writer.write(wire[: max(1, len(wire) // 4)])
                        with contextlib.suppress(
                            ConnectionResetError, BrokenPipeError, OSError
                        ):
                            await writer.drain()
                        writer.transport.abort()
                    return
                if kind == "stall":
                    metrics.count("serve.chaos.write_stalls")
                    await asyncio.sleep(seconds)
            await respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # readline overran STREAM_LIMIT_BYTES: the line is
                    # over the protocol bound anyway, so answer with
                    # bad_request — but the partial line was discarded,
                    # framing is lost, and the connection must close.
                    metrics.count("serve.requests.bad")
                    try:
                        await respond(
                            Response(
                                id="?",
                                ok=False,
                                code=ErrorCode.BAD_REQUEST,
                                message=(
                                    f"request line exceeds {MAX_LINE_BYTES} "
                                    "bytes; chunk payloads client-side "
                                    "(closing connection)"
                                ),
                            )
                        )
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(serve_line(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            self._writers.discard(writer)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def _print_banner(message: str) -> None:
    # Flushed so supervisors reading the pipe see the bound port at once.
    print(message, flush=True)


def run_server(config: ServeConfig, *, banner=_print_banner) -> int:
    """Blocking entry point for the CLI: serve until shutdown or signal.

    SIGTERM and SIGINT trigger a *graceful drain* (docs/serving.md,
    "Drain sequence"): stop accepting, finish in-flight work up to
    ``config.drain_timeout``, then stop — returning normally so the CLI
    flushes ``--metrics-out`` / ``--trace-out`` on the way down.  A
    second signal skips the drain and stops immediately.
    """

    async def main() -> None:
        server = ModelServer(config)
        loop = asyncio.get_running_loop()
        drains: set[asyncio.Task] = set()

        def request_drain(signame: str) -> None:
            if server.draining:
                banner(f"repro-serve: second {signame}, stopping now")
                task = loop.create_task(server.stop())
            else:
                banner(
                    f"repro-serve: {signame} received, draining "
                    f"(timeout {config.drain_timeout:g}s)"
                )
                task = loop.create_task(server.drain())
            drains.add(task)
            task.add_done_callback(drains.discard)

        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, request_drain, sig.name)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-Unix loop / nested loop: KeyboardInterrupt path

        port = await server.start()
        banner(
            f"repro-serve listening on {config.host}:{port} "
            f"({PROTOCOL_SCHEMA}, workers={config.workers}, "
            f"max_batch={config.max_batch})",
        )
        try:
            await server.serve_until_stopped()
            if drains:
                await asyncio.gather(*drains, return_exceptions=True)
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            banner("repro-serve stopped")

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
