"""Per-tenant token-bucket quotas for the serving front end.

A classic token bucket per tenant: capacity ``burst`` tokens, refilled at
``rate`` tokens/second, with one token charged per sealed/unsealed/
verified *line* (so a 64-line payload costs 64× a 1-line ping-sized
request — quota tracks actual crypto work, not request count).  Buckets
never block: an empty bucket rejects immediately and the server turns
that into a 429-style ``quota_exhausted`` response, observable under the
``serve.requests.rejected.quota`` counter.

The clock is injectable so the unit tests (and any simulation harness)
can drive refill deterministically.

>>> bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: 0.0)
>>> bucket.try_acquire(2)
True
>>> bucket.try_acquire(1)
False
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket", "QuotaManager"]


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        with self._lock:
            self._refill()
            if self._tokens + 1e-9 < tokens:
                return False
            self._tokens -= tokens
            return True

    def available(self) -> float:
        """Current token balance (after refill) — monitoring only."""
        with self._lock:
            self._refill()
            return self._tokens


class QuotaManager:
    """Lazy per-tenant buckets sharing one (rate, burst) policy.

    ``rate <= 0`` disables quota entirely — every acquisition succeeds and
    no buckets are created — which is the server default: quotas are
    opt-in via ``--quota-rate``.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else max(rate, 1.0)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            return bucket

    def try_acquire(self, tenant: str, tokens: float = 1.0) -> bool:
        """Charge ``tenant`` ``tokens``; True when admitted."""
        if not self.enabled:
            return True
        return self.bucket(tenant).try_acquire(tokens)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._buckets)
