"""Clients for the ``repro.serve/v1`` protocol.

:class:`ServeClient` is the native asyncio client: one TCP connection,
requests multiplexed by id, responses demultiplexed by a background
reader task — so a single client can keep many requests in flight (which
is exactly what the load-generating bench does).  :class:`BlockingServeClient`
wraps it for synchronous callers (tests, notebooks) by running a private
event loop on a daemon thread.

Convenience methods decode base64 payloads back to ``bytes`` and raise
:class:`ServeError` (carrying the wire ``code``/``status``) on failure
responses, so callers never touch raw protocol dicts unless they want to
(:meth:`ServeClient.request` returns them verbatim).

>>> # against a running server (see docs/serving.md):
>>> # async with await ServeClient.connect("127.0.0.1", 7316) as client:
>>> #     sealed = await client.seal(b"weights", tenant="acme")
>>> #     assert await client.unseal(**sealed) == b"weights"
"""

from __future__ import annotations

import asyncio
import threading
from typing import Sequence

from .protocol import (
    STREAM_LIMIT_BYTES,
    ErrorCode,
    ProtocolError,
    Response,
    decode_response,
    from_b64,
    to_b64,
)

__all__ = ["ServeError", "ServeClient", "BlockingServeClient"]


class ServeError(RuntimeError):
    """A failure response from the server (or a dead connection)."""

    def __init__(
        self,
        message: str,
        code: ErrorCode = ErrorCode.INTERNAL,
        detail: dict | None = None,
    ) -> None:
        self.code = code
        self.status = code.status
        self.detail = detail
        super().__init__(message)

    @classmethod
    def from_response(cls, response: Response) -> "ServeError":
        return cls(
            response.message or response.code.value if response.code else "error",
            response.code or ErrorCode.INTERNAL,
            response.detail,
        )


class ServeClient:
    """Asyncio client with id-multiplexed in-flight requests."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[str, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        # Raise the 64 KiB default StreamReader limit to the protocol's
        # line bound, or large (legal) responses would kill the reader.
        reader, writer = await asyncio.open_connection(
            host, port, limit=STREAM_LIMIT_BYTES
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(ServeError("connection closed"))

    # ------------------------------------------------------------------
    def _fail_pending(self, error: ServeError) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_response(line)
                except ProtocolError:
                    continue  # tolerate garbage lines; ids still match up
                future = self._pending.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # A response line overran the stream limit; framing is lost,
            # so fail everything in flight rather than dying silently.
            pass
        finally:
            self._fail_pending(ServeError("server closed the connection"))

    async def request(
        self, op: str, params: dict | None = None, *, tenant: str = "default"
    ) -> dict:
        """Send one request, await its response; raise on failure."""
        import json

        self._next_id += 1
        request_id = f"c{self._next_id}"
        line = json.dumps(
            {
                "id": request_id,
                "op": op,
                "tenant": tenant,
                "params": params or {},
            },
            separators=(",", ":"),
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(line.encode() + b"\n")
            await self._writer.drain()
        response: Response = await future
        if not response.ok:
            raise ServeError.from_response(response)
        return response.result or {}

    # -- convenience wrappers ------------------------------------------
    async def seal(
        self,
        payload: bytes,
        *,
        base_address: int = 0,
        counter: int | None = None,
        tenant: str = "default",
    ) -> dict:
        """Seal ``payload``; returns decoded kwargs for :meth:`unseal`.

        When ``counter`` is omitted the *server* assigns a fresh one
        (returned in the result) so repeated seals never reuse a CTR
        pad; pass an explicit counter only to pin a reproducible
        keystream, e.g. to mirror a simulator memory image.
        """
        params: dict = {
            "payload": to_b64(payload),
            "base_address": base_address,
        }
        if counter is not None:
            params["counter"] = counter
        result = await self.request("seal", params, tenant=tenant)
        return {
            "ciphertext": from_b64(result["ciphertext"], "ciphertext"),
            "tags": [from_b64(tag, "tag") for tag in result["tags"]],
            "base_address": result["base_address"],
            "counter": result["counter"],
            "length": result["length"],
        }

    async def unseal(
        self,
        ciphertext: bytes,
        tags: Sequence[bytes],
        *,
        base_address: int = 0,
        counter: int = 1,
        length: int | None = None,
        tenant: str = "default",
    ) -> bytes:
        result = await self.request(
            "unseal",
            {
                "ciphertext": to_b64(ciphertext),
                "tags": [to_b64(tag) for tag in tags],
                "base_address": base_address,
                "counter": counter,
                "length": length if length is not None else len(ciphertext),
            },
            tenant=tenant,
        )
        return from_b64(result["payload"], "payload")

    async def verify(
        self,
        ciphertext: bytes,
        tags: Sequence[bytes],
        *,
        base_address: int = 0,
        counter: int = 1,
        tenant: str = "default",
    ) -> dict:
        return await self.request(
            "verify",
            {
                "ciphertext": to_b64(ciphertext),
                "tags": [to_b64(tag) for tag in tags],
                "base_address": base_address,
                "counter": counter,
            },
            tenant=tenant,
        )

    async def plan(
        self,
        model: str = "mlp",
        ratio: float = 0.5,
        *,
        width_scale: float = 0.25,
        tenant: str = "default",
    ) -> dict:
        return await self.request(
            "plan",
            {"model": model, "ratio": ratio, "width_scale": width_scale},
            tenant=tenant,
        )

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def shutdown(self, *, token: str | None = None) -> dict:
        params = {"token": token} if token is not None else {}
        return await self.request("shutdown", params)


class BlockingServeClient:
    """Synchronous facade: private event loop on a daemon thread.

    Mirrors every :class:`ServeClient` method with a blocking signature;
    usable as a context manager.  Intended for tests and interactive use —
    high-concurrency callers should drive :class:`ServeClient` directly.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serve-client", daemon=True
        )
        self._thread.start()
        self._client: ServeClient = self._call(ServeClient.connect(host, port))

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(
            self.timeout
        )

    def __enter__(self) -> "BlockingServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(self.timeout)
            self._loop.close()

    # -- mirrored methods ----------------------------------------------
    def request(self, op: str, params: dict | None = None, *, tenant: str = "default") -> dict:
        return self._call(self._client.request(op, params, tenant=tenant))

    def seal(self, payload: bytes, **kwargs) -> dict:
        return self._call(self._client.seal(payload, **kwargs))

    def unseal(self, ciphertext: bytes, tags: Sequence[bytes], **kwargs) -> bytes:
        return self._call(self._client.unseal(ciphertext, tags, **kwargs))

    def verify(self, ciphertext: bytes, tags: Sequence[bytes], **kwargs) -> dict:
        return self._call(self._client.verify(ciphertext, tags, **kwargs))

    def plan(self, model: str = "mlp", ratio: float = 0.5, **kwargs) -> dict:
        return self._call(self._client.plan(model, ratio, **kwargs))

    def ping(self) -> dict:
        return self._call(self._client.ping())

    def stats(self) -> dict:
        return self._call(self._client.stats())

    def shutdown(self, *, token: str | None = None) -> dict:
        return self._call(self._client.shutdown(token=token))
