"""Clients for the ``repro.serve/v1`` protocol — resilient by default.

:class:`ServeClient` is the native asyncio client: one TCP connection,
requests multiplexed by id, responses demultiplexed by a background
reader task — so a single client can keep many requests in flight (which
is exactly what the load-generating benches do).  On top of that sits
the resilience layer this module exists for:

* **automatic reconnect** — the client remembers its address; a dropped
  connection fails every in-flight future promptly with a typed
  ``connection_lost`` :class:`ServeError` and the next request (or retry)
  dials again (``serve.client.reconnects``);
* **bounded retry with deterministic jitter** — :class:`RetryPolicy`
  replays requests that failed with a code in
  :data:`~repro.serve.protocol.RETRYABLE_CODES`, backing off
  exponentially with jitter derived from a hash of the request token (so
  a retry schedule is reproducible, yet two clients never thunder in
  lockstep) and honouring a server-supplied ``retry_after`` hint;
* **nonce-safe replay** — ``verify``/``plan``/``stats``/``ping``/
  ``health`` retry freely and ``unseal`` always carries its counter, but
  ``seal`` retries *only* when the caller pinned ``(base_address,
  counter)``: the replay is then byte-identical (same CTR pad, same
  plaintext, same ciphertext).  A defaulted seal must NOT be replayed —
  each attempt would burn a fresh server-assigned counter and the client
  could not know which response, if any, was sealed (docs/serving.md,
  "Resilience").

Everything is observable as ``serve.client.*`` counters and — when
tracing is on — one ``serve.client.request`` span per logical request
with its attempt count.  :class:`BlockingServeClient` wraps it all for
synchronous callers (tests, notebooks) via a private event loop on a
daemon thread.

Convenience methods decode base64 payloads back to ``bytes`` and raise
:class:`ServeError` (carrying the wire ``code``/``status``) on failure
responses, so callers never touch raw protocol dicts unless they want to
(:meth:`ServeClient.request` returns them verbatim).

>>> # against a running server (see docs/serving.md):
>>> # async with await ServeClient.connect("127.0.0.1", 7316) as client:
>>> #     sealed = await client.seal(b"weights", tenant="acme")
>>> #     assert await client.unseal(**sealed) == b"weights"
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .protocol import (
    RETRYABLE_CODES,
    STREAM_LIMIT_BYTES,
    ErrorCode,
    ProtocolError,
    Response,
    decode_response,
    from_b64,
    to_b64,
)

__all__ = ["RetryPolicy", "ServeError", "ServeClient", "BlockingServeClient"]

#: Ops the client may always replay: they are read-only or idempotent at
#: the protocol level.  ``seal``/``unseal`` are decided per-request (see
#: :meth:`ServeClient._retryable`); ``shutdown`` is never replayed.
_ALWAYS_RETRYABLE_OPS = frozenset({"verify", "plan", "stats", "ping", "health"})


class ServeError(RuntimeError):
    """A failure response from the server (or a dead connection)."""

    def __init__(
        self,
        message: str,
        code: ErrorCode = ErrorCode.INTERNAL,
        detail: dict | None = None,
    ) -> None:
        self.code = code
        self.status = code.status
        self.detail = detail
        super().__init__(message)

    @classmethod
    def from_response(cls, response: Response) -> "ServeError":
        return cls(
            response.message or response.code.value if response.code else "error",
            response.code or ErrorCode.INTERNAL,
            response.detail,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry schedule (the serve-layer sibling of
    :class:`repro.faults.runner.RetryPolicy`, which governs pool units).

    ``max_attempts`` bounds the total tries (1 = no retry).  The pause
    before retry ``n`` (0-based) is ``base_delay * 2**n`` capped at
    ``max_delay``, shrunk by up to ``jitter`` (a fraction in [0, 1])
    using a *deterministic* jitter: a hash of ``(token, attempt)``, so a
    given request's schedule is reproducible in tests while distinct
    requests still decorrelate.  A server ``retry_after`` hint (sent
    with ``unavailable`` during drain) raises the pause to at least that
    long, capped at ``max_delay``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def delay(
        self, attempt: int, token: str = "", retry_after: float | None = None
    ) -> float:
        """Seconds to pause before retry number ``attempt`` (0-based)."""
        backoff = min(self.max_delay, self.base_delay * (2.0**attempt))
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        pause = backoff * (1.0 - self.jitter * fraction)
        if retry_after is not None:
            pause = max(pause, min(float(retry_after), self.max_delay))
        return pause


class ServeClient:
    """Asyncio client: id-multiplexed requests, reconnect, bounded retry."""

    def __init__(
        self, host: str, port: int, *, retry: RetryPolicy | None = None
    ) -> None:
        self._host = host
        self._port = port
        self.retry = retry or RetryPolicy()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self._closed = False
        self._ever_connected = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, retry: RetryPolicy | None = None
    ) -> "ServeClient":
        """Open a connected client (fails fast if the server is down)."""
        client = cls(host, port, retry=retry)
        await client._ensure_connected()
        return client

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def close(self) -> None:
        """Tear down the connection; idempotent, never raises on re-call."""
        if self._closed:
            return
        self._closed = True
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._fail_pending(
            ServeError("client closed", ErrorCode.CONNECTION_LOST)
        )

    # -- connection management ------------------------------------------
    async def _ensure_connected(self) -> None:
        if self._closed:
            raise ServeError("client is closed", ErrorCode.CONNECTION_LOST)
        if self.connected:
            return
        async with self._connect_lock:
            if self._closed:
                raise ServeError("client is closed", ErrorCode.CONNECTION_LOST)
            if self.connected:  # a concurrent caller won the race
                return
            try:
                # Raise the 64 KiB default StreamReader limit to the
                # protocol's line bound, or large (legal) responses would
                # kill the reader.
                reader, writer = await asyncio.open_connection(
                    self._host, self._port, limit=STREAM_LIMIT_BYTES
                )
            except OSError as error:
                get_metrics().count("serve.client.connect_failures")
                raise ServeError(
                    f"cannot connect to {self._host}:{self._port}: {error}",
                    ErrorCode.CONNECTION_LOST,
                ) from None
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.create_task(
                self._read_loop(reader), name="serve-client-read"
            )
            if self._ever_connected:
                get_metrics().count("serve.client.reconnects")
            self._ever_connected = True

    def _fail_pending(self, error: ServeError) -> None:
        """Promptly fail every in-flight future — no awaiter may hang on
        a connection that no longer exists."""
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        error = ServeError(
            "server closed the connection", ErrorCode.CONNECTION_LOST
        )
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = decode_response(line)
                except ProtocolError:
                    continue  # tolerate garbage lines; ids still match up
                future = self._pending.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
            pass
        except ValueError:
            # A response line overran the stream limit; framing is lost,
            # so the connection is unusable from here on.
            error = ServeError(
                "response overran the stream limit; framing lost",
                ErrorCode.CONNECTION_LOST,
            )
        finally:
            # Only the *current* reader may tear down state: a stale task
            # from a replaced connection must not fail the new one's
            # futures (close()/reconnect null the attribute first).
            if self._reader_task is asyncio.current_task():
                self._reader_task = None
                writer, self._writer = self._writer, None
                self._reader = None
                if writer is not None:
                    writer.close()
                get_metrics().count("serve.client.connection_lost")
                self._fail_pending(error)

    # -- request path ----------------------------------------------------
    @staticmethod
    def _retryable(op: str, params: dict) -> bool:
        """May this request be transparently replayed?

        ``unseal`` always carries its counter, so a replay decrypts the
        same bytes.  ``seal`` is replayable only with a caller-pinned
        counter: the server then computes the byte-identical ciphertext
        (counted as a benign ``serve.seal.replays``); a defaulted seal
        would burn a fresh counter per attempt, so it is surfaced to the
        caller instead.
        """
        if op in _ALWAYS_RETRYABLE_OPS:
            return True
        if op == "unseal":
            return True
        if op == "seal":
            return params.get("counter") is not None
        return False  # shutdown (and anything unknown)

    async def _attempt(
        self, op: str, params: dict, tenant: str, request_id: str
    ) -> dict:
        await self._ensure_connected()
        line = json.dumps(
            {"id": request_id, "op": op, "tenant": tenant, "params": params},
            separators=(",", ":"),
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                writer = self._writer
                if writer is None or writer.is_closing():
                    raise ConnectionResetError("connection went away")
                writer.write(line.encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as error:
            self._pending.pop(request_id, None)
            get_metrics().count("serve.client.connection_lost")
            raise ServeError(
                f"connection lost while sending: {error}",
                ErrorCode.CONNECTION_LOST,
            ) from None
        response: Response = await future
        if not response.ok:
            raise ServeError.from_response(response)
        return response.result or {}

    async def request(
        self, op: str, params: dict | None = None, *, tenant: str = "default"
    ) -> dict:
        """Send one logical request; reconnect and retry per the policy.

        Raises :class:`ServeError` with the final failure's code once the
        policy is exhausted (``serve.client.giveups``) or immediately for
        non-retryable codes/ops.
        """
        params = dict(params or {})
        retryable = self._retryable(op, params)
        policy = self.retry
        metrics = get_metrics()
        metrics.count("serve.client.requests")
        self._next_id += 1
        token = f"c{self._next_id}"
        attempts = 0
        status = "ok"
        wall_start = time.time()
        start = time.perf_counter()
        try:
            while True:
                attempts += 1
                # Fresh wire id per attempt: a late response to a previous
                # attempt must never be matched to the retry's future.
                request_id = token if attempts == 1 else f"{token}.{attempts}"
                try:
                    return await self._attempt(op, params, tenant, request_id)
                except ServeError as error:
                    if error.code not in RETRYABLE_CODES or not retryable:
                        status = error.code.value
                        raise
                    if attempts >= policy.max_attempts:
                        metrics.count("serve.client.giveups")
                        status = error.code.value
                        raise
                    metrics.count("serve.client.retries")
                    metrics.count(f"serve.client.retries.{op}")
                    retry_after = None
                    if isinstance(error.detail, dict):
                        hint = error.detail.get("retry_after")
                        if isinstance(hint, (int, float)):
                            retry_after = float(hint)
                    await asyncio.sleep(
                        policy.delay(attempts - 1, token, retry_after)
                    )
        finally:
            duration = time.perf_counter() - start
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "serve.client.request",
                    wall_start,
                    duration,
                    attrs={
                        "op": op,
                        "tenant": tenant,
                        "status": status,
                        "attempts": attempts,
                    },
                    parent=None,
                )

    # -- convenience wrappers ------------------------------------------
    async def seal(
        self,
        payload: bytes,
        *,
        base_address: int = 0,
        counter: int | None = None,
        tenant: str = "default",
    ) -> dict:
        """Seal ``payload``; returns decoded kwargs for :meth:`unseal`.

        When ``counter`` is omitted the *server* assigns a fresh one
        (returned in the result) so repeated seals never reuse a CTR
        pad — and the request is NOT retried on connection loss, since
        each attempt would seal under a different counter.  Pass an
        explicit counter to pin a reproducible keystream (e.g. to mirror
        a simulator memory image); pinned seals retry safely because the
        replay is byte-identical.
        """
        params: dict = {
            "payload": to_b64(payload),
            "base_address": base_address,
        }
        if counter is not None:
            params["counter"] = counter
        result = await self.request("seal", params, tenant=tenant)
        return {
            "ciphertext": from_b64(result["ciphertext"], "ciphertext"),
            "tags": [from_b64(tag, "tag") for tag in result["tags"]],
            "base_address": result["base_address"],
            "counter": result["counter"],
            "length": result["length"],
        }

    async def unseal(
        self,
        ciphertext: bytes,
        tags: Sequence[bytes],
        *,
        base_address: int = 0,
        counter: int = 1,
        length: int | None = None,
        tenant: str = "default",
    ) -> bytes:
        result = await self.request(
            "unseal",
            {
                "ciphertext": to_b64(ciphertext),
                "tags": [to_b64(tag) for tag in tags],
                "base_address": base_address,
                "counter": counter,
                "length": length if length is not None else len(ciphertext),
            },
            tenant=tenant,
        )
        return from_b64(result["payload"], "payload")

    async def verify(
        self,
        ciphertext: bytes,
        tags: Sequence[bytes],
        *,
        base_address: int = 0,
        counter: int = 1,
        tenant: str = "default",
    ) -> dict:
        return await self.request(
            "verify",
            {
                "ciphertext": to_b64(ciphertext),
                "tags": [to_b64(tag) for tag in tags],
                "base_address": base_address,
                "counter": counter,
            },
            tenant=tenant,
        )

    async def plan(
        self,
        model: str = "mlp",
        ratio: float = 0.5,
        *,
        width_scale: float = 0.25,
        tenant: str = "default",
    ) -> dict:
        return await self.request(
            "plan",
            {"model": model, "ratio": ratio, "width_scale": width_scale},
            tenant=tenant,
        )

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def health(self) -> dict:
        return await self.request("health")

    async def shutdown(self, *, token: str | None = None) -> dict:
        params = {"token": token} if token is not None else {}
        return await self.request("shutdown", params)


class BlockingServeClient:
    """Synchronous facade: private event loop on a daemon thread.

    Mirrors every :class:`ServeClient` method with a blocking signature;
    usable as a context manager.  Intended for tests and interactive use —
    high-concurrency callers should drive :class:`ServeClient` directly.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serve-client", daemon=True
        )
        self._thread.start()
        self._client: ServeClient = self._call(
            ServeClient.connect(host, port, retry=retry)
        )

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(
            self.timeout
        )

    def __enter__(self) -> "BlockingServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(self.timeout)
            self._loop.close()

    # -- mirrored methods ----------------------------------------------
    def request(self, op: str, params: dict | None = None, *, tenant: str = "default") -> dict:
        return self._call(self._client.request(op, params, tenant=tenant))

    def seal(self, payload: bytes, **kwargs) -> dict:
        return self._call(self._client.seal(payload, **kwargs))

    def unseal(self, ciphertext: bytes, tags: Sequence[bytes], **kwargs) -> bytes:
        return self._call(self._client.unseal(ciphertext, tags, **kwargs))

    def verify(self, ciphertext: bytes, tags: Sequence[bytes], **kwargs) -> dict:
        return self._call(self._client.verify(ciphertext, tags, **kwargs))

    def plan(self, model: str = "mlp", ratio: float = 0.5, **kwargs) -> dict:
        return self._call(self._client.plan(model, ratio, **kwargs))

    def ping(self) -> dict:
        return self._call(self._client.ping())

    def stats(self) -> dict:
        return self._call(self._client.stats())

    def health(self) -> dict:
        return self._call(self._client.health())

    def shutdown(self, *, token: str | None = None) -> dict:
        return self._call(self._client.shutdown(token=token))
