"""Criticality-aware smart-encryption planning (the SEAL contribution).

Given a trained model and an encryption ratio ``r``, the planner decides —
per CONV/FC layer — which kernel rows to encrypt and, consequently, which
feature-map channels must be encrypted on the memory bus (Section III-A of
the paper):

1. Boundary layers (the first two CONV layers, the last CONV layer, and the
   last FC layer) are fully encrypted so the adversary cannot solve for
   weights from known model inputs/outputs (Section III-B.1).
2. Every other weight layer encrypts the ``ceil(r · n)`` kernel rows with
   the largest ℓ1-norms.
3. A kernel row is encrypted **iff** the input-feature-map channel it
   multiplies is encrypted.  This is the invariant that makes the scheme
   sound: the bus only ever carries products of two encrypted operands or
   two plaintext operands, never a mixed product (Equations 1–3).

For non-sequential graphs (ResNet residual adds, shared feature maps) the
channel mask of a tensor is the union of the masks required by all of its
consumers, and each consumer's row mask is then *upgraded* to that union —
encryption can only grow, so the invariant and the security argument are
preserved (the realised ratio may exceed ``r`` slightly; ``realized_ratio``
reports it).

The planner discovers the dataflow by running one traced forward pass
(:class:`repro.nn.layers.trace_dataflow`), so it works on any model built
from the :mod:`repro.nn` layer library without manual annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    trace_dataflow,
)
from ..nn.tensor import Tensor, no_grad
from .importance import fc_row_l1, kernel_row_l1, select_encrypted_rows

__all__ = [
    "DEFAULT_ENCRYPTION_RATIO",
    "WeightLayerPlan",
    "PoolLayerPlan",
    "AuxParamPlan",
    "LayerTraffic",
    "ModelEncryptionPlan",
    "PlanError",
]

#: The ratio the paper selects after the security analysis (Section III-B.3).
DEFAULT_ENCRYPTION_RATIO = 0.5

_CHANNEL_PRESERVING = (BatchNorm2d, ReLU, Identity, MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten)


class PlanError(ValueError):
    """Raised when a model cannot be planned or a plan fails validation."""


class _UnionFind:
    """Union-find over tensor ids for 'same channel mask' groups."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def add(self, item: int) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: int) -> int:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass
class WeightLayerPlan:
    """Encryption decision for one CONV or FC layer.

    ``row_mask[j]`` is True when kernel row ``j`` (and therefore input
    channel/group ``j``) is encrypted.  ``channel_group`` > 1 only for FC
    layers reading a flattened feature map (``H*W`` features per channel).
    """

    name: str
    kind: str  # "conv" | "fc"
    index: int  # execution order among weight layers
    n_rows: int
    importance: np.ndarray
    row_mask: np.ndarray
    fully_encrypted: bool
    channel_group: int
    in_group: int
    out_group: int
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    weight_shape: tuple[int, ...]
    element_bytes: int = 4

    @property
    def encrypted_row_fraction(self) -> float:
        return float(self.row_mask.mean()) if self.n_rows else 0.0

    @property
    def weight_bytes(self) -> int:
        return int(np.prod(self.weight_shape)) * self.element_bytes

    @property
    def encrypted_weight_bytes(self) -> int:
        # All rows have equal byte size, so the fraction transfers exactly.
        return int(round(self.weight_bytes * self.encrypted_row_fraction))

    @property
    def macs(self) -> int:
        if self.kind == "conv":
            out_c, in_c, k, _ = self.weight_shape
            _, _, h_out, w_out = self.out_shape
            return self.out_shape[0] * out_c * h_out * w_out * in_c * k * k
        out_f, in_f = self.weight_shape
        return self.out_shape[0] * out_f * in_f

    def weight_element_mask(self) -> np.ndarray:
        """Boolean array shaped like the weight; True = encrypted.

        For CONV this broadcasts the row mask over ``weight[:, j, :, :]``;
        for FC each input channel group expands to its features.
        """
        if self.kind == "conv":
            mask = np.zeros(self.weight_shape, dtype=bool)
            mask[:, self.row_mask, :, :] = True
            return mask
        out_f, in_f = self.weight_shape
        per_feature = np.repeat(self.row_mask, self.channel_group)
        return np.broadcast_to(per_feature, (out_f, in_f)).copy()


@dataclass(frozen=True)
class AuxParamPlan:
    """Per-channel auxiliary data (batch-norm affine/statistics) and the
    tensor group whose channel mask governs its encryption.

    The bus carries more than kernel weights: biases and batch-norm
    parameters are per-channel values stored alongside the feature maps
    they normalise.  Under SE they are encrypted exactly when their channel
    is, which the security experiments must model — an adversary snooping a
    SEAL bus learns the plaintext-channel statistics too.
    """

    module_name: str
    group: int
    channels: int


@dataclass
class PoolLayerPlan:
    """Geometry + channel masks of one POOL layer (for the sim traces)."""

    name: str
    index: int
    kernel_size: int
    group: int  # pooling is channel-preserving: in and out share a group
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    element_bytes: int = 4

    @property
    def macs(self) -> int:
        n, c, h_out, w_out = (
            self.out_shape if len(self.out_shape) == 4 else (*self.out_shape, 1, 1)
        )
        return n * c * h_out * w_out * self.kernel_size**2


@dataclass(frozen=True)
class LayerTraffic:
    """Bytes moved over the memory bus by one layer, split by criticality.

    This is the interface between the SEAL planner and the GPU simulator:
    encrypted bytes must pass through the AES engine, plain bytes bypass it.
    """

    name: str
    kind: str  # "conv" | "fc" | "pool"
    macs: int
    weight_bytes_encrypted: int
    weight_bytes_plain: int
    input_bytes_encrypted: int
    input_bytes_plain: int
    output_bytes_encrypted: int
    output_bytes_plain: int
    # GEMM dimensions of the lowered layer (M×K @ K×N); zero for pools.
    gemm_m: int = 0
    gemm_n: int = 0
    gemm_k: int = 0
    element_bytes: int = 4

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes_encrypted
            + self.weight_bytes_plain
            + self.input_bytes_encrypted
            + self.input_bytes_plain
            + self.output_bytes_encrypted
            + self.output_bytes_plain
        )

    @property
    def encrypted_bytes(self) -> int:
        return (
            self.weight_bytes_encrypted
            + self.input_bytes_encrypted
            + self.output_bytes_encrypted
        )

    @property
    def encrypted_fraction(self) -> float:
        total = self.total_bytes
        return self.encrypted_bytes / total if total else 0.0


def _is_leaf(module: Module) -> bool:
    return not any(
        isinstance(v, Module)
        or (isinstance(v, (list, tuple)) and any(isinstance(i, Module) for i in v))
        for v in vars(module).values()
    )


def _channels_of(shape: tuple[int, ...]) -> int:
    if len(shape) >= 2:
        return shape[1]
    raise PlanError(f"cannot infer channels from shape {shape}")


@dataclass
class ModelEncryptionPlan:
    """Complete smart-encryption plan for one model.

    Build with :meth:`build`; query per-layer decisions, per-tensor channel
    masks, traffic splits for the simulator, and weight masks for the
    security experiments.
    """

    model_name: str
    ratio: float
    layers: list[WeightLayerPlan]
    pools: list[PoolLayerPlan]
    group_masks: dict[int, np.ndarray]
    group_channels: dict[int, int]
    input_group: int
    output_group: int
    element_bytes: int = 4
    aux: list[AuxParamPlan] = field(default_factory=list)
    _by_name: dict[str, WeightLayerPlan] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: Module,
        ratio: float = DEFAULT_ENCRYPTION_RATIO,
        *,
        input_shape: tuple[int, ...] = (3, 32, 32),
        boundary_first_convs: int = 2,
        boundary_last_conv: bool = True,
        boundary_last_fc: bool = True,
        element_bytes: int = 4,
    ) -> "ModelEncryptionPlan":
        """Plan smart encryption for ``model`` at encryption ratio ``ratio``.

        ``boundary_*`` parameters reproduce the paper's fully-encrypted
        boundary layers and can be relaxed for ablation studies.
        """
        if not 0.0 <= ratio <= 1.0:
            raise PlanError(f"ratio must be in [0, 1], got {ratio}")

        model.eval()
        with trace_dataflow() as log, no_grad():
            probe = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
            final_out = model(probe)

        groups = _UnionFind()
        module_names = {id(m): name for name, m in model.named_modules()}
        weight_records: list[tuple[Module, object, object]] = []
        pool_records: list[tuple[Module, object, object]] = []

        for record in log:
            if record[0] == "residual_add":
                _, a, b, merged = record
                groups.union(id(a), id(b))
                groups.union(id(a), id(merged))
                continue
            module, x, out = record
            if not _is_leaf(module):
                continue
            if isinstance(module, (Conv2d, Linear)):
                weight_records.append((module, x, out))
            elif isinstance(module, (MaxPool2d, AvgPool2d, GlobalAvgPool2d)):
                pool_records.append((module, x, out))
                groups.union(id(x), id(out))
            elif isinstance(module, _CHANNEL_PRESERVING):
                groups.union(id(x), id(out))
            else:
                raise PlanError(
                    f"cannot plan unknown leaf module {type(module).__name__}"
                )

        if not weight_records:
            raise PlanError("model contains no CONV or FC layers")

        # Locate boundary layers by execution order.
        conv_positions = [
            i for i, (m, _, _) in enumerate(weight_records) if isinstance(m, Conv2d)
        ]
        fc_positions = [
            i for i, (m, _, _) in enumerate(weight_records) if isinstance(m, Linear)
        ]
        boundary: set[int] = set(conv_positions[:boundary_first_convs])
        if boundary_last_conv and conv_positions:
            boundary.add(conv_positions[-1])
        if boundary_last_fc and fc_positions:
            boundary.add(fc_positions[-1])

        # Flatten grouping: map a flattened tensor group back to channels.
        flatten_factor: dict[int, int] = {}
        for record in log:
            if record[0] == "residual_add":
                continue
            module, x, out = record
            if isinstance(module, Flatten):
                n, *rest = x.shape
                channels = rest[0]
                factor = int(np.prod(rest[1:])) if len(rest) > 1 else 1
                flatten_factor[groups.find(id(out))] = factor
                _ = channels
            elif isinstance(module, GlobalAvgPool2d):
                flatten_factor[groups.find(id(out))] = 1

        # Build per-layer plans with initial row masks.
        layer_plans: list[WeightLayerPlan] = []
        group_channels: dict[int, int] = {}
        for index, (module, x, out) in enumerate(weight_records):
            name = module_names.get(id(module), f"layer{index}")
            in_group = groups.find(id(x))
            out_group = groups.find(id(out))
            if isinstance(module, Conv2d):
                kind = "conv"
                importance = kernel_row_l1(module.weight.data)
                channel_group = 1
                n_rows = module.in_channels
            else:
                kind = "fc"
                channel_group = flatten_factor.get(in_group, 1)
                if module.in_features % channel_group:
                    channel_group = 1
                importance = fc_row_l1(module.weight.data, channel_group)
                n_rows = module.in_features // channel_group
            if index in boundary:
                row_mask = np.ones(n_rows, dtype=bool)
            else:
                row_mask = select_encrypted_rows(importance, ratio)
            layer_plans.append(
                WeightLayerPlan(
                    name=name,
                    kind=kind,
                    index=index,
                    n_rows=n_rows,
                    importance=importance,
                    row_mask=row_mask,
                    fully_encrypted=index in boundary,
                    channel_group=channel_group,
                    in_group=in_group,
                    out_group=out_group,
                    in_shape=tuple(x.shape),
                    out_shape=tuple(out.shape),
                    weight_shape=tuple(module.weight.shape),
                    element_bytes=element_bytes,
                )
            )
            expected = n_rows
            existing = group_channels.get(in_group)
            if existing is not None and existing != expected:
                raise PlanError(
                    f"inconsistent channel counts for group {in_group}: "
                    f"{existing} vs {expected}"
                )
            group_channels[in_group] = expected

        # A feature-map channel is physically either encrypted or not, so
        # all consumers of one tensor group must agree on the channel mask.
        # Where a group has several consumers (ResNet residual chains) we
        # rank channels by the *aggregate* normalized importance over all
        # consumers and take the top ``ratio`` — this keeps the encryption
        # ratio exact while preserving the row ⇔ channel invariant.  Groups
        # consumed by any fully-encrypted boundary layer are fully
        # encrypted (the boundary requirement dominates).
        group_masks: dict[int, np.ndarray] = {}
        consumers_by_group: dict[int, list[WeightLayerPlan]] = {}
        for plan in layer_plans:
            consumers_by_group.setdefault(plan.in_group, []).append(plan)
        for group, consumers in consumers_by_group.items():
            n_rows = consumers[0].n_rows
            if any(p.fully_encrypted for p in consumers):
                group_masks[group] = np.ones(n_rows, dtype=bool)
                continue
            if len(consumers) == 1:
                group_masks[group] = consumers[0].row_mask.copy()
                continue
            aggregate = np.zeros(n_rows, dtype=np.float64)
            for plan in consumers:
                total = plan.importance.sum()
                aggregate += plan.importance / total if total > 0 else plan.importance
            group_masks[group] = select_encrypted_rows(aggregate, ratio)

        # Align every consumer's row mask with its input group's mask.
        for plan in layer_plans:
            plan.row_mask = group_masks[plan.in_group].copy()

        # Groups nobody consumes (the final output) stay plaintext: the
        # inference result leaves the accelerator anyway.
        output_group = groups.find(id(final_out))
        if output_group not in group_masks:
            group_masks[output_group] = np.zeros(
                _channels_of(final_out.shape), dtype=bool
            )
            group_channels[output_group] = _channels_of(final_out.shape)
        input_group = groups.find(id(probe))

        # Record channel counts for producer-side groups too.
        for plan in layer_plans:
            out_channels = _channels_of(plan.out_shape)
            factor = flatten_factor.get(plan.out_group, 1)
            group_channels.setdefault(plan.out_group, out_channels // factor if factor else out_channels)

        # Auxiliary per-channel data: batch-norm parameters/statistics are
        # encrypted exactly when the channel they normalise is.
        aux_plans: list[AuxParamPlan] = []
        for record in log:
            if record[0] == "residual_add":
                continue
            module, x, _out = record
            if isinstance(module, BatchNorm2d):
                group = groups.find(id(x))
                channels = x.shape[1]
                group_channels.setdefault(group, channels)
                aux_plans.append(
                    AuxParamPlan(
                        module_name=module_names.get(id(module), "bn"),
                        group=group,
                        channels=channels,
                    )
                )

        pool_plans: list[PoolLayerPlan] = []
        for index, (module, x, out) in enumerate(pool_records):
            kernel = (
                module.kernel_size
                if isinstance(module, (MaxPool2d, AvgPool2d))
                else x.shape[2]
            )
            pool_plans.append(
                PoolLayerPlan(
                    name=module_names.get(id(module), f"pool{index}"),
                    index=index,
                    kernel_size=kernel,
                    group=groups.find(id(x)),
                    in_shape=tuple(x.shape),
                    out_shape=tuple(out.shape),
                    element_bytes=element_bytes,
                )
            )

        plan = cls(
            model_name=getattr(model, "name", type(model).__name__),
            ratio=ratio,
            layers=layer_plans,
            pools=pool_plans,
            group_masks=group_masks,
            group_channels=group_channels,
            input_group=input_group,
            output_group=output_group,
            element_bytes=element_bytes,
            aux=aux_plans,
        )
        plan._by_name = {p.name: p for p in layer_plans}
        plan.validate()
        return plan

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def layer(self, name: str) -> WeightLayerPlan:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanError(f"no weight layer named {name!r} in plan") from None

    def channel_mask(self, group: int) -> np.ndarray:
        """Encrypted-channel mask for a tensor group (False = plaintext)."""
        mask = self.group_masks.get(group)
        if mask is None:
            channels = self.group_channels.get(group)
            if channels is None:
                raise PlanError(f"unknown tensor group {group}")
            return np.zeros(channels, dtype=bool)
        return mask

    @property
    def realized_ratio(self) -> float:
        """Parameter-weighted fraction of encrypted weights (≥ requested
        ratio because of boundary layers and mask unioning)."""
        total = sum(p.weight_bytes for p in self.layers)
        encrypted = sum(p.encrypted_weight_bytes for p in self.layers)
        return encrypted / total if total else 0.0

    @property
    def selective_layers(self) -> list[WeightLayerPlan]:
        return [p for p in self.layers if not p.fully_encrypted]

    def weight_masks(self) -> dict[str, np.ndarray]:
        """Per-layer boolean weight masks (True = encrypted/unknown to the
        adversary) — the interface the attack experiments consume."""
        return {p.name: p.weight_element_mask() for p in self.layers}

    def aux_channel_masks(self) -> dict[str, np.ndarray]:
        """Per-module channel masks for auxiliary per-channel data.

        Keys are module names (batch-norm layers); a True entry means that
        channel's parameters/statistics are encrypted on the bus.  Bias
        vectors of weight layers follow :meth:`bias_masks` instead.
        """
        masks: dict[str, np.ndarray] = {}
        for aux in self.aux:
            mask = self.channel_mask(aux.group)
            if mask.size != aux.channels:
                # Flattened groups track channel groups, not raw channels;
                # expand to per-channel granularity.
                mask = np.repeat(mask, aux.channels // max(mask.size, 1))
            masks[aux.module_name] = mask
        return masks

    def bias_masks(self) -> dict[str, np.ndarray]:
        """Per-layer bias masks: a bias element is encrypted when its
        output channel is (the channel mask of the layer's output group)."""
        masks: dict[str, np.ndarray] = {}
        for layer in self.layers:
            out_channels = layer.weight_shape[0]
            mask = self.channel_mask(layer.out_group)
            if mask.size != out_channels:
                if out_channels % max(mask.size, 1) == 0:
                    mask = np.repeat(mask, out_channels // mask.size)
                else:
                    mask = np.ones(out_channels, dtype=bool)
            # A fully encrypted layer hides everything it owns.
            if layer.fully_encrypted:
                mask = np.ones(out_channels, dtype=bool)
            masks[layer.name] = mask
        return masks

    # ------------------------------------------------------------------
    # Validation of the paper's security invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the invariants the security argument relies on.

        * row mask length matches the layer's row count;
        * kernel row encrypted ⇔ input channel encrypted (Equations 1–3:
          no mixed plaintext × ciphertext products ever hit the bus);
        * boundary layers are fully encrypted;
        * realized ratio ≥ requested ratio on every selective layer.
        """
        for plan in self.layers:
            if plan.row_mask.shape != (plan.n_rows,):
                raise PlanError(
                    f"{plan.name}: row mask shape {plan.row_mask.shape} "
                    f"!= ({plan.n_rows},)"
                )
            group_mask = self.channel_mask(plan.in_group)
            if not np.array_equal(group_mask, plan.row_mask):
                raise PlanError(
                    f"{plan.name}: row mask diverges from input channel mask"
                )
            if plan.fully_encrypted and not plan.row_mask.all():
                raise PlanError(f"{plan.name}: boundary layer not fully encrypted")
            if not plan.fully_encrypted and self.ratio > 0:
                minimum = int(np.ceil(self.ratio * plan.n_rows))
                if plan.row_mask.sum() < minimum:
                    raise PlanError(
                        f"{plan.name}: {plan.row_mask.sum()} rows encrypted, "
                        f"ratio requires at least {minimum}"
                    )

    # ------------------------------------------------------------------
    # Traffic splitting for the GPU simulator
    # ------------------------------------------------------------------
    def _tensor_bytes(self, shape: tuple[int, ...], group: int) -> tuple[int, int]:
        """(encrypted, plain) bytes for a feature-map tensor in ``group``."""
        total = int(np.prod(shape)) * self.element_bytes
        mask = self.channel_mask(group)
        fraction = float(mask.mean()) if mask.size else 0.0
        encrypted = int(round(total * fraction))
        return encrypted, total - encrypted

    def layer_traffic(
        self, *, include_pools: bool = True, batch: int = 1
    ) -> list[LayerTraffic]:
        """Per-layer memory traffic split into encrypted and bypass bytes.

        Layers are returned in execution order with POOL layers interleaved
        after the CONV layer producing their input (matching the paper's
        Figures 5 and 6 which evaluate CONV and POOL layers separately).
        ``batch`` scales feature-map traffic and MACs for batched inference
        (weights are read once regardless — the reuse batching exists for).
        """
        if batch <= 0:
            raise PlanError("batch must be positive")
        traffic: list[LayerTraffic] = []
        for plan in self.layers:
            in_enc, in_plain = self._tensor_bytes(plan.in_shape, plan.in_group)
            out_enc, out_plain = self._tensor_bytes(plan.out_shape, plan.out_group)
            w_enc = plan.encrypted_weight_bytes
            if plan.kind == "conv":
                out_c, in_c, k, _ = plan.weight_shape
                gemm_m = batch * plan.out_shape[0] * plan.out_shape[2] * plan.out_shape[3]
                gemm_n = out_c
                gemm_k = in_c * k * k
            else:
                gemm_m = batch * plan.out_shape[0]
                gemm_n, gemm_k = plan.weight_shape
            traffic.append(
                LayerTraffic(
                    name=plan.name,
                    kind=plan.kind,
                    macs=plan.macs * batch,
                    weight_bytes_encrypted=w_enc,
                    weight_bytes_plain=plan.weight_bytes - w_enc,
                    input_bytes_encrypted=in_enc * batch,
                    input_bytes_plain=in_plain * batch,
                    output_bytes_encrypted=out_enc * batch,
                    output_bytes_plain=out_plain * batch,
                    gemm_m=gemm_m,
                    gemm_n=gemm_n,
                    gemm_k=gemm_k,
                    element_bytes=self.element_bytes,
                )
            )
        if include_pools:
            for pool in self.pools:
                in_enc, in_plain = self._tensor_bytes(pool.in_shape, pool.group)
                out_enc, out_plain = self._tensor_bytes(pool.out_shape, pool.group)
                traffic.append(
                    LayerTraffic(
                        name=pool.name,
                        kind="pool",
                        macs=pool.macs * batch,
                        weight_bytes_encrypted=0,
                        weight_bytes_plain=0,
                        input_bytes_encrypted=in_enc * batch,
                        input_bytes_plain=in_plain * batch,
                        output_bytes_encrypted=out_enc * batch,
                        output_bytes_plain=out_plain * batch,
                        element_bytes=self.element_bytes,
                    )
                )
        return traffic

    def summary(self) -> str:
        """Human-readable per-layer plan table."""
        lines = [
            f"SEAL plan for {self.model_name} "
            f"(requested ratio {self.ratio:.0%}, realized {self.realized_ratio:.0%})",
            f"{'layer':<32}{'kind':<6}{'rows':>6}{'enc rows':>10}{'boundary':>10}",
        ]
        for plan in self.layers:
            lines.append(
                f"{plan.name:<32}{plan.kind:<6}{plan.n_rows:>6}"
                f"{int(plan.row_mask.sum()):>10}"
                f"{'yes' if plan.fully_encrypted else '':>10}"
            )
        return "\n".join(lines)
