"""Plan-level statistics: how much bus traffic does SEAL actually encrypt?

The performance win of SEAL is proportional to the *traffic-weighted*
encrypted fraction, not the parameter-weighted one — feature maps usually
dominate bytes moved.  These helpers quantify both, per layer and per
model, and back the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import LayerTraffic, ModelEncryptionPlan

__all__ = ["TrafficSummary", "summarize_traffic", "per_layer_encrypted_fraction"]


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate byte accounting for one plan."""

    model_name: str
    ratio: float
    total_bytes: int
    encrypted_bytes: int
    weight_bytes: int
    encrypted_weight_bytes: int
    fmap_bytes: int
    encrypted_fmap_bytes: int

    @property
    def encrypted_fraction(self) -> float:
        return self.encrypted_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def weight_encrypted_fraction(self) -> float:
        return (
            self.encrypted_weight_bytes / self.weight_bytes if self.weight_bytes else 0.0
        )

    @property
    def fmap_encrypted_fraction(self) -> float:
        return self.encrypted_fmap_bytes / self.fmap_bytes if self.fmap_bytes else 0.0

    def __str__(self) -> str:
        return (
            f"{self.model_name} @ ratio {self.ratio:.0%}: "
            f"{self.encrypted_fraction:.1%} of {self.total_bytes / 1e6:.1f} MB "
            f"encrypted (weights {self.weight_encrypted_fraction:.1%}, "
            f"feature maps {self.fmap_encrypted_fraction:.1%})"
        )


def summarize_traffic(plan: ModelEncryptionPlan) -> TrafficSummary:
    """Reduce a plan's :meth:`layer_traffic` into one summary record."""
    traffic = plan.layer_traffic()
    weight_bytes = sum(t.weight_bytes_encrypted + t.weight_bytes_plain for t in traffic)
    encrypted_weight = sum(t.weight_bytes_encrypted for t in traffic)
    fmap_bytes = sum(
        t.input_bytes_encrypted
        + t.input_bytes_plain
        + t.output_bytes_encrypted
        + t.output_bytes_plain
        for t in traffic
    )
    encrypted_fmap = sum(
        t.input_bytes_encrypted + t.output_bytes_encrypted for t in traffic
    )
    return TrafficSummary(
        model_name=plan.model_name,
        ratio=plan.ratio,
        total_bytes=weight_bytes + fmap_bytes,
        encrypted_bytes=encrypted_weight + encrypted_fmap,
        weight_bytes=weight_bytes,
        encrypted_weight_bytes=encrypted_weight,
        fmap_bytes=fmap_bytes,
        encrypted_fmap_bytes=encrypted_fmap,
    )


def per_layer_encrypted_fraction(plan: ModelEncryptionPlan) -> dict[str, float]:
    """Map layer name → fraction of its traffic that is encrypted."""
    return {t.name: t.encrypted_fraction for t in plan.layer_traffic()}


def traffic_table(traffic: list[LayerTraffic]) -> str:
    """ASCII table of per-layer traffic splits (debugging/reporting)."""
    lines = [
        f"{'layer':<34}{'kind':<6}{'total KB':>10}{'enc KB':>10}{'enc %':>8}"
    ]
    for t in traffic:
        lines.append(
            f"{t.name:<34}{t.kind:<6}{t.total_bytes / 1024:>10.1f}"
            f"{t.encrypted_bytes / 1024:>10.1f}{t.encrypted_fraction:>8.1%}"
        )
    return "\n".join(lines)
