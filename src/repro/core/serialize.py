"""Plan serialization: bake a smart-encryption plan into a deployable blob.

The SEAL runtime decides per cache line whether to route through the AES
engine; that decision derives from the plan computed at model-preparation
time.  Serializing the plan (rather than recomputing ℓ1 statistics on
device) is how a deployment would ship it — and it lets tools inspect or
diff plans without the trained weights.

The format is plain JSON: masks are stored as 0/1 lists, importance as
floats.  ``plan_from_dict`` reconstructs a fully functional
:class:`~repro.core.plan.ModelEncryptionPlan` (queries, traffic splitting,
validation) without needing the original model.
"""

from __future__ import annotations

import json

import numpy as np

from .plan import (
    AuxParamPlan,
    ModelEncryptionPlan,
    PlanError,
    PoolLayerPlan,
    WeightLayerPlan,
)

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]

_FORMAT_VERSION = 1


def plan_to_dict(plan: ModelEncryptionPlan) -> dict:
    """Serialize a plan to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "model_name": plan.model_name,
        "ratio": plan.ratio,
        "element_bytes": plan.element_bytes,
        "input_group": plan.input_group,
        "output_group": plan.output_group,
        "group_masks": {
            str(group): mask.astype(int).tolist()
            for group, mask in plan.group_masks.items()
        },
        "group_channels": {
            str(group): channels for group, channels in plan.group_channels.items()
        },
        "layers": [
            {
                "name": layer.name,
                "kind": layer.kind,
                "index": layer.index,
                "n_rows": layer.n_rows,
                "importance": layer.importance.tolist(),
                "row_mask": layer.row_mask.astype(int).tolist(),
                "fully_encrypted": layer.fully_encrypted,
                "channel_group": layer.channel_group,
                "in_group": layer.in_group,
                "out_group": layer.out_group,
                "in_shape": list(layer.in_shape),
                "out_shape": list(layer.out_shape),
                "weight_shape": list(layer.weight_shape),
            }
            for layer in plan.layers
        ],
        "pools": [
            {
                "name": pool.name,
                "index": pool.index,
                "kernel_size": pool.kernel_size,
                "group": pool.group,
                "in_shape": list(pool.in_shape),
                "out_shape": list(pool.out_shape),
            }
            for pool in plan.pools
        ],
        "aux": [
            {
                "module_name": aux.module_name,
                "group": aux.group,
                "channels": aux.channels,
            }
            for aux in plan.aux
        ],
    }


def plan_from_dict(payload: dict) -> ModelEncryptionPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version {version!r}")
    layers = [
        WeightLayerPlan(
            name=item["name"],
            kind=item["kind"],
            index=item["index"],
            n_rows=item["n_rows"],
            importance=np.asarray(item["importance"], dtype=np.float64),
            row_mask=np.asarray(item["row_mask"], dtype=bool),
            fully_encrypted=item["fully_encrypted"],
            channel_group=item["channel_group"],
            in_group=item["in_group"],
            out_group=item["out_group"],
            in_shape=tuple(item["in_shape"]),
            out_shape=tuple(item["out_shape"]),
            weight_shape=tuple(item["weight_shape"]),
            element_bytes=payload["element_bytes"],
        )
        for item in payload["layers"]
    ]
    pools = [
        PoolLayerPlan(
            name=item["name"],
            index=item["index"],
            kernel_size=item["kernel_size"],
            group=item["group"],
            in_shape=tuple(item["in_shape"]),
            out_shape=tuple(item["out_shape"]),
            element_bytes=payload["element_bytes"],
        )
        for item in payload["pools"]
    ]
    aux = [
        AuxParamPlan(
            module_name=item["module_name"],
            group=item["group"],
            channels=item["channels"],
        )
        for item in payload.get("aux", [])
    ]
    plan = ModelEncryptionPlan(
        model_name=payload["model_name"],
        ratio=payload["ratio"],
        layers=layers,
        pools=pools,
        group_masks={
            int(group): np.asarray(mask, dtype=bool)
            for group, mask in payload["group_masks"].items()
        },
        group_channels={
            int(group): channels
            for group, channels in payload["group_channels"].items()
        },
        input_group=payload["input_group"],
        output_group=payload["output_group"],
        element_bytes=payload["element_bytes"],
        aux=aux,
    )
    plan._by_name = {layer.name: layer for layer in layers}
    plan.validate()
    return plan


def save_plan(plan: ModelEncryptionPlan, path: str) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=1)


def load_plan(path: str) -> ModelEncryptionPlan:
    """Read a plan from a JSON file (validates on load)."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))
