"""Plan serialization: bake a smart-encryption plan into a deployable blob.

The SEAL runtime decides per cache line whether to route through the AES
engine; that decision derives from the plan computed at model-preparation
time.  Serializing the plan (rather than recomputing ℓ1 statistics on
device) is how a deployment would ship it — and it lets tools inspect or
diff plans without the trained weights.

The format is plain JSON: masks are stored as 0/1 lists, importance as
floats.  ``plan_from_dict`` reconstructs a fully functional
:class:`~repro.core.plan.ModelEncryptionPlan` (queries, traffic splitting,
validation) without needing the original model.

Robustness of the blob itself (a plan rides alongside gigabytes of model
weights through the same copy pipelines):

* every serialized plan carries a CRC-32 ``checksum`` over its canonical
  JSON body, verified on load — a flipped byte fails with the stored and
  computed digests in the message instead of surfacing later as a
  mysteriously-invalid mask;
* a ``format_version`` *newer* than this reader understands is rejected
  with an explicit upgrade hint (older readers must not half-parse future
  blobs), distinct from the plain unsupported-version error;
* :func:`load_plan` turns unreadable files and structural surprises into
  :class:`~repro.core.plan.PlanError` naming the path, and can quarantine
  the bad file (``*.quarantine`` + reason sidecar) so the slot is free
  for regeneration while the evidence survives.
"""

from __future__ import annotations

import json
import zlib

import numpy as np

from .plan import (
    AuxParamPlan,
    ModelEncryptionPlan,
    PlanError,
    PoolLayerPlan,
    WeightLayerPlan,
)

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]

_FORMAT_VERSION = 1


def _payload_checksum(payload: dict) -> int:
    """CRC-32 over the canonical JSON body (everything but ``checksum``)."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(encoded.encode("utf-8"))


def plan_to_dict(plan: ModelEncryptionPlan) -> dict:
    """Serialize a plan to a JSON-compatible dictionary (checksummed)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "model_name": plan.model_name,
        "ratio": plan.ratio,
        "element_bytes": plan.element_bytes,
        "input_group": plan.input_group,
        "output_group": plan.output_group,
        "group_masks": {
            str(group): mask.astype(int).tolist()
            for group, mask in plan.group_masks.items()
        },
        "group_channels": {
            str(group): channels for group, channels in plan.group_channels.items()
        },
        "layers": [
            {
                "name": layer.name,
                "kind": layer.kind,
                "index": layer.index,
                "n_rows": layer.n_rows,
                "importance": layer.importance.tolist(),
                "row_mask": layer.row_mask.astype(int).tolist(),
                "fully_encrypted": layer.fully_encrypted,
                "channel_group": layer.channel_group,
                "in_group": layer.in_group,
                "out_group": layer.out_group,
                "in_shape": list(layer.in_shape),
                "out_shape": list(layer.out_shape),
                "weight_shape": list(layer.weight_shape),
            }
            for layer in plan.layers
        ],
        "pools": [
            {
                "name": pool.name,
                "index": pool.index,
                "kernel_size": pool.kernel_size,
                "group": pool.group,
                "in_shape": list(pool.in_shape),
                "out_shape": list(pool.out_shape),
            }
            for pool in plan.pools
        ],
        "aux": [
            {
                "module_name": aux.module_name,
                "group": aux.group,
                "channels": aux.channels,
            }
            for aux in plan.aux
        ],
    }
    payload["checksum"] = _payload_checksum(payload)
    return payload


def plan_from_dict(payload: dict) -> ModelEncryptionPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output.

    The version gate runs first (a future blob must not be half-parsed),
    then the CRC-32 checksum when the blob carries one — checksum-less
    version-1 blobs from before checksums existed still load.
    """
    version = payload.get("format_version")
    if isinstance(version, int) and version > _FORMAT_VERSION:
        raise PlanError(
            f"plan format version {version} is newer than the supported "
            f"version {_FORMAT_VERSION}; upgrade this reader to load it"
        )
    if version != _FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version {version!r}")
    checksum = payload.get("checksum")
    if checksum is not None:
        computed = _payload_checksum(payload)
        if checksum != computed:
            raise PlanError(
                f"plan checksum mismatch: stored {checksum!r}, computed "
                f"{computed} — the blob was corrupted on disk or in transit"
            )
    layers = [
        WeightLayerPlan(
            name=item["name"],
            kind=item["kind"],
            index=item["index"],
            n_rows=item["n_rows"],
            importance=np.asarray(item["importance"], dtype=np.float64),
            row_mask=np.asarray(item["row_mask"], dtype=bool),
            fully_encrypted=item["fully_encrypted"],
            channel_group=item["channel_group"],
            in_group=item["in_group"],
            out_group=item["out_group"],
            in_shape=tuple(item["in_shape"]),
            out_shape=tuple(item["out_shape"]),
            weight_shape=tuple(item["weight_shape"]),
            element_bytes=payload["element_bytes"],
        )
        for item in payload["layers"]
    ]
    pools = [
        PoolLayerPlan(
            name=item["name"],
            index=item["index"],
            kernel_size=item["kernel_size"],
            group=item["group"],
            in_shape=tuple(item["in_shape"]),
            out_shape=tuple(item["out_shape"]),
            element_bytes=payload["element_bytes"],
        )
        for item in payload["pools"]
    ]
    aux = [
        AuxParamPlan(
            module_name=item["module_name"],
            group=item["group"],
            channels=item["channels"],
        )
        for item in payload.get("aux", [])
    ]
    plan = ModelEncryptionPlan(
        model_name=payload["model_name"],
        ratio=payload["ratio"],
        layers=layers,
        pools=pools,
        group_masks={
            int(group): np.asarray(mask, dtype=bool)
            for group, mask in payload["group_masks"].items()
        },
        group_channels={
            int(group): channels
            for group, channels in payload["group_channels"].items()
        },
        input_group=payload["input_group"],
        output_group=payload["output_group"],
        element_bytes=payload["element_bytes"],
        aux=aux,
    )
    plan._by_name = {layer.name: layer for layer in layers}
    plan.validate()
    return plan


def save_plan(plan: ModelEncryptionPlan, path: str) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=1)


def load_plan(path: str, *, quarantine: bool = False) -> ModelEncryptionPlan:
    """Read a plan from a JSON file (version, checksum and content checked).

    Every failure mode — unreadable file, truncated/garbled JSON, missing
    fields, checksum or version mismatch — raises
    :class:`~repro.core.plan.PlanError` naming ``path``.  With
    ``quarantine=True`` the offending file is first moved aside to
    ``<path>.quarantine`` (reason in a sidecar) so the slot is free for a
    regenerated plan while the bad bytes stay inspectable.
    """
    try:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise PlanError(f"unreadable plan {path}: {error}") from error
        if not isinstance(payload, dict):
            raise PlanError(f"{path} does not hold a plan object")
        try:
            return plan_from_dict(payload)
        except PlanError as error:
            raise PlanError(f"invalid plan {path}: {error}") from error
        except (KeyError, TypeError, ValueError) as error:
            raise PlanError(f"malformed plan {path}: {error!r}") from error
    except PlanError as error:
        if quarantine:
            from ..faults.quarantine import quarantine_artifact

            quarantine_artifact(path, reason=str(error))
        raise
