"""Kernel-row ablation: empirical validation of the criticality premise.

SEAL's security argument (Section III-A) leans on the pruning literature
(Li et al., ICLR'17 [13]): kernel rows with small ℓ1-norms produce weakly
activated feature maps and contribute little to the model output, so
leaving them in plaintext does not help an adversary.  This module makes
that premise *testable* on our own models: zero out a fraction of kernel
rows chosen by different policies and measure the accuracy impact.

Expected ordering (checked by tests and the criticality ablation bench):
removing the **least** important rows hurts far less than removing the
**most** important rows, with random removal in between.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import BatchNorm2d, Conv2d, Module
from ..nn.tensor import Tensor
from ..nn.training import evaluate
from .importance import kernel_row_l1, rank_rows

__all__ = [
    "RowAblationResult",
    "ablate_kernel_rows",
    "recalibrate_batchnorm",
    "row_ablation_study",
    "ABLATION_POLICIES",
]

ABLATION_POLICIES = ("least-important", "most-important", "random")


def _rows_to_remove(
    importance: np.ndarray, fraction: float, policy: str, rng: np.random.Generator
) -> np.ndarray:
    count = int(round(fraction * importance.size))
    if count == 0:
        return np.zeros(importance.size, dtype=bool)
    mask = np.zeros(importance.size, dtype=bool)
    order = rank_rows(importance)
    if policy == "least-important":
        mask[order[-count:]] = True
    elif policy == "most-important":
        mask[order[:count]] = True
    elif policy == "random":
        mask[rng.choice(importance.size, size=count, replace=False)] = True
    else:
        raise ValueError(f"unknown policy {policy!r}; choose from {ABLATION_POLICIES}")
    return mask


def ablate_kernel_rows(
    model: Module,
    fraction: float,
    policy: str = "least-important",
    *,
    seed: int = 0,
    skip_first: int = 1,
) -> dict[str, np.ndarray]:
    """Zero out ``fraction`` of kernel rows per CONV layer, in place.

    Returns the per-layer removal masks (True = zeroed).  ``skip_first``
    CONV layers are left intact (ablating the image-facing stem destroys
    any model regardless of criticality, which would mask the effect the
    study measures).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    masks: dict[str, np.ndarray] = {}
    conv_index = 0
    for name, module in model.named_modules():
        if not isinstance(module, Conv2d):
            continue
        conv_index += 1
        if conv_index <= skip_first:
            continue
        importance = kernel_row_l1(module.weight.data)
        mask = _rows_to_remove(importance, fraction, policy, rng)
        module.weight.data[:, mask, :, :] = 0.0
        masks[name] = mask
    return masks


def recalibrate_batchnorm(
    model: Module, images: np.ndarray, *, batch_size: int = 64
) -> None:
    """Recompute batch-norm running statistics on ``images``.

    Zeroing kernel rows shifts every downstream activation distribution, so
    the pre-ablation running statistics mis-normalise the pruned network —
    the standard remedy (as in the pruning literature) is to re-estimate
    them with a few calibration batches.  Uses cumulative averaging
    (momentum ``1/i`` for batch ``i``) so the result is the exact mean over
    the calibration set.
    """
    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn.running_mean[:] = 0.0
        bn.running_var[:] = 1.0
    original_momentum = [bn.momentum for bn in bn_layers]
    model.train()
    try:
        batch_index = 0
        for start in range(0, len(images), batch_size):
            batch_index += 1
            for bn in bn_layers:
                bn.momentum = 1.0 / batch_index
            model(Tensor(images[start : start + batch_size].astype(np.float32)))
    finally:
        for bn, momentum in zip(bn_layers, original_momentum):
            bn.momentum = momentum
        model.eval()


@dataclass(frozen=True)
class RowAblationResult:
    """Accuracy after ablating rows under each policy, per fraction."""

    baseline_accuracy: float
    fractions: tuple[float, ...]
    accuracy: dict[str, tuple[float, ...]]  # policy -> per-fraction accuracy

    def drop(self, policy: str, index: int) -> float:
        return self.baseline_accuracy - self.accuracy[policy][index]


def row_ablation_study(
    model: Module,
    dataset: Dataset,
    *,
    fractions: tuple[float, ...] = (0.1, 0.3, 0.5),
    policies: tuple[str, ...] = ABLATION_POLICIES,
    seed: int = 0,
    calibration_images: np.ndarray | None = None,
) -> RowAblationResult:
    """Measure accuracy under row ablation for each policy × fraction.

    ``calibration_images`` (recommended) recalibrates batch-norm statistics
    after each ablation — without it, stale statistics dominate the
    measurement and mask the criticality ordering.  The model is
    snapshotted and restored between runs, so the study has no side effects
    on ``model``.
    """
    snapshot = model.state_dict()
    baseline = evaluate(model, dataset)
    accuracy: dict[str, list[float]] = {policy: [] for policy in policies}
    for policy in policies:
        for fraction in fractions:
            ablate_kernel_rows(model, fraction, policy, seed=seed)
            if calibration_images is not None and fraction > 0:
                recalibrate_batchnorm(model, calibration_images)
            accuracy[policy].append(evaluate(model, dataset))
            model.load_state_dict(snapshot)
    return RowAblationResult(
        baseline_accuracy=baseline,
        fractions=tuple(fractions),
        accuracy={policy: tuple(values) for policy, values in accuracy.items()},
    )
