"""SEAL façade: plan + memory layout + the adversary's bus view.

:class:`SealScheme` ties the pieces together the way the deployed system
would: build the criticality plan for a trained model, lay the model out in
accelerator memory with ``emalloc``/``malloc`` per region, functionally
encrypt the critical lines, and answer the question the security analysis
needs — *exactly which bytes does a bus snooper see in plaintext?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..crypto.modes import CounterModeEncryptor, DirectEncryptor
from ..nn.layers import Module
from .memory import Allocation, SecureHeap
from .plan import DEFAULT_ENCRYPTION_RATIO, ModelEncryptionPlan

__all__ = ["SealScheme", "LayerLayout", "SnoopedModel"]


@dataclass(frozen=True)
class LayerLayout:
    """Memory placement of one weight layer's data.

    Encrypted kernel rows and plaintext kernel rows are packed into separate
    allocations so that no 128-byte line mixes criticalities (the memory
    controller routes per line).
    """

    name: str
    encrypted_weights: Allocation | None
    plain_weights: Allocation | None


@dataclass
class SnoopedModel:
    """What a bus snooper obtains from a SEAL-protected accelerator.

    ``weights[name]`` has NaN where the corresponding kernel weight was
    encrypted on the bus (the adversary sees ciphertext, i.e. nothing
    useful); real values elsewhere.  ``masks[name]`` is True where
    encrypted.

    The bus also carries per-channel auxiliary data — biases and batch-norm
    parameters/statistics — encrypted exactly when their channel is.
    ``aux_params``/``aux_masks`` expose those by full parameter name (e.g.
    ``stem_bn.gamma``), and ``aux_buffers`` the snooped running statistics.
    This is the exact input to the paper's substitute-model generation
    (Section III-B.1).
    """

    model_name: str
    ratio: float
    weights: dict[str, np.ndarray]
    masks: dict[str, np.ndarray]
    aux_params: dict[str, np.ndarray] = None
    aux_masks: dict[str, np.ndarray] = None
    aux_buffers: dict[str, np.ndarray] = None

    def __post_init__(self) -> None:
        if self.aux_params is None:
            self.aux_params = {}
        if self.aux_masks is None:
            self.aux_masks = {}
        if self.aux_buffers is None:
            self.aux_buffers = {}

    def known_fraction(self) -> float:
        """Fraction of *kernel weights* visible in plaintext."""
        total = sum(m.size for m in self.masks.values())
        known = sum(int((~m).sum()) for m in self.masks.values())
        return known / total if total else 0.0


class SealScheme:
    """End-to-end smart encryption for one model.

    Parameters
    ----------
    model:
        A trained :class:`repro.nn.layers.Module`.
    ratio:
        Encryption ratio for the selective layers (paper default: 50%).
    key:
        AES key used for the functional datapath (any 16/24/32-byte value).
    input_shape:
        Model input geometry for the dataflow trace.
    backend:
        Crypto backend for the functional datapath (``"scalar"`` /
        ``"vector"`` / ``None`` = environment/default selection, see
        :mod:`repro.crypto.fastpath`).
    """

    def __init__(
        self,
        model: Module,
        ratio: float = DEFAULT_ENCRYPTION_RATIO,
        *,
        key: bytes = bytes(range(16)),
        input_shape: tuple[int, ...] = (3, 32, 32),
        mode: str = "counter",
        backend: str | None = None,
    ) -> None:
        self.model = model
        self.plan = ModelEncryptionPlan.build(model, ratio, input_shape=input_shape)
        self.ratio = ratio
        if mode == "counter":
            self._encryptor = CounterModeEncryptor(key, backend=backend)
            self._counter_mode = True
        elif mode == "direct":
            self._encryptor = DirectEncryptor(key, backend=backend)
            self._counter_mode = False
        else:
            raise ValueError(f"mode must be 'counter' or 'direct', got {mode!r}")
        self.backend = self._encryptor.backend

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def layout(self, heap: SecureHeap | None = None) -> tuple[SecureHeap, list[LayerLayout]]:
        """Place every layer's weights into encrypted/plaintext regions.

        Returns the heap (so feature maps can be added by the runtime) and
        the per-layer layout records.
        """
        if heap is None:  # note: an empty heap is falsy via __len__
            heap = SecureHeap()
        layouts: list[LayerLayout] = []
        for layer in self.plan.layers:
            encrypted_bytes = layer.encrypted_weight_bytes
            plain_bytes = layer.weight_bytes - encrypted_bytes
            enc_alloc = (
                heap.emalloc(f"{layer.name}.weights.enc", encrypted_bytes)
                if encrypted_bytes
                else None
            )
            plain_alloc = (
                heap.malloc(f"{layer.name}.weights.plain", plain_bytes)
                if plain_bytes
                else None
            )
            layouts.append(LayerLayout(layer.name, enc_alloc, plain_alloc))
        # Feature-map regions: one pair per tensor group.
        for group, mask in sorted(self.plan.group_masks.items()):
            channels = self.plan.group_channels.get(group, mask.size)
            if channels == 0:
                continue
            encrypted_channels = int(mask.sum())
            plain_channels = channels - encrypted_channels
            # Size is refined per layer by the trace generator; reserve a
            # nominal per-channel page here so lookups work end to end.
            page = 4096
            if encrypted_channels:
                heap.emalloc(f"fmap.group{group}.enc", encrypted_channels * page)
            if plain_channels:
                heap.malloc(f"fmap.group{group}.plain", plain_channels * page)
        return heap, layouts

    # ------------------------------------------------------------------
    # Functional datapath
    # ------------------------------------------------------------------
    def encrypt_line(self, address: int, data: bytes, counter: int = 0) -> bytes:
        """Encrypt one cache line as the memory controller would."""
        if self._counter_mode:
            return self._encryptor.encrypt_line(address, counter, data)
        return self._encryptor.encrypt_line(address, data)

    def decrypt_line(self, address: int, data: bytes, counter: int = 0) -> bytes:
        if self._counter_mode:
            return self._encryptor.decrypt_line(address, counter, data)
        return self._encryptor.decrypt_line(address, data)

    # ------------------------------------------------------------------
    # Adversary view
    # ------------------------------------------------------------------
    def snooped_view(self) -> SnoopedModel:
        """The bus snooper's haul: plaintext weights, NaN for ciphertext.

        Besides kernel weights, the returned view exposes the per-channel
        auxiliary data the bus also carries — biases and batch-norm
        parameters/statistics — masked per channel exactly as the plan
        encrypts the corresponding feature-map channels.
        """
        weights: dict[str, np.ndarray] = {}
        masks = self.plan.weight_masks()
        named = dict(self.model.named_parameters())
        for layer in self.plan.layers:
            param_name = f"{layer.name}.weight"
            if param_name not in named:
                raise KeyError(f"model has no parameter {param_name!r}")
            values = named[param_name].data.astype(np.float64).copy()
            mask = masks[layer.name]
            values[mask] = np.nan
            weights[layer.name] = values

        def masked(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
            out = values.astype(np.float64).copy()
            out[mask] = np.nan
            return out

        aux_params: dict[str, np.ndarray] = {}
        aux_masks: dict[str, np.ndarray] = {}
        aux_buffers: dict[str, np.ndarray] = {}
        # Biases of weight layers (per output channel).
        for layer_name, bias_mask in self.plan.bias_masks().items():
            param_name = f"{layer_name}.bias"
            if param_name in named:
                aux_params[param_name] = masked(named[param_name].data, bias_mask)
                aux_masks[param_name] = bias_mask
        # Batch-norm affine parameters and running statistics.
        from ..nn.layers import BatchNorm2d

        modules = dict(self.model.named_modules())
        for module_name, channel_mask in self.plan.aux_channel_masks().items():
            module = modules.get(module_name)
            if not isinstance(module, BatchNorm2d):
                continue
            for attr in ("gamma", "beta"):
                param_name = f"{module_name}.{attr}"
                aux_params[param_name] = masked(
                    getattr(module, attr).data, channel_mask
                )
                aux_masks[param_name] = channel_mask
            for attr in ("running_mean", "running_var"):
                buffer_name = f"{module_name}.{attr}"
                aux_buffers[buffer_name] = masked(
                    getattr(module, attr), channel_mask
                )
                aux_masks[buffer_name] = channel_mask

        return SnoopedModel(
            model_name=self.plan.model_name,
            ratio=self.ratio,
            weights=weights,
            masks=masks,
            aux_params=aux_params,
            aux_masks=aux_masks,
            aux_buffers=aux_buffers,
        )
