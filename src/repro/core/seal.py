"""SEAL façade: plan + memory layout + the adversary's bus view.

:class:`SealScheme` ties the pieces together the way the deployed system
would: build the criticality plan for a trained model, lay the model out in
accelerator memory with ``emalloc``/``malloc`` per region, functionally
encrypt the critical lines, and answer the question the security analysis
needs — *exactly which bytes does a bus snooper see in plaintext?*

:class:`LineSealer` is the payload-level *protection* entry point the
serving layer (:mod:`repro.serve`) builds on: it splits an arbitrary blob
into cache lines, counter-mode encrypts them and GMAC-tags each line in
**one batched pass per primitive** — the shape the vectorized fast path
(:mod:`repro.crypto.fastpath`) is fastest at — and verifies/decrypts on
the way back, raising :class:`SealIntegrityError` on any tampered line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.mac import MAC_BYTES, LineAuthenticator
from ..crypto.modes import CounterModeEncryptor, DirectEncryptor
from ..nn.layers import Module
from .memory import Allocation, SecureHeap
from .plan import DEFAULT_ENCRYPTION_RATIO, ModelEncryptionPlan

__all__ = [
    "SealScheme",
    "LayerLayout",
    "SnoopedModel",
    "LINE_BYTES",
    "SealedPayload",
    "SealIntegrityError",
    "LineSealer",
]

#: Memory-access granularity the sealer chunks payloads into (one bus line
#: of the modelled GDDR5 system — the same constant as
#: :data:`repro.faults.tamper.LINE_BYTES`).
LINE_BYTES = 128


@dataclass(frozen=True)
class LayerLayout:
    """Memory placement of one weight layer's data.

    Encrypted kernel rows and plaintext kernel rows are packed into separate
    allocations so that no 128-byte line mixes criticalities (the memory
    controller routes per line).
    """

    name: str
    encrypted_weights: Allocation | None
    plain_weights: Allocation | None


@dataclass
class SnoopedModel:
    """What a bus snooper obtains from a SEAL-protected accelerator.

    ``weights[name]`` has NaN where the corresponding kernel weight was
    encrypted on the bus (the adversary sees ciphertext, i.e. nothing
    useful); real values elsewhere.  ``masks[name]`` is True where
    encrypted.

    The bus also carries per-channel auxiliary data — biases and batch-norm
    parameters/statistics — encrypted exactly when their channel is.
    ``aux_params``/``aux_masks`` expose those by full parameter name (e.g.
    ``stem_bn.gamma``), and ``aux_buffers`` the snooped running statistics.
    This is the exact input to the paper's substitute-model generation
    (Section III-B.1).
    """

    model_name: str
    ratio: float
    weights: dict[str, np.ndarray]
    masks: dict[str, np.ndarray]
    aux_params: dict[str, np.ndarray] = None
    aux_masks: dict[str, np.ndarray] = None
    aux_buffers: dict[str, np.ndarray] = None

    def __post_init__(self) -> None:
        if self.aux_params is None:
            self.aux_params = {}
        if self.aux_masks is None:
            self.aux_masks = {}
        if self.aux_buffers is None:
            self.aux_buffers = {}

    def known_fraction(self) -> float:
        """Fraction of *kernel weights* visible in plaintext."""
        total = sum(m.size for m in self.masks.values())
        known = sum(int((~m).sum()) for m in self.masks.values())
        return known / total if total else 0.0


class SealScheme:
    """End-to-end smart encryption for one model.

    Parameters
    ----------
    model:
        A trained :class:`repro.nn.layers.Module`.
    ratio:
        Encryption ratio for the selective layers (paper default: 50%).
    key:
        AES key used for the functional datapath (any 16/24/32-byte value).
    input_shape:
        Model input geometry for the dataflow trace.
    backend:
        Crypto backend for the functional datapath (``"scalar"`` /
        ``"vector"`` / ``None`` = environment/default selection, see
        :mod:`repro.crypto.fastpath`).
    """

    def __init__(
        self,
        model: Module,
        ratio: float = DEFAULT_ENCRYPTION_RATIO,
        *,
        key: bytes = bytes(range(16)),
        input_shape: tuple[int, ...] = (3, 32, 32),
        mode: str = "counter",
        backend: str | None = None,
    ) -> None:
        self.model = model
        self.plan = ModelEncryptionPlan.build(model, ratio, input_shape=input_shape)
        self.ratio = ratio
        if mode == "counter":
            self._encryptor = CounterModeEncryptor(key, backend=backend)
            self._counter_mode = True
        elif mode == "direct":
            self._encryptor = DirectEncryptor(key, backend=backend)
            self._counter_mode = False
        else:
            raise ValueError(f"mode must be 'counter' or 'direct', got {mode!r}")
        self.backend = self._encryptor.backend

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def layout(self, heap: SecureHeap | None = None) -> tuple[SecureHeap, list[LayerLayout]]:
        """Place every layer's weights into encrypted/plaintext regions.

        Returns the heap (so feature maps can be added by the runtime) and
        the per-layer layout records.
        """
        if heap is None:  # note: an empty heap is falsy via __len__
            heap = SecureHeap()
        layouts: list[LayerLayout] = []
        for layer in self.plan.layers:
            encrypted_bytes = layer.encrypted_weight_bytes
            plain_bytes = layer.weight_bytes - encrypted_bytes
            enc_alloc = (
                heap.emalloc(f"{layer.name}.weights.enc", encrypted_bytes)
                if encrypted_bytes
                else None
            )
            plain_alloc = (
                heap.malloc(f"{layer.name}.weights.plain", plain_bytes)
                if plain_bytes
                else None
            )
            layouts.append(LayerLayout(layer.name, enc_alloc, plain_alloc))
        # Feature-map regions: one pair per tensor group.
        for group, mask in sorted(self.plan.group_masks.items()):
            channels = self.plan.group_channels.get(group, mask.size)
            if channels == 0:
                continue
            encrypted_channels = int(mask.sum())
            plain_channels = channels - encrypted_channels
            # Size is refined per layer by the trace generator; reserve a
            # nominal per-channel page here so lookups work end to end.
            page = 4096
            if encrypted_channels:
                heap.emalloc(f"fmap.group{group}.enc", encrypted_channels * page)
            if plain_channels:
                heap.malloc(f"fmap.group{group}.plain", plain_channels * page)
        return heap, layouts

    # ------------------------------------------------------------------
    # Functional datapath
    # ------------------------------------------------------------------
    def encrypt_line(self, address: int, data: bytes, counter: int = 0) -> bytes:
        """Encrypt one cache line as the memory controller would."""
        if self._counter_mode:
            return self._encryptor.encrypt_line(address, counter, data)
        return self._encryptor.encrypt_line(address, data)

    def decrypt_line(self, address: int, data: bytes, counter: int = 0) -> bytes:
        if self._counter_mode:
            return self._encryptor.decrypt_line(address, counter, data)
        return self._encryptor.decrypt_line(address, data)

    # ------------------------------------------------------------------
    # Adversary view
    # ------------------------------------------------------------------
    def snooped_view(self) -> SnoopedModel:
        """The bus snooper's haul: plaintext weights, NaN for ciphertext.

        Besides kernel weights, the returned view exposes the per-channel
        auxiliary data the bus also carries — biases and batch-norm
        parameters/statistics — masked per channel exactly as the plan
        encrypts the corresponding feature-map channels.
        """
        weights: dict[str, np.ndarray] = {}
        masks = self.plan.weight_masks()
        named = dict(self.model.named_parameters())
        for layer in self.plan.layers:
            param_name = f"{layer.name}.weight"
            if param_name not in named:
                raise KeyError(f"model has no parameter {param_name!r}")
            values = named[param_name].data.astype(np.float64).copy()
            mask = masks[layer.name]
            values[mask] = np.nan
            weights[layer.name] = values

        def masked(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
            out = values.astype(np.float64).copy()
            out[mask] = np.nan
            return out

        aux_params: dict[str, np.ndarray] = {}
        aux_masks: dict[str, np.ndarray] = {}
        aux_buffers: dict[str, np.ndarray] = {}
        # Biases of weight layers (per output channel).
        for layer_name, bias_mask in self.plan.bias_masks().items():
            param_name = f"{layer_name}.bias"
            if param_name in named:
                aux_params[param_name] = masked(named[param_name].data, bias_mask)
                aux_masks[param_name] = bias_mask
        # Batch-norm affine parameters and running statistics.
        from ..nn.layers import BatchNorm2d

        modules = dict(self.model.named_modules())
        for module_name, channel_mask in self.plan.aux_channel_masks().items():
            module = modules.get(module_name)
            if not isinstance(module, BatchNorm2d):
                continue
            for attr in ("gamma", "beta"):
                param_name = f"{module_name}.{attr}"
                aux_params[param_name] = masked(
                    getattr(module, attr).data, channel_mask
                )
                aux_masks[param_name] = channel_mask
            for attr in ("running_mean", "running_var"):
                buffer_name = f"{module_name}.{attr}"
                aux_buffers[buffer_name] = masked(
                    getattr(module, attr), channel_mask
                )
                aux_masks[buffer_name] = channel_mask

        return SnoopedModel(
            model_name=self.plan.model_name,
            ratio=self.ratio,
            weights=weights,
            masks=masks,
            aux_params=aux_params,
            aux_masks=aux_masks,
            aux_buffers=aux_buffers,
        )


# ----------------------------------------------------------------------
# Payload sealing (the serving layer's crypto entry point)
# ----------------------------------------------------------------------
class SealIntegrityError(ValueError):
    """Authentication failed while unsealing; ``lines`` names the culprits."""

    def __init__(self, lines: list[int]) -> None:
        self.lines = list(lines)
        super().__init__(
            f"verification failed on line(s) {', '.join(map(str, lines))}"
        )


@dataclass(frozen=True)
class SealedPayload:
    """An arbitrary blob sealed line-by-line: ciphertext + per-line tags.

    ``ciphertext`` is the concatenation of the encrypted (zero-padded)
    lines; ``length`` remembers the original payload size so unsealing can
    strip the padding.  Line *i* lives at ``base_address + i*line_bytes``
    and was encrypted/tagged under write counter ``counter`` (addresses
    differ per line, so one counter per payload keeps pads unique).
    """

    base_address: int
    counter: int
    length: int
    line_bytes: int
    ciphertext: bytes
    tags: tuple[bytes, ...] = field(default=())

    @property
    def n_lines(self) -> int:
        return len(self.ciphertext) // self.line_bytes

    def addresses(self) -> list[int]:
        return [
            self.base_address + index * self.line_bytes
            for index in range(self.n_lines)
        ]

    def lines(self) -> list[bytes]:
        return [
            self.ciphertext[offset : offset + self.line_bytes]
            for offset in range(0, len(self.ciphertext), self.line_bytes)
        ]


class LineSealer:
    """Batched seal → authenticate → verify → unseal over cache lines.

    One instance owns the service key: counter-mode encryption
    (:class:`repro.crypto.modes.CounterModeEncryptor`) plus per-line GMAC
    tags (:class:`repro.crypto.mac.LineAuthenticator`), both on the same
    resolved crypto backend.  The line-level methods
    (:meth:`seal_lines` / :meth:`verify_lines` / :meth:`open_lines`) take
    whole batches so concurrent requests can share one keystream/GHASH
    pass — the fast path :mod:`repro.serve.batcher` coalesces into.

    >>> sealer = LineSealer(bytes(range(16)))
    >>> sealed = sealer.seal(b"weights " * 40, base_address=0x1000)
    >>> sealer.unseal(sealed) == b"weights " * 40
    True
    """

    def __init__(
        self,
        key: bytes,
        *,
        tag_bytes: int = MAC_BYTES,
        line_bytes: int = LINE_BYTES,
        backend: str | None = None,
    ) -> None:
        if line_bytes <= 0 or line_bytes % 16:
            raise ValueError("line_bytes must be a positive multiple of 16")
        self.line_bytes = line_bytes
        self._encryptor = CounterModeEncryptor(key, backend=backend)
        self._authenticator = LineAuthenticator(
            key, tag_bytes, backend=self._encryptor.backend
        )
        self.tag_bytes = tag_bytes

    @property
    def backend(self) -> str:
        """Resolved crypto backend name (``scalar`` or ``vector``)."""
        return self._encryptor.backend

    # -- line-level batch entry points ----------------------------------
    def seal_lines(
        self, addresses, counters, lines
    ) -> tuple[list[bytes], list[bytes]]:
        """Encrypt + tag a batch of equal-length lines in two batched passes."""
        ciphertexts = self._encryptor.encrypt_lines(addresses, counters, lines)
        tags = self._authenticator.tag_lines(addresses, counters, ciphertexts)
        return ciphertexts, tags

    def verify_lines(self, addresses, counters, ciphertexts, tags) -> list[bool]:
        """Batched per-line authentication verdicts (no decryption)."""
        return self._authenticator.verify_lines(
            addresses, counters, ciphertexts, tags
        )

    def open_lines(
        self, addresses, counters, ciphertexts, tags
    ) -> tuple[list[bytes], list[bool]]:
        """Verify then decrypt a batch; plaintexts align with verdicts.

        Decryption runs regardless (constant-shape: a tampered batch costs
        the same as a clean one); callers must honour the verdicts.
        """
        verdicts = self.verify_lines(addresses, counters, ciphertexts, tags)
        plaintexts = self._encryptor.decrypt_lines(addresses, counters, ciphertexts)
        return plaintexts, verdicts

    # -- payload-level convenience --------------------------------------
    def _split(self, payload: bytes) -> list[bytes]:
        padded = payload + bytes(-len(payload) % self.line_bytes)
        return [
            padded[offset : offset + self.line_bytes]
            for offset in range(0, len(padded), self.line_bytes)
        ]

    def seal(
        self, payload: bytes, *, base_address: int = 0, counter: int = 1
    ) -> SealedPayload:
        """Seal a blob: split into lines, encrypt, tag — batched end to end."""
        if not payload:
            raise ValueError("cannot seal an empty payload")
        lines = self._split(payload)
        addresses = [
            base_address + index * self.line_bytes for index in range(len(lines))
        ]
        counters = [counter] * len(lines)
        ciphertexts, tags = self.seal_lines(addresses, counters, lines)
        return SealedPayload(
            base_address=base_address,
            counter=counter,
            length=len(payload),
            line_bytes=self.line_bytes,
            ciphertext=b"".join(ciphertexts),
            tags=tuple(tags),
        )

    def verify(self, sealed: SealedPayload) -> list[bool]:
        """Per-line authentication verdicts for a sealed payload."""
        addresses = sealed.addresses()
        counters = [sealed.counter] * sealed.n_lines
        return self.verify_lines(
            addresses, counters, sealed.lines(), list(sealed.tags)
        )

    def unseal(self, sealed: SealedPayload) -> bytes:
        """Verify + decrypt a sealed payload back to the original bytes.

        Raises :class:`SealIntegrityError` naming every line whose tag
        fails — nothing is returned from a tampered payload.
        """
        if sealed.line_bytes != self.line_bytes:
            raise ValueError(
                f"payload uses {sealed.line_bytes}-byte lines, "
                f"sealer uses {self.line_bytes}"
            )
        if len(sealed.tags) != sealed.n_lines:
            raise SealIntegrityError(list(range(sealed.n_lines)))
        addresses = sealed.addresses()
        counters = [sealed.counter] * sealed.n_lines
        plaintexts, verdicts = self.open_lines(
            addresses, counters, sealed.lines(), list(sealed.tags)
        )
        bad = [index for index, ok in enumerate(verdicts) if not ok]
        if bad:
            raise SealIntegrityError(bad)
        return b"".join(plaintexts)[: sealed.length]
