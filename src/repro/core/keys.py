"""Content-addressed keys for cacheable/checkpointable work units.

Both experiment runners key their work on a sha256 hash of a canonical
JSON encoding of everything the computation depends on: the simulation
cache (:mod:`repro.sim.parallel`) hashes ``(GpuConfig, LayerTraffic,
tile)`` and the security-sweep checkpoints (:mod:`repro.attacks.sweep`)
hash the cell's experiment configuration, seeds, ratio and adversary
variant.  This module is the shared encoding so the two stay consistent:
dataclasses become sorted field dicts, enums their values, tuples become
lists, and everything else must already be JSON-representable (falling
back to ``repr`` keeps exotic values stable rather than unhashable).

>>> from dataclasses import dataclass
>>> @dataclass(frozen=True)
... class Cfg:
...     depth: int
...     tags: tuple
>>> canonical_encode(Cfg(3, ("a", "b")))
{'depth': 3, 'tags': ['a', 'b']}
>>> key = content_key({"cfg": Cfg(3, ("a", "b"))})
>>> key == content_key({"cfg": Cfg(3, ("a", "b"))})
True
>>> key == content_key({"cfg": Cfg(4, ("a", "b"))})
False
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

__all__ = ["canonical_encode", "content_key"]


def canonical_encode(value: object) -> object:
    """Recursively encode ``value`` into JSON-able primitives for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [canonical_encode(item) for item in value]
    if isinstance(value, dict):
        return {str(k): canonical_encode(v) for k, v in sorted(value.items())}
    return value


def content_key(payload: object) -> str:
    """sha256 hex digest of the canonical JSON encoding of ``payload``."""
    encoded = canonical_encode(payload)
    blob = json.dumps(encoded, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()
