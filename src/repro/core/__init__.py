"""SEAL core: criticality-aware smart encryption (the paper's contribution)."""

from .analysis import TrafficSummary, per_layer_encrypted_fraction, summarize_traffic
from .importance import (
    fc_row_l1,
    importance_profile,
    kernel_row_l1,
    rank_rows,
    select_encrypted_rows,
)
from .memory import Allocation, HeapError, SecureHeap
from .plan import (
    DEFAULT_ENCRYPTION_RATIO,
    LayerTraffic,
    ModelEncryptionPlan,
    PlanError,
    PoolLayerPlan,
    WeightLayerPlan,
)
from .plan import AuxParamPlan
from .pruning import ABLATION_POLICIES, RowAblationResult, ablate_kernel_rows, row_ablation_study
from .seal import LayerLayout, SealScheme, SnoopedModel
from .serialize import load_plan, plan_from_dict, plan_to_dict, save_plan

__all__ = [
    "TrafficSummary",
    "per_layer_encrypted_fraction",
    "summarize_traffic",
    "fc_row_l1",
    "importance_profile",
    "kernel_row_l1",
    "rank_rows",
    "select_encrypted_rows",
    "Allocation",
    "HeapError",
    "SecureHeap",
    "DEFAULT_ENCRYPTION_RATIO",
    "LayerTraffic",
    "ModelEncryptionPlan",
    "PlanError",
    "PoolLayerPlan",
    "WeightLayerPlan",
    "LayerLayout",
    "SealScheme",
    "SnoopedModel",
    "AuxParamPlan",
    "ABLATION_POLICIES",
    "RowAblationResult",
    "ablate_kernel_rows",
    "row_ablation_study",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
]
