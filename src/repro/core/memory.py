"""Secure heap with the paper's ``emalloc()`` programming primitive.

Section III-A: *"we expose a new programming primitive, emalloc(), to the
high-level program ... The memory space allocated by emalloc() needs to be
encrypted.  The memory space allocated by existing malloc() does not."*

:class:`SecureHeap` models the accelerator's DRAM address space.  The SEAL
runtime allocates each weight tensor and feature map either with
:meth:`emalloc` (encrypted region) or :meth:`malloc` (bypass region); the
memory controller then routes requests through or around the AES engine by
address range.  The heap also produces the address layout that the trace
generator uses, so simulated requests carry real addresses with correct
criticality tags.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Allocation", "SecureHeap", "HeapError"]


class HeapError(RuntimeError):
    """Raised on invalid allocations or address lookups."""


@dataclass(frozen=True)
class Allocation:
    """One allocated region of accelerator memory."""

    name: str
    address: int
    size: int
    encrypted: bool

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end

    def __repr__(self) -> str:
        kind = "emalloc" if self.encrypted else "malloc"
        return f"Allocation({self.name!r}, {kind}, 0x{self.address:x}+{self.size})"


class SecureHeap:
    """Bump allocator over a modelled DRAM address space.

    Parameters
    ----------
    base:
        First usable address.
    alignment:
        Allocation alignment; defaults to the 128-byte memory-access
        granularity of the modelled GDDR5 system so no cache line ever
        spans an encrypted/plaintext boundary.
    capacity:
        Optional size limit (bytes); ``None`` means unbounded.
    """

    def __init__(
        self,
        base: int = 0x1000_0000,
        alignment: int = 128,
        capacity: int | None = None,
    ) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise HeapError("alignment must be a positive power of two")
        self.base = base
        self.alignment = alignment
        self.capacity = capacity
        self._cursor = base
        self._allocations: list[Allocation] = []
        self._starts: list[int] = []
        self._by_name: dict[str, Allocation] = {}

    # ------------------------------------------------------------------
    def _allocate(self, name: str, size: int, encrypted: bool) -> Allocation:
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        if name in self._by_name:
            raise HeapError(f"allocation name {name!r} already in use")
        aligned = (size + self.alignment - 1) // self.alignment * self.alignment
        if self.capacity is not None and self._cursor + aligned > self.base + self.capacity:
            raise HeapError(
                f"out of memory: need {aligned} bytes, "
                f"{self.base + self.capacity - self._cursor} available"
            )
        allocation = Allocation(name, self._cursor, aligned, encrypted)
        self._cursor += aligned
        self._allocations.append(allocation)
        self._starts.append(allocation.address)
        self._by_name[name] = allocation
        return allocation

    def emalloc(self, name: str, size: int) -> Allocation:
        """Allocate an **encrypted** region (the paper's new primitive)."""
        return self._allocate(name, size, encrypted=True)

    def malloc(self, name: str, size: int) -> Allocation:
        """Allocate a plaintext region that bypasses the AES engine."""
        return self._allocate(name, size, encrypted=False)

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Allocation:
        """The allocation containing ``address`` (O(log n))."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index >= 0:
            allocation = self._allocations[index]
            if allocation.contains(address):
                return allocation
        raise HeapError(f"address 0x{address:x} is not allocated")

    def is_encrypted(self, address: int) -> bool:
        """Criticality of the line at ``address`` — the memory controller's
        routing decision."""
        return self.lookup(address).encrypted

    def by_name(self, name: str) -> Allocation:
        try:
            return self._by_name[name]
        except KeyError:
            raise HeapError(f"no allocation named {name!r}") from None

    def __iter__(self) -> Iterator[Allocation]:
        return iter(self._allocations)

    def __len__(self) -> int:
        return len(self._allocations)

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.base

    @property
    def encrypted_bytes(self) -> int:
        return sum(a.size for a in self._allocations if a.encrypted)

    @property
    def plaintext_bytes(self) -> int:
        return sum(a.size for a in self._allocations if not a.encrypted)
