"""Criticality measurement: kernel-row ℓ1-norm importance (Section III-A).

The paper measures the relative importance of each *kernel row* — the slice
of a CONV layer's kernel matrix that multiplies one input channel — by the
sum of absolute weights (ℓ1-norm).  Rows with small sums produce weakly
activated feature maps (Li et al., ICLR'17) and can be left unencrypted
without weakening the model's security.

For a CONV weight of shape ``(out_channels, in_channels, k, k)`` kernel row
``j`` is ``weight[:, j, :, :]``.  For an FC weight of shape ``(out, in)``
the analogue of row ``j`` is column ``weight[:, j]`` (one per input
feature); when the FC input is a flattened feature map, features are grouped
per source channel so that channel-level encryption decisions stay aligned
with the CONV layers upstream.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kernel_row_l1",
    "fc_row_l1",
    "rank_rows",
    "select_encrypted_rows",
    "importance_profile",
]


def kernel_row_l1(weight: np.ndarray) -> np.ndarray:
    """Per-kernel-row ℓ1-norms of a CONV weight.

    Parameters
    ----------
    weight:
        Array of shape ``(out_channels, in_channels, k, k)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(in_channels,)``; entry ``j`` is ``||weight[:, j]||_1``.
    """
    weight = np.asarray(weight)
    if weight.ndim != 4:
        raise ValueError(f"CONV weight must be 4-D, got shape {weight.shape}")
    return np.abs(weight).sum(axis=(0, 2, 3))


def fc_row_l1(weight: np.ndarray, channel_group: int = 1) -> np.ndarray:
    """Per-input-channel ℓ1-norms of an FC weight.

    Parameters
    ----------
    weight:
        Array of shape ``(out_features, in_features)``.
    channel_group:
        Number of consecutive input features fed by one upstream channel
        (``H*W`` of the flattened feature map; 1 for vector inputs).

    Returns
    -------
    numpy.ndarray
        Shape ``(in_features // channel_group,)``.
    """
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError(f"FC weight must be 2-D, got shape {weight.shape}")
    if channel_group <= 0:
        raise ValueError("channel_group must be positive")
    out_features, in_features = weight.shape
    if in_features % channel_group:
        raise ValueError(
            f"in_features={in_features} not divisible by channel_group={channel_group}"
        )
    per_feature = np.abs(weight).sum(axis=0)
    return per_feature.reshape(-1, channel_group).sum(axis=1)


def rank_rows(importance: np.ndarray) -> np.ndarray:
    """Row indices sorted by decreasing importance (ties: lower index first).

    A deterministic tie-break keeps encryption plans reproducible across
    runs, which matters because the plan is baked into the deployed binary.
    """
    importance = np.asarray(importance, dtype=np.float64)
    if importance.ndim != 1:
        raise ValueError("importance must be 1-D")
    # argsort of (-importance, index): stable sort gives the index tie-break.
    return np.argsort(-importance, kind="stable")


def select_encrypted_rows(importance: np.ndarray, ratio: float) -> np.ndarray:
    """Boolean mask of the rows to encrypt at the given encryption ratio.

    The paper defines the encryption ratio as "the ratio of encrypted weight
    parameters to all weight parameters in each layer", realised by taking
    the ``ceil(ratio * n)`` rows with the largest ℓ1-norms.  ``ratio`` of 0
    encrypts nothing, 1 encrypts everything.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    importance = np.asarray(importance, dtype=np.float64)
    n = importance.shape[0]
    count = int(np.ceil(ratio * n)) if ratio > 0 else 0
    count = min(count, n)
    mask = np.zeros(n, dtype=bool)
    if count:
        mask[rank_rows(importance)[:count]] = True
    return mask


def importance_profile(importance: np.ndarray) -> dict[str, float]:
    """Summary statistics of a layer's row-importance distribution.

    Useful for the ablation benches: a layer where importance is flat gains
    little security from selective encryption, while a heavy-tailed layer
    concentrates criticality in few rows.
    """
    importance = np.asarray(importance, dtype=np.float64)
    total = importance.sum()
    sorted_desc = np.sort(importance)[::-1]
    cumulative = np.cumsum(sorted_desc) / total if total > 0 else np.zeros_like(sorted_desc)
    half_index = int(np.searchsorted(cumulative, 0.5)) + 1 if total > 0 else 0
    return {
        "mean": float(importance.mean()),
        "std": float(importance.std()),
        "max": float(importance.max()),
        "min": float(importance.min()),
        "rows_for_half_mass": float(half_index),
        "gini": _gini(importance),
    }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative 1-D distribution."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.size
    total = values.sum()
    if n == 0 or total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * (index * values).sum() / (n * total)) - (n + 1.0) / n)
