"""Text run reports from a metrics + trace document pair.

``python -m repro report --metrics m.json --trace t.json`` renders one
human-readable summary of a finished run: where wall-clock went (top-N
spans by *self* time — a span's duration minus its children's), what the
caches did, which crypto datapath ran and how fast, whether the fault
campaign held its contract, and how hard the hardened runner had to work
(retries, timeouts, quarantined checkpoints).  Either document may be
omitted; the report renders the sections it has inputs for.

The span tree and the counters describe the same run from two angles, so
the report also cross-checks them where both sides record the same event
(kernel simulations, sweep cells, fault campaigns) — a mismatch usually
means the two files came from different runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .metrics import METRICS_SCHEMA
from .trace import TRACE_SCHEMA

__all__ = [
    "SpanAggregate",
    "aggregate_spans",
    "load_document",
    "render_report",
]


@dataclass
class SpanAggregate:
    """All spans of one name, folded: counts, total and self durations."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate_spans(trace: dict[str, object]) -> list[SpanAggregate]:
    """Per-name span aggregates, sorted by descending self-time.

    Self-time is a span's duration minus the summed durations of its
    direct children — the share of wall-clock spent in the span's own
    code rather than delegated further down.  Negative self-times (spans
    whose children ran concurrently, e.g. a dispatch span over a worker
    pool) clamp to zero so the ranking stays meaningful.

    Spans flagged ``attrs["lane"]`` are visualisation lanes (the per-SM
    occupancy rows, whose durations are scaled busy shares summed over
    every SM, not wall-clock) — they are excluded from the aggregation
    entirely so they neither rank nor eat their parent's self-time.
    """
    spans = [
        span
        for span in (trace.get("spans") or ())  # type: ignore[union-attr]
        if not (span.get("attrs") or {}).get("lane")
    ]
    child_seconds: dict[object, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                span.get("duration", 0.0)
            )
    by_name: dict[str, SpanAggregate] = {}
    for span in spans:
        name = str(span.get("name"))
        duration = float(span.get("duration", 0.0))
        self_time = max(0.0, duration - child_seconds.get(span.get("span_id"), 0.0))
        aggregate = by_name.setdefault(name, SpanAggregate(name))
        aggregate.count += 1
        aggregate.total_seconds += duration
        aggregate.self_seconds += self_time
    return sorted(
        by_name.values(), key=lambda a: (-a.self_seconds, -a.total_seconds, a.name)
    )


def load_document(path: str | Path, expected_schema: str) -> dict[str, object]:
    """Load and schema-check one JSON document."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or document.get("schema") != expected_schema:
        raise ValueError(f"{path} is not a {expected_schema} document")
    return document


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def _trace_sections(trace: dict[str, object], top: int) -> list[str]:
    from ..eval.reporting import ascii_table  # deferred: avoids import cycle

    spans = list(trace.get("spans") or ())  # type: ignore[arg-type]
    aggregates = aggregate_spans(trace)
    wall = sum(
        float(span.get("duration", 0.0))
        for span in spans
        if span.get("parent_id") is None
    )
    processes = sorted({str(span.get("pid", "main")) for span in spans})
    lines = [
        f"trace {trace.get('trace_id')}: {len(spans)} spans across "
        f"{len(processes)} process(es) ({', '.join(processes)}), "
        f"root wall-clock {wall:.3f}s"
    ]
    if not aggregates:
        # A trace with no (non-lane) spans happens when tracing was enabled
        # but the command recorded nothing; an empty ranking table would
        # read as missing data, so say what happened instead.
        lines.append("no spans recorded — self-time ranking skipped")
        return lines
    rows = []
    for aggregate in aggregates[:top]:
        share = aggregate.self_seconds / wall if wall else 0.0
        rows.append(
            (
                aggregate.name,
                aggregate.count,
                _format_seconds(aggregate.total_seconds),
                _format_seconds(aggregate.self_seconds),
                _format_seconds(aggregate.mean_seconds),
                f"{share:6.1%}",
            )
        )
    lines.append(
        f"top {min(top, len(aggregates))} spans by self-time:\n"
        + ascii_table(
            ("span", "count", "total", "self", "mean", "% wall"), rows
        )
    )
    return lines


def _counter(metrics: dict[str, object], name: str) -> int:
    counters = metrics.get("counters") or {}
    return int(counters.get(name, 0))  # type: ignore[union-attr]


def _derived(metrics: dict[str, object], name: str) -> float | None:
    derived = metrics.get("derived") or {}
    value = derived.get(name)  # type: ignore[union-attr]
    return None if value is None else float(value)


def _metrics_sections(metrics: dict[str, object]) -> list[str]:
    lines: list[str] = []

    hit_rate = _derived(metrics, "cache_hit_rate")
    hits = _counter(metrics, "sim.cache.hits")
    misses = _counter(metrics, "sim.cache.misses")
    if hits or misses or hit_rate:
        lines.append(
            f"sim cache: {hits} hits / {misses} misses "
            f"(hit rate {hit_rate or 0.0:.1%})"
        )

    sim_backends = [
        name.rsplit(".", 1)[1]
        for name in (metrics.get("counters") or {})  # type: ignore[union-attr]
        if name.startswith("sim.backend.")
    ]
    if sim_backends:
        runs = sum(
            _counter(metrics, f"sim.backend.{name}") for name in sim_backends
        )
        lines.append(
            f"sim backend(s): {', '.join(sorted(sim_backends))} "
            f"({runs} kernel run(s))"
        )

    backends = [
        name.rsplit(".", 1)[1]
        for name in (metrics.get("counters") or {})  # type: ignore[union-attr]
        if name.startswith("crypto.backend.")
    ]
    if backends:
        parts = [f"crypto backend(s): {', '.join(sorted(backends))}"]
        ctr_rate = _derived(metrics, "crypto_ctr_blocks_per_second")
        if ctr_rate is not None:
            parts.append(f"CTR {ctr_rate:,.0f} blocks/s")
        gmac_rate = _derived(metrics, "crypto_gmac_tags_per_second")
        if gmac_rate is not None:
            parts.append(f"GMAC {gmac_rate:,.0f} tags/s")
        lines.append(" | ".join(parts))

    injected = _counter(metrics, "faults.injected")
    if injected:
        detection = _derived(metrics, "fault_detection_rate") or 0.0
        lines.append(
            f"faults: {injected} injected, detection rate {detection:.1%}, "
            f"{_counter(metrics, 'faults.silent.plaintext')} silent plaintext "
            f"corruption(s), {_counter(metrics, 'faults.undetected.encrypted')} "
            "undetected on encrypted lines"
        )

    attempts = _counter(metrics, "runner.attempts")
    if attempts:
        retry_rate = _derived(metrics, "runner_retry_rate") or 0.0
        lines.append(
            f"runner: {attempts} attempt(s), "
            f"{_counter(metrics, 'runner.retries')} retri(es) "
            f"(rate {retry_rate:.1%}), "
            f"{_counter(metrics, 'runner.timeouts')} timeout(s), "
            f"{_counter(metrics, 'runner.crashes')} crash(es), "
            f"{_counter(metrics, 'runner.pool_restarts')} pool restart(s)"
        )

    total = _counter(metrics, "sweep.cells.total")
    if total:
        lines.append(
            f"sweep: {total} cell(s) — "
            f"{_counter(metrics, 'sweep.cells.resumed')} resumed, "
            f"{_counter(metrics, 'sweep.cells.computed')} computed, "
            f"{_counter(metrics, 'sweep.checkpoints.written')} checkpoint(s) "
            f"written, {_counter(metrics, 'sweep.checkpoints.quarantined')} "
            "quarantined"
        )
    return lines


#: (span name, counter name) pairs that count the same underlying event —
#: the basis of the trace/metrics cross-check.
_CONSISTENCY_PAIRS = (
    ("sim.kernel", "sim.kernel_runs"),
    ("sweep.cell", "sweep.cells.computed"),
    ("train.epoch", "train.epochs"),
    ("attack.augment.round", "attack.augmentation_rounds"),
)


def _consistency_sections(
    trace: dict[str, object], metrics: dict[str, object]
) -> list[str]:
    counts: dict[str, int] = {}
    for span in trace.get("spans") or ():  # type: ignore[union-attr]
        name = str(span.get("name"))
        counts[name] = counts.get(name, 0) + 1
    checks: list[str] = []
    for span_name, counter_name in _CONSISTENCY_PAIRS:
        span_count = counts.get(span_name, 0)
        counter = _counter(metrics, counter_name)
        if not span_count and not counter:
            continue
        verdict = "ok" if span_count == counter else "MISMATCH"
        checks.append(
            f"  {span_name} spans {span_count} vs {counter_name} "
            f"{counter}: {verdict}"
        )
    if not checks:
        return []
    return ["trace/metrics consistency:\n" + "\n".join(checks)]


def render_report(
    metrics: dict[str, object] | None = None,
    trace: dict[str, object] | None = None,
    *,
    top: int = 10,
) -> str:
    """Render the run report (see the module docstring for the sections)."""
    if metrics is not None and metrics.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"metrics document is not {METRICS_SCHEMA}")
    if trace is not None and trace.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"trace document is not {TRACE_SCHEMA}")
    if metrics is None and trace is None:
        raise ValueError("report needs a metrics and/or trace document")
    sections: list[str] = ["run report\n" + "=" * len("run report")]
    if trace is not None:
        sections += _trace_sections(trace, top)
    if metrics is not None:
        sections += _metrics_sections(metrics)
    if trace is not None and metrics is not None:
        sections += _consistency_sections(trace, metrics)
    return "\n\n".join(sections)
