"""Lightweight observability: counters/timers, hierarchical tracing, and
JSON emission (``repro.metrics/v1`` + ``repro.trace/v1``)."""

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    TimerStat,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from .report import aggregate_spans, render_report
from .trace import (
    TRACE_ENV_VAR,
    TRACE_SCHEMA,
    Span,
    SpanEvent,
    Tracer,
    chrome_trace_events,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_tracer,
    set_tracer,
    tracing_enabled,
    worker_tracer,
    write_chrome_trace,
    write_trace,
    write_trace_document,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "TimerStat",
    "get_metrics",
    "reset_metrics",
    "set_metrics",
    "TRACE_ENV_VAR",
    "TRACE_SCHEMA",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace_events",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "reset_tracer",
    "set_tracer",
    "tracing_enabled",
    "worker_tracer",
    "write_chrome_trace",
    "write_trace",
    "write_trace_document",
    "aggregate_spans",
    "render_report",
]
