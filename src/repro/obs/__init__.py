"""Lightweight observability: counters, timers, and JSON metric emission."""

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    TimerStat,
    get_metrics,
    reset_metrics,
    set_metrics,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "TimerStat",
    "get_metrics",
    "reset_metrics",
    "set_metrics",
]
