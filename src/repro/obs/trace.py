"""Hierarchical tracing: spans, cross-process re-rooting, two exporters.

Where :mod:`repro.obs.metrics` answers *how much* (flat counters and timer
aggregates), this module answers *where*: a :class:`Span` is one named,
timed region of a run — a scheme comparison, one layer's kernel
simulation, a sweep cell, a crypto batch — with a parent pointer, so a
whole run serialises as a tree and a profile viewer can show exactly where
wall-clock goes.  The design mirrors :class:`~repro.obs.metrics
.MetricsRegistry`: one process-wide :class:`Tracer` behind a lock,
**disabled by default**, with a no-op fast path cheap enough to leave the
instrumentation permanently wired into the simulator's hot paths (the
guard test in ``tests/obs/test_trace_overhead.py`` pins the disabled
overhead below 2 % of a small sim benchmark).

Worker propagation
------------------
The parallel fan-outs (:func:`repro.sim.parallel.run_units`,
:func:`repro.attacks.sweep.run_sweep`) run units in worker processes.  A
worker builds its own enabled tracer (workers detect the parent's tracing
request through the :data:`TRACE_ENV_VAR` environment variable, which
survives both fork and spawn), serialises its finished spans with
:meth:`Tracer.span_dicts`, and ships them back next to its metrics
snapshot.  The parent then calls :meth:`Tracer.adopt`, which **re-roots**
the worker's span trees: every root span's ``parent_id`` is rewritten to
the dispatching span's id and every span joins the parent's trace, so the
merged document reads as one tree no matter how many processes produced
it.  Each worker keeps its own ``pid`` label (``worker-<os pid>``) so the
Chrome export renders one process row per worker.

Emission
--------
Two formats, both derived from the same :meth:`Tracer.snapshot` document:

* :func:`write_trace` — ``repro.trace/v1`` JSON (schema in
  ``docs/tracing.md``), the machine-readable record ``repro report``
  consumes;
* :func:`write_chrome_trace` — Chrome trace-event format, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``, with
  process/thread name metadata rows.

>>> tracer = Tracer(enabled=True, process="doctest")
>>> with tracer.span("outer") as outer:
...     with tracer.span("inner", attrs={"layer": "conv1"}) as inner:
...         inner.event("cache.miss", {"address": 64})
>>> [s.name for s in tracer.finished_spans()]
['inner', 'outer']
>>> tracer.finished_spans()[0].parent_id == outer.span_id
True
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_ENV_VAR",
    "SpanEvent",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "worker_tracer",
    "chrome_trace_events",
    "write_trace",
    "write_chrome_trace",
    "write_trace_document",
]

#: Version tag written into every emitted trace document.
TRACE_SCHEMA = "repro.trace/v1"

#: Set (to any non-empty value) while tracing is on, so worker processes —
#: forked *or* spawned after the flag is set — know to record spans too.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Per-span cap on recorded events; extras are dropped (the span notes how
#: many) so a pathological loop cannot balloon a trace document.
MAX_EVENTS_PER_SPAN = 256


@dataclass
class SpanEvent:
    """One point-in-time annotation inside a span (cache miss, injection)."""

    name: str
    time: float  # wall-clock epoch seconds
    attrs: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "time": self.time, "attrs": self.attrs}


@dataclass
class Span:
    """One named, timed region of a run.

    ``start`` is wall-clock epoch seconds (comparable across processes on
    one machine); ``duration`` is measured with the monotonic clock, so it
    is immune to wall-clock steps.  ``pid``/``tid`` are *display* rows for
    the Chrome export (process label, thread/SM label) — they take no part
    in the tree structure, which lives entirely in ``parent_id``.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    duration: float = 0.0
    attrs: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    pid: str = "main"
    tid: str = "main"
    dropped_events: int = 0
    _t0: float = field(default=0.0, repr=False, compare=False)

    def set_attr(self, name: str, value: object) -> None:
        self.attrs[name] = value

    def event(self, name: str, attrs: dict[str, object] | None = None) -> None:
        """Record a timestamped event on this span (bounded per span)."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.dropped_events += 1
            return
        self.events.append(SpanEvent(name, time.time(), dict(attrs or {})))

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dropped_events:
            out["dropped_events"] = self.dropped_events
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Span":
        span = cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else str(data["parent_id"])
            ),
            start=float(data["start"]),  # type: ignore[arg-type]
            duration=float(data.get("duration", 0.0)),  # type: ignore[arg-type]
            attrs=dict(data.get("attrs") or {}),  # type: ignore[arg-type]
            pid=str(data.get("pid", "main")),
            tid=str(data.get("tid", "main")),
            dropped_events=int(data.get("dropped_events", 0)),  # type: ignore[arg-type]
        )
        for event in data.get("events") or ():  # type: ignore[union-attr]
            span.events.append(
                SpanEvent(
                    name=str(event["name"]),
                    time=float(event["time"]),
                    attrs=dict(event.get("attrs") or {}),
                )
            )
        return span


class NullSpan:
    """No-op stand-in yielded while tracing is disabled.

    Falsy, so instrumentation can skip attribute/event preparation with a
    bare ``if span:`` — the pattern every hot path in this repo uses.
    """

    __slots__ = ()
    span_id = None

    def __bool__(self) -> bool:
        return False

    def set_attr(self, name: str, value: object) -> None:
        pass

    def event(self, name: str, attrs: dict[str, object] | None = None) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Process-wide span recorder with a thread-local active-span stack.

    Finished spans accumulate (bounded by ``max_spans``) in completion
    order; the active stack is per thread, so concurrent threads each get
    their own nesting chain while sharing one output list.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        process: str = "main",
        trace_id: str | None = None,
        max_spans: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.process = process
        self.trace_id = trace_id or f"trace-{os.getpid():x}-{id(self) & 0xFFFF:x}"
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- recording ------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):x}"

    def current(self) -> Span | None:
        """The innermost open span on this thread (None outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self,
        name: str,
        attrs: dict[str, object] | None = None,
        *,
        tid: str | None = None,
    ) -> Iterator[Span | NullSpan]:
        """Open a child span of the thread's current span for the body.

        Disabled tracers yield the shared :data:`NULL_SPAN` without
        recording anything — the fast path costs one attribute check.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=time.time(),
            attrs=dict(attrs or {}),
            pid=self.process,
            tid=tid if tid is not None else threading.current_thread().name,
            _t0=time.perf_counter(),
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span._t0
            stack.pop()
            self._store(span)

    def event(self, name: str, attrs: dict[str, object] | None = None) -> None:
        """Record an event on the current span (no-op outside any span)."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.event(name, attrs)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        attrs: dict[str, object] | None = None,
        tid: str | None = None,
        parent: Span | None = None,
    ) -> Span | NullSpan:
        """Append an externally-timed span (e.g. a simulated SM's occupancy
        window reconstructed after the fact) under ``parent`` or the
        current span."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self.current()
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=start,
            duration=duration,
            attrs=dict(attrs or {}),
            pid=self.process,
            tid=tid if tid is not None else threading.current_thread().name,
        )
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self._spans.append(span)

    # -- cross-process propagation --------------------------------------
    def adopt(
        self,
        spans: Sequence[dict[str, object]],
        *,
        parent: Span | None = None,
    ) -> int:
        """Re-root serialised worker spans under ``parent`` (default: the
        current span) and fold them into this tracer.

        Root spans of the incoming forest — those whose ``parent_id`` is
        ``None`` or points outside the batch — are re-parented onto the
        dispatching span; every span joins this tracer's trace id.  The
        workers' own ``pid`` labels are preserved, which is what gives the
        Chrome export its one-row-per-worker layout.  Returns the number
        of spans adopted.
        """
        if not self.enabled or not spans:
            return 0
        if parent is None:
            parent = self.current()
        parent_id = parent.span_id if parent is not None else None
        local_ids = {span.get("span_id") for span in spans}
        adopted = 0
        for data in spans:
            span = Span.from_dict(data)
            span.trace_id = self.trace_id
            if span.parent_id is None or span.parent_id not in local_ids:
                span.parent_id = parent_id
            self._store(span)
            adopted += 1
        return adopted

    # -- reading / serialising ------------------------------------------
    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def span_dicts(self) -> list[dict[str, object]]:
        """Finished spans as JSON-ready dicts (the worker wire format)."""
        return [span.to_dict() for span in self.finished_spans()]

    def snapshot(self) -> dict[str, object]:
        """JSON-ready ``repro.trace/v1`` document of everything recorded."""
        document: dict[str, object] = {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "process": self.process,
            "spans": self.span_dicts(),
        }
        if self.dropped_spans:
            document["dropped_spans"] = self.dropped_spans
        return document

    def emit(self, path: str | Path) -> Path:
        """Write the ``repro.trace/v1`` snapshot as JSON to ``path``."""
        return write_trace(self.snapshot(), path)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped_spans = 0


# ----------------------------------------------------------------------
# Process-wide default tracer
# ----------------------------------------------------------------------
_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all instrumentation hooks record into."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one.

    Worker processes install a fresh enabled tracer so their spans can be
    snapshotted and re-rooted into the parent without duplication.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous


def reset_tracer() -> Tracer:
    """Clear the process-wide tracer (tests, CLI runs) and return it."""
    _GLOBAL.reset()
    return _GLOBAL


def tracing_enabled() -> bool:
    return _GLOBAL.enabled


def enable_tracing(process: str = "main") -> Tracer:
    """Turn the process-wide tracer on (fresh), and flag workers via env.

    Setting :data:`TRACE_ENV_VAR` here is what propagates the request into
    pool workers regardless of start method — forked children inherit the
    current environment, spawned children receive it at exec time.
    """
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = True
    tracer.process = process
    os.environ[TRACE_ENV_VAR] = "1"
    return tracer


def disable_tracing() -> Tracer:
    """Turn the process-wide tracer off and clear the worker env flag."""
    tracer = get_tracer()
    tracer.enabled = False
    os.environ.pop(TRACE_ENV_VAR, None)
    return tracer


@contextmanager
def worker_tracer() -> Iterator[Tracer | None]:
    """Worker-process context: a fresh tracer when the parent is tracing.

    Yields the local tracer (its ``span_dicts()`` are the payload to ship
    back) or ``None`` when tracing is off — the common case, costing one
    environment lookup.  Used by the ``_pool_worker`` entry points.
    """
    if not os.environ.get(TRACE_ENV_VAR):
        yield None
        return
    local = Tracer(enabled=True, process=f"worker-{os.getpid()}")
    previous = set_tracer(local)
    try:
        yield local
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def write_trace(document: dict[str, object], path: str | Path) -> Path:
    """Write a ``repro.trace/v1`` document as JSON (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def chrome_trace_events(document: dict[str, object]) -> list[dict[str, object]]:
    """Convert a ``repro.trace/v1`` document to Chrome trace events.

    Spans become complete events (``ph: "X"``), span events become instants
    (``ph: "i"``), and every distinct ``pid``/``tid`` label gets a
    ``process_name``/``thread_name`` metadata record so Perfetto and
    ``chrome://tracing`` show readable rows.  Timestamps are microseconds
    relative to the earliest span, so traces start near zero.
    """
    spans = [Span.from_dict(data) for data in document.get("spans") or ()]  # type: ignore[union-attr]
    base = min((span.start for span in spans), default=0.0)

    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, object]] = []

    def pid_of(label: str) -> int:
        if label not in pids:
            pids[label] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[label],
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return pids[label]

    def tid_of(pid_label: str, label: str) -> int:
        key = (pid_label, label)
        if key not in tids:
            tids[key] = sum(1 for p, _ in tids if p == pid_label) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(pid_label),
                    "tid": tids[key],
                    "args": {"name": label},
                }
            )
        return tids[key]

    for span in spans:
        pid = pid_of(span.pid)
        tid = tid_of(span.pid, span.tid)
        args: dict[str, object] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for point in span.events:
            events.append(
                {
                    "name": point.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": round((point.time - base) * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": dict(point.attrs),
                }
            )
    return events


def write_chrome_trace(document: dict[str, object], path: str | Path) -> Path:
    """Write a document in Chrome trace-event format (Perfetto-loadable)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(document),
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "trace_id": document.get("trace_id")},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_trace_document(
    document: dict[str, object], path: str | Path, format: str = "json"
) -> Path:
    """Dispatch on export format (``json`` | ``chrome``)."""
    if format == "json":
        return write_trace(document, path)
    if format == "chrome":
        return write_chrome_trace(document, path)
    raise ValueError(f"unknown trace format {format!r}; choose json or chrome")
