"""Counters, wall-clock timers, and cache statistics with JSON emission.

The experiment harness (:mod:`repro.sim.parallel`, :func:`repro.sim.runner
.run_model`, ``repro.eval.experiments``, the security sweep in
:mod:`repro.attacks.sweep` and substitute training in
:mod:`repro.nn.training` / :mod:`repro.attacks.augmentation`) records what
it does into a process-wide :class:`MetricsRegistry`.  A registry serialises to a stable
JSON document (``schema`` = :data:`METRICS_SCHEMA`) so benchmark scripts and
the CLI can persist machine-readable run trajectories::

    {
      "schema": "repro.metrics/v1",
      "counters": {"sim.kernel_runs": 110, "sim.cache.hits": 35, ...},
      "timers": {"sim.kernel": {"count": 75, "total_seconds": 1.9, ...}},
      "derived": {"cache_hit_rate": 0.318, ...}
    }

Counter names are dotted paths (``component.event``).  The registry is
deliberately tiny — a dict of ints and a dict of timer aggregates behind a
lock — so hooking it into the simulator's hot path costs microseconds.
Worker processes build their own registries and the parent merges their
snapshots (see :meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "METRICS_SCHEMA",
    "RESERVOIR_SIZE",
    "TimerStat",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]

#: Version tag written into every emitted metrics document.
METRICS_SCHEMA = "repro.metrics/v1"

#: Bounded per-timer reservoir feeding the p50/p95/p99 estimates — large
#: enough for stable tail estimates on the workloads here, small enough
#: that a serialised timer stays a few hundred bytes.
RESERVOIR_SIZE = 64


@dataclass
class TimerStat:
    """Aggregate of one named timer: count / total / min / max seconds,
    plus a bounded reservoir sample feeding p50/p95/p99 estimates.

    The reservoir holds at most :data:`RESERVOIR_SIZE` observations,
    selected by standard reservoir sampling with a deterministic RNG (the
    same observation sequence always keeps the same sample, so parallel
    and serial runs of identical work serialise identically).  Quantiles
    are nearest-rank estimates over the sample — exact below
    ``RESERVOIR_SIZE`` observations, approximate above.
    """

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0
    samples: list[float] = field(default_factory=list, repr=False)
    _rng: random.Random = field(
        default_factory=lambda: random.Random(0x5EA1), repr=False, compare=False
    )

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the reservoir (0.0 empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def to_dict(self) -> dict[str, object]:
        min_seconds = self.min_seconds if math.isfinite(self.min_seconds) else 0.0
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "samples": list(self.samples),
        }

    def merge(self, other: dict[str, object]) -> None:
        """Fold a serialised :meth:`to_dict` aggregate into this one.

        Robust to hand-built or partial aggregates: a missing or
        non-finite ``min_seconds`` never poisons this side's minimum (the
        historical bug left ``min_seconds = inf`` on a stat whose only
        observations arrived via merge, which then serialised as the
        non-JSON token ``Infinity``), and min/max are only consulted on
        the side that actually observed something.
        """
        count = int(other.get("count", 0))  # type: ignore[arg-type]
        if count <= 0:
            return
        self.count += count
        self.total_seconds += float(other.get("total_seconds", 0.0))  # type: ignore[arg-type]
        other_min = float(other.get("min_seconds", math.inf))  # type: ignore[arg-type]
        if math.isfinite(other_min):
            self.min_seconds = min(self.min_seconds, other_min)
        self.max_seconds = max(self.max_seconds, float(other.get("max_seconds", 0.0)))  # type: ignore[arg-type]
        self._merge_samples(other.get("samples") or ())  # type: ignore[arg-type]

    def _merge_samples(self, samples: Sequence[float]) -> None:
        """Fold another reservoir in, keeping quantile structure.

        Oversized unions are compacted to evenly-spaced order statistics of
        the sorted union — a deterministic sketch compaction that
        preserves quantile estimates far better than random eviction.
        """
        if not samples:
            return
        union = self.samples + [float(value) for value in samples]
        if len(union) <= RESERVOIR_SIZE:
            self.samples = union
            return
        union.sort()
        step = (len(union) - 1) / (RESERVOIR_SIZE - 1)
        self.samples = [union[round(index * step)] for index in range(RESERVOIR_SIZE)]


@dataclass
class MetricsRegistry:
    """Thread-safe bag of named counters and wall-clock timers."""

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- recording ------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one ``seconds``-long observation under timer ``name``."""
        with self._lock:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading / serialising ------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses) over the ``sim.cache.*`` counters."""
        with self._lock:
            hits = self.counters.get("sim.cache.hits", 0)
            misses = self.counters.get("sim.cache.misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view of everything recorded so far."""
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            timers = {
                name: stat.to_dict() for name, stat in sorted(self.timers.items())
            }
        def ratio(numerator: float, denominator: float) -> float | None:
            """Guarded division: every derived ratio goes through here, so
            a zero or missing denominator yields absence, never a crash."""
            if not denominator:
                return None
            return numerator / denominator

        derived: dict[str, float] = {"cache_hit_rate": self.cache_hit_rate()}
        kernel = timers.get("sim.kernel")
        if kernel:
            derived["mean_kernel_seconds"] = kernel["mean_seconds"]
        cell = timers.get("sweep.cell")
        if cell:
            derived["mean_cell_seconds"] = cell["mean_seconds"]
        queries = counters.get("attack.queries")
        if queries and cell:
            queries_per_cell = ratio(queries, cell["count"])
            if queries_per_cell is not None:
                derived["queries_per_cell"] = queries_per_cell
        detection = ratio(
            counters.get("faults.detected", 0), counters.get("faults.injected", 0)
        )
        if detection is not None:
            derived["fault_detection_rate"] = detection
        retry_rate = ratio(
            counters.get("runner.retries", 0), counters.get("runner.attempts", 0)
        )
        if retry_rate is not None:
            derived["runner_retry_rate"] = retry_rate
        ctr = timers.get("crypto.ctr")
        if ctr:
            ctr_rate = ratio(
                counters.get("crypto.ctr.blocks", 0), ctr["total_seconds"]
            )
            if ctr_rate:
                derived["crypto_ctr_blocks_per_second"] = ctr_rate
        gmac = timers.get("crypto.gmac")
        if gmac:
            gmac_rate = ratio(
                counters.get("crypto.gmac.tags", 0), gmac["total_seconds"]
            )
            if gmac_rate:
                derived["crypto_gmac_tags_per_second"] = gmac_rate
        # Serving front end (docs/serving.md; populated by `repro serve`).
        request = timers.get("serve.request")
        if request:
            derived["serve_request_p50_seconds"] = request["p50_seconds"]
            derived["serve_request_p99_seconds"] = request["p99_seconds"]
        batch_mean = ratio(
            counters.get("serve.batch.requests", 0),
            counters.get("serve.batches", 0),
        )
        if batch_mean is not None:
            derived["serve_batch_mean_requests"] = batch_mean
        admitted = counters.get("serve.requests.total")
        if admitted:
            derived["serve_rejection_rate"] = (
                counters.get("serve.requests.rejected.backpressure", 0)
                + counters.get("serve.requests.rejected.quota", 0)
            ) / admitted
        batch = timers.get("serve.batch")
        if batch:
            lines_rate = ratio(
                counters.get("serve.lines.sealed", 0)
                + counters.get("serve.lines.unsealed", 0)
                + counters.get("serve.lines.verified", 0),
                batch["total_seconds"],
            )
            if lines_rate:
                derived["serve_lines_per_second"] = lines_rate
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "timers": timers,
            "derived": derived,
        }

    def merge(self, snapshot: dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        Used to aggregate worker-process metrics into the parent after a
        parallel fan-out.
        """
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            self.count(name, int(value))
        with self._lock:
            for name, agg in (snapshot.get("timers") or {}).items():  # type: ignore[union-attr]
                stat = self.timers.get(name)
                if stat is None:
                    stat = self.timers[name] = TimerStat()
                stat.merge(agg)

    def emit(self, path: str | Path) -> Path:
        """Write the snapshot as JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry all instrumentation hooks record into."""
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Worker processes install a fresh registry so their instrumentation can
    be snapshotted and merged back into the parent without double counting.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


def reset_metrics() -> MetricsRegistry:
    """Clear the process-wide registry (tests, CLI runs) and return it."""
    _GLOBAL.reset()
    return _GLOBAL
