"""Counters, wall-clock timers, and cache statistics with JSON emission.

The experiment harness (:mod:`repro.sim.parallel`, :func:`repro.sim.runner
.run_model`, ``repro.eval.experiments``, the security sweep in
:mod:`repro.attacks.sweep` and substitute training in
:mod:`repro.nn.training` / :mod:`repro.attacks.augmentation`) records what
it does into a process-wide :class:`MetricsRegistry`.  A registry serialises to a stable
JSON document (``schema`` = :data:`METRICS_SCHEMA`) so benchmark scripts and
the CLI can persist machine-readable run trajectories::

    {
      "schema": "repro.metrics/v1",
      "counters": {"sim.kernel_runs": 110, "sim.cache.hits": 35, ...},
      "timers": {"sim.kernel": {"count": 75, "total_seconds": 1.9, ...}},
      "derived": {"cache_hit_rate": 0.318, ...}
    }

Counter names are dotted paths (``component.event``).  The registry is
deliberately tiny — a dict of ints and a dict of timer aggregates behind a
lock — so hooking it into the simulator's hot path costs microseconds.
Worker processes build their own registries and the parent merges their
snapshots (see :meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "METRICS_SCHEMA",
    "TimerStat",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]

#: Version tag written into every emitted metrics document.
METRICS_SCHEMA = "repro.metrics/v1"


@dataclass
class TimerStat:
    """Aggregate of one named timer: count / total / min / max seconds."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "mean_seconds": self.mean_seconds,
        }

    def merge(self, other: dict[str, float]) -> None:
        """Fold a serialised :meth:`to_dict` aggregate into this one."""
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total_seconds += float(other.get("total_seconds", 0.0))
        self.min_seconds = min(self.min_seconds, float(other.get("min_seconds", math.inf)))
        self.max_seconds = max(self.max_seconds, float(other.get("max_seconds", 0.0)))


@dataclass
class MetricsRegistry:
    """Thread-safe bag of named counters and wall-clock timers."""

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- recording ------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one ``seconds``-long observation under timer ``name``."""
        with self._lock:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading / serialising ------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses) over the ``sim.cache.*`` counters."""
        with self._lock:
            hits = self.counters.get("sim.cache.hits", 0)
            misses = self.counters.get("sim.cache.misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view of everything recorded so far."""
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            timers = {
                name: stat.to_dict() for name, stat in sorted(self.timers.items())
            }
        derived: dict[str, float] = {"cache_hit_rate": self.cache_hit_rate()}
        kernel = timers.get("sim.kernel")
        if kernel:
            derived["mean_kernel_seconds"] = kernel["mean_seconds"]
        cell = timers.get("sweep.cell")
        if cell:
            derived["mean_cell_seconds"] = cell["mean_seconds"]
        queries = counters.get("attack.queries")
        if queries and cell and cell["count"]:
            derived["queries_per_cell"] = queries / cell["count"]
        injected = counters.get("faults.injected")
        if injected:
            derived["fault_detection_rate"] = (
                counters.get("faults.detected", 0) / injected
            )
        attempts = counters.get("runner.attempts")
        if attempts:
            derived["runner_retry_rate"] = (
                counters.get("runner.retries", 0) / attempts
            )
        ctr = timers.get("crypto.ctr")
        ctr_blocks = counters.get("crypto.ctr.blocks")
        if ctr and ctr_blocks and ctr["total_seconds"] > 0:
            derived["crypto_ctr_blocks_per_second"] = (
                ctr_blocks / ctr["total_seconds"]
            )
        gmac = timers.get("crypto.gmac")
        gmac_tags = counters.get("crypto.gmac.tags")
        if gmac and gmac_tags and gmac["total_seconds"] > 0:
            derived["crypto_gmac_tags_per_second"] = (
                gmac_tags / gmac["total_seconds"]
            )
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "timers": timers,
            "derived": derived,
        }

    def merge(self, snapshot: dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        Used to aggregate worker-process metrics into the parent after a
        parallel fan-out.
        """
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            self.count(name, int(value))
        with self._lock:
            for name, agg in (snapshot.get("timers") or {}).items():  # type: ignore[union-attr]
                stat = self.timers.get(name)
                if stat is None:
                    stat = self.timers[name] = TimerStat()
                stat.merge(agg)

    def emit(self, path: str | Path) -> Path:
        """Write the snapshot as JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry all instrumentation hooks record into."""
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Worker processes install a fresh registry so their instrumentation can
    be snapshotted and merged back into the parent without double counting.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


def reset_metrics() -> MetricsRegistry:
    """Clear the process-wide registry (tests, CLI runs) and return it."""
    _GLOBAL.reset()
    return _GLOBAL
