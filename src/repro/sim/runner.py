"""Experiment runner: whole models under the paper's five schemes.

The evaluation compares **Baseline** (no encryption), **Direct**,
**Counter** (straightforward full encryption, Section II-B), and
**SEAL-D** / **SEAL-C** (smart encryption over direct/counter engines,
Section IV-A).  This module lowers a model's layer sequence once per scheme
and simulates layer by layer; layers execute back to back (an inference is
a dependent layer chain), so end-to-end latency is the sum of layer times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.plan import LayerTraffic, ModelEncryptionPlan
from ..core.memory import SecureHeap
from ..nn.layers import Module
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .config import EncryptionMode, GpuConfig, gtx480_config
from .gpu import GpuSimulator, SimResult
from .parallel import SimUnit, SimulationCache, run_units
from .workloads import DEFAULT_TILE, layer_streams

__all__ = [
    "SCHEMES",
    "known_schemes",
    "traffic_for_scheme",
    "scheme_config",
    "fully_encrypted",
    "plaintext_traffic",
    "run_layer",
    "layer_unit",
    "ModelRunResult",
    "run_model",
    "compare_schemes",
]

#: Scheme labels in the paper's figure order.
SCHEMES = ("Baseline", "Direct", "Counter", "SEAL-D", "SEAL-C")


def _registry_scheme(name: str):
    """Registered :class:`~repro.schemes.base.ProtectionScheme` or None.

    Deferred import: :mod:`repro.schemes` builds on this module's config
    types, so the registry is only touched for non-paper scheme names.
    """
    from ..schemes import get_scheme, scheme_names

    if name not in scheme_names():
        return None
    return get_scheme(name)


def known_schemes() -> tuple[str, ...]:
    """Every runnable scheme label: the paper's five plus the registry."""
    from ..schemes import scheme_names

    return SCHEMES + tuple(scheme_names())


def scheme_config(name: str, *, counter_cache_kb: int = 96) -> GpuConfig:
    """GTX480 configuration for a paper scheme or a registered
    :class:`~repro.schemes.base.ProtectionScheme` name."""
    table = {
        "Baseline": (EncryptionMode.NONE, False),
        "Direct": (EncryptionMode.DIRECT, False),
        "Counter": (EncryptionMode.COUNTER, False),
        "SEAL-D": (EncryptionMode.DIRECT, True),
        "SEAL-C": (EncryptionMode.COUNTER, True),
    }
    if name in table:
        mode, selective = table[name]
        return gtx480_config(
            mode, selective=selective, counter_cache_kb=counter_cache_kb
        )
    scheme = _registry_scheme(name)
    if scheme is None:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {known_schemes()}"
        )
    return scheme.gpu_config(counter_cache_kb=counter_cache_kb)


def fully_encrypted(traffic: LayerTraffic) -> LayerTraffic:
    """Traffic record with every byte marked critical (Direct/Counter)."""
    return LayerTraffic(
        name=traffic.name,
        kind=traffic.kind,
        macs=traffic.macs,
        weight_bytes_encrypted=traffic.weight_bytes_encrypted + traffic.weight_bytes_plain,
        weight_bytes_plain=0,
        input_bytes_encrypted=traffic.input_bytes_encrypted + traffic.input_bytes_plain,
        input_bytes_plain=0,
        output_bytes_encrypted=traffic.output_bytes_encrypted + traffic.output_bytes_plain,
        output_bytes_plain=0,
        gemm_m=traffic.gemm_m,
        gemm_n=traffic.gemm_n,
        gemm_k=traffic.gemm_k,
    )


def plaintext_traffic(traffic: LayerTraffic) -> LayerTraffic:
    """Traffic record with no byte marked critical (Baseline tagging)."""
    return LayerTraffic(
        name=traffic.name,
        kind=traffic.kind,
        macs=traffic.macs,
        weight_bytes_encrypted=0,
        weight_bytes_plain=traffic.weight_bytes_encrypted + traffic.weight_bytes_plain,
        input_bytes_encrypted=0,
        input_bytes_plain=traffic.input_bytes_encrypted + traffic.input_bytes_plain,
        output_bytes_encrypted=0,
        output_bytes_plain=traffic.output_bytes_encrypted + traffic.output_bytes_plain,
        gemm_m=traffic.gemm_m,
        gemm_n=traffic.gemm_n,
        gemm_k=traffic.gemm_k,
    )


def traffic_for_scheme(traffic: LayerTraffic, scheme: str) -> LayerTraffic:
    """Tag a layer's traffic for one scheme: Baseline strips criticality,
    full-coverage schemes mark everything critical, selective schemes
    (SEAL and selective registry schemes) keep the plan's split."""
    if scheme in ("Direct", "Counter"):
        return fully_encrypted(traffic)
    if scheme == "Baseline":
        return plaintext_traffic(traffic)
    if scheme not in ("SEAL-D", "SEAL-C"):
        registered = _registry_scheme(scheme)
        if registered is not None and not registered.selective:
            return fully_encrypted(traffic)
    return traffic  # selective schemes keep the plan's split


def run_layer(
    traffic: LayerTraffic,
    scheme: str,
    *,
    counter_cache_kb: int = 96,
    tile: int = DEFAULT_TILE,
    config: GpuConfig | None = None,
) -> SimResult:
    """Simulate one layer under one scheme; returns the kernel result.

    This is the uncached serial reference path — the parallel/cached runner
    in :mod:`repro.sim.parallel` is pinned against it by the golden suite.
    """
    config = config or scheme_config(scheme, counter_cache_kb=counter_cache_kb)
    simulator = GpuSimulator(config)
    streams = layer_streams(
        config, traffic_for_scheme(traffic, scheme), tile=tile, heap=SecureHeap()
    )
    return simulator.run(streams, label=f"{traffic.name}/{scheme}")


def layer_unit(
    traffic: LayerTraffic,
    scheme: str,
    *,
    counter_cache_kb: int = 96,
    tile: int = DEFAULT_TILE,
    config: GpuConfig | None = None,
) -> SimUnit:
    """The :class:`SimUnit` equivalent of :func:`run_layer`'s arguments."""
    config = config or scheme_config(scheme, counter_cache_kb=counter_cache_kb)
    return SimUnit(
        traffic=traffic_for_scheme(traffic, scheme),
        config=config,
        tile=tile,
        label=f"{traffic.name}/{scheme}",
    )


@dataclass
class ModelRunResult:
    """Whole-model inference under one scheme."""

    model_name: str
    scheme: str
    layer_results: list[SimResult] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(r.cycles for r in self.layer_results)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.layer_results)

    @property
    def ipc(self) -> float:
        cycles = self.cycles
        return self.instructions / cycles if cycles else 0.0

    def latency_seconds(self, core_clock_ghz: float = 0.7) -> float:
        """End-to-end inference latency (dependent layer chain)."""
        return self.cycles / (core_clock_ghz * 1e9)

    @property
    def data_bytes(self) -> int:
        return sum(r.data_bytes for r in self.layer_results)

    @property
    def encrypted_bytes(self) -> int:
        return sum(r.encrypted_bytes for r in self.layer_results)


def run_model(
    source: Module | ModelEncryptionPlan,
    scheme: str,
    *,
    ratio: float = 0.5,
    input_shape: tuple[int, ...] = (3, 32, 32),
    counter_cache_kb: int = 96,
    tile: int = DEFAULT_TILE,
    include_pools: bool = True,
    batch: int = 1,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> ModelRunResult:
    """Simulate a full model inference under one scheme.

    ``source`` may be a model (a plan is built at ``ratio``) or an existing
    plan.  Layers are simulated independently and summed — inference is a
    dependent chain, so per-layer times add.  ``batch`` scales feature-map
    traffic for batched inference.

    ``jobs`` fans the independent layer simulations over a process pool
    (``None``/``0`` → CPU count); ``cache`` selects the simulation cache
    (default: the process-global cache, ``False`` disables caching).
    Either way the merged results are field-for-field identical to the
    serial uncached path.
    """
    results = compare_schemes(
        source,
        (scheme,),
        ratio=ratio,
        input_shape=input_shape,
        counter_cache_kb=counter_cache_kb,
        tile=tile,
        include_pools=include_pools,
        batch=batch,
        jobs=jobs,
        cache=cache,
    )
    return results[scheme]


def compare_schemes(
    source: Module | ModelEncryptionPlan,
    schemes: tuple[str, ...] = SCHEMES,
    *,
    ratio: float = 0.5,
    input_shape: tuple[int, ...] = (3, 32, 32),
    counter_cache_kb: int = 96,
    tile: int = DEFAULT_TILE,
    include_pools: bool = True,
    batch: int = 1,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
) -> dict[str, ModelRunResult]:
    """Run a model under several schemes; keys follow the paper's labels.

    The model is lowered to traffic records **once** and the same records
    are tagged per scheme (Baseline strips criticality, Direct/Counter mark
    everything critical, SEAL keeps the plan's split) — the per-scheme
    re-lowering the serial runner used to do was pure recomputation.  All
    ``len(schemes) × len(layers)`` simulation units then go through
    :func:`repro.sim.parallel.run_units` as one deduplicated batch.
    """
    if isinstance(source, ModelEncryptionPlan):
        plan = source
    else:
        plan = ModelEncryptionPlan.build(source, ratio, input_shape=input_shape)
    metrics = get_metrics()
    tracer = get_tracer()
    with metrics.timer("runner.compare_schemes"), tracer.span(
        "runner.compare_schemes",
        {"model": plan.model_name, "schemes": list(schemes), "ratio": ratio},
    ):
        with tracer.span("runner.lower"):
            traffics = plan.layer_traffic(include_pools=include_pools, batch=batch)
        units: list[SimUnit] = []
        owners: list[str] = []
        for scheme in schemes:
            config = scheme_config(scheme, counter_cache_kb=counter_cache_kb)
            for traffic in traffics:
                units.append(
                    SimUnit(
                        traffic=traffic_for_scheme(traffic, scheme),
                        config=config,
                        tile=tile,
                        label=f"{traffic.name}/{scheme}",
                    )
                )
                owners.append(scheme)
        layer_results = run_units(units, jobs=jobs, cache=cache, metrics=metrics)
    metrics.count("runner.layer_sims", len(units))
    results = {
        scheme: ModelRunResult(model_name=plan.model_name, scheme=scheme)
        for scheme in schemes
    }
    for scheme, result in zip(owners, layer_results):
        results[scheme].layer_results.append(result)
    return results
