"""Memory controller with DRAM timing, AES engine, and counter cache.

Each controller owns one GDDR5 channel and (when encryption is on) one AES
engine — the paper's configuration of one engine per memory controller.
Components are modelled as *rate servers* in continuous time: a server has
a ``next_free`` timestamp that advances by ``bytes / rate`` per accepted
request, which yields exact queueing-at-full-load behaviour (the regime the
paper's bandwidth-gap argument lives in) while staying fast enough to
simulate full model inferences in Python.

Request paths (read):

* plaintext            : DRAM only.
* direct encryption    : DRAM → AES engine (decryption is serial on the
  critical path, adding engine latency *and* occupying engine throughput).
* counter encryption   : counter-cache lookup in parallel with the DRAM
  access; on a hit the pad is generated while DRAM works (latency mostly
  hidden, throughput still consumed); on a miss the counter block is first
  fetched from DRAM (extra traffic + serialization) — the effect that makes
  Counter no faster than Direct in Figure 1.

Writes mirror the read paths (encrypt before DRAM; counter writes bump the
counter, possibly missing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.counter_cache import CounterCache
from ..crypto.engine import AesEngineModel
from .config import EncryptionMode, GpuConfig
from .request import MemRequest

__all__ = ["MemoryControllerStats", "MemoryController"]

_COUNTER_BLOCK_BYTES = 64


@dataclass
class MemoryControllerStats:
    """Per-controller accounting for bandwidth/utilization reporting."""

    read_requests: int = 0
    write_requests: int = 0
    data_bytes: int = 0
    counter_fetch_bytes: int = 0
    mac_bytes: int = 0
    encrypted_bytes: int = 0
    bypass_bytes: int = 0
    dram_busy_cycles: float = 0.0
    engine_busy_cycles: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.counter_fetch_bytes + self.mac_bytes


class _RateServer:
    """FCFS server with service rate in bytes/cycle and a fixed latency."""

    def __init__(self, bytes_per_cycle: float, latency: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("rate must be positive")
        self.rate = bytes_per_cycle
        self.latency = latency
        self.next_free = 0.0
        self.busy = 0.0

    def service(self, arrival: float, size: int) -> float:
        """Admit ``size`` bytes at ``arrival``; return completion time."""
        start = max(arrival, self.next_free)
        occupancy = size / self.rate
        self.next_free = start + occupancy
        self.busy += occupancy
        return start + occupancy + self.latency

    def reset(self) -> None:
        self.next_free = 0.0
        self.busy = 0.0


class MemoryController:
    """One channel: DRAM rate server + row-buffer model + AES engine."""

    def __init__(self, channel_id: int, config: GpuConfig) -> None:
        self.channel_id = channel_id
        self.config = config
        self._dram = _RateServer(
            config.channel_bytes_per_cycle, config.dram_latency_cycles
        )
        self.stats = MemoryControllerStats()
        encryption = config.encryption
        self._mode = encryption.mode
        self.engine: AesEngineModel | None = None
        self.counter_cache: CounterCache | None = None
        if encryption.enabled:
            self.engine = AesEngineModel(encryption.engine, config.core_clock_ghz)
            if self._mode is EncryptionMode.COUNTER:
                self.counter_cache = CounterCache(encryption.counter_cache)
        self._last_row: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _dram_access(self, arrival: float, address: int, size: int) -> float:
        """One DRAM transfer, with a simple per-bank row-buffer penalty."""
        bank = (address // self.config.row_buffer_bytes) % self.config.banks_per_channel
        row = address // (self.config.row_buffer_bytes * self.config.banks_per_channel)
        penalty = 0.0
        if self._last_row.get(bank) != row:
            self._last_row[bank] = row
            penalty = self.config.row_miss_penalty_cycles
        done = self._dram.service(arrival + penalty, size)
        self.stats.dram_busy_cycles = self._dram.busy
        return done

    def _counter_lookup(self, arrival: float, request: MemRequest) -> float:
        """Resolve the counters covering ``request``; return availability time.

        One lookup per cache line; every miss fetches a 64-byte counter
        block from DRAM (extra traffic, serialized before pad generation).
        """
        assert self.counter_cache is not None
        available = arrival
        line_bytes = self.config.line_bytes
        first_line = request.address // line_bytes
        for line in range(request.lines(line_bytes)):
            line_address = (first_line + line) * line_bytes
            hit = self.counter_cache.access(line_address, write=not request.is_read)
            if not hit:
                fetch_done = self._dram_access(
                    arrival, line_address, _COUNTER_BLOCK_BYTES
                )
                self.stats.counter_fetch_bytes += _COUNTER_BLOCK_BYTES
                available = max(available, fetch_done)
        return available

    # ------------------------------------------------------------------
    def submit(self, request: MemRequest, arrival: float) -> float:
        """Process one request; return its completion cycle."""
        if request.is_read:
            self.stats.read_requests += 1
        else:
            self.stats.write_requests += 1
        self.stats.data_bytes += request.size

        needs_crypto = request.encrypted and self._mode is not EncryptionMode.NONE
        if not needs_crypto:
            self.stats.bypass_bytes += request.size
            return self._dram_access(arrival, request.address, request.size)

        self.stats.encrypted_bytes += request.size
        assert self.engine is not None

        if self._mode is EncryptionMode.DIRECT:
            if request.is_read:
                # Fetch ciphertext, then decrypt serially.
                data_done = self._dram_access(arrival, request.address, request.size)
                done = self.engine.service(int(data_done), request.size)
            else:
                # Encrypt, then write ciphertext to DRAM.
                cipher_done = self.engine.service(int(arrival), request.size)
                done = self._dram_access(cipher_done, request.address, request.size)
        else:
            # Counter mode: pad generation overlaps the data access once
            # the counter is available.
            counter_ready = self._counter_lookup(arrival, request)
            pad_done = self.engine.service(int(counter_ready), request.size)
            if request.is_read:
                data_done = self._dram_access(arrival, request.address, request.size)
                done = max(data_done, pad_done) + 1.0  # final XOR
            else:
                done = self._dram_access(pad_done, request.address, request.size)

        done = self._authenticate(request, arrival, done)
        self.stats.engine_busy_cycles = self.engine.busy_cycles
        return done

    def _authenticate(
        self, request: MemRequest, arrival: float, done: float
    ) -> float:
        """Per-line MAC traffic and verification (when enabled)."""
        encryption = self.config.encryption
        if not encryption.authenticate:
            return done
        mac_size = request.lines(self.config.line_bytes) * encryption.mac_bytes
        self.stats.mac_bytes += mac_size
        if request.is_read:
            # Tag fetch overlaps the data access; verification follows it.
            tag_done = self._dram_access(arrival, request.address ^ (1 << 40), mac_size)
            return max(done, tag_done) + encryption.mac_verify_cycles
        # Writes compute and store the tag after the data leaves.
        tag_done = self._dram_access(done, request.address ^ (1 << 40), mac_size)
        return tag_done

    # ------------------------------------------------------------------
    def trace_events(self, elapsed_cycles: float) -> list[tuple[str, dict]]:
        """This channel's observability events for a kernel's trace span.

        One ``aes_engine`` occupancy event (when encryption is on) and one
        ``counter_cache`` event (counter mode only) summarising the
        channel — the per-request paths stay untraced on purpose, since a
        kernel issues thousands of requests and a span event per request
        would swamp both the trace document and the hot path.
        """
        events: list[tuple[str, dict]] = []
        if self.engine is not None:
            events.append(
                (
                    "aes_engine",
                    {
                        "channel": self.channel_id,
                        "busy_cycles": round(self.engine.busy_cycles, 3),
                        "lines": self.engine.lines_processed,
                        "bytes": self.engine.bytes_processed,
                        "utilization": round(
                            self.engine.utilization(int(elapsed_cycles or 1)), 6
                        ),
                    },
                )
            )
        if self.counter_cache is not None:
            stats = self.counter_cache.stats
            events.append(
                (
                    "counter_cache",
                    {
                        "channel": self.channel_id,
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "evictions": stats.evictions,
                        "reencryptions": stats.reencryptions,
                        "counter_fetch_bytes": self.stats.counter_fetch_bytes,
                    },
                )
            )
        return events

    @property
    def counter_hit_rate(self) -> float:
        if self.counter_cache is None:
            return float("nan")
        return self.counter_cache.stats.hit_rate

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._dram.busy / elapsed)
