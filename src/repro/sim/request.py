"""Memory request/response types exchanged between SMs and controllers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Access", "MemRequest"]


class Access(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class MemRequest:
    """One coalesced memory transaction.

    ``size`` may span several cache lines (a warp-coalesced burst); the
    memory controller charges bandwidth per byte and counter-cache lookups
    per line.  ``encrypted`` is the criticality tag assigned by the SEAL
    plan through the :class:`repro.core.memory.SecureHeap` address map —
    under full encryption every request is tagged encrypted.
    """

    address: int
    size: int
    access: Access
    encrypted: bool
    sm_id: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def is_read(self) -> bool:
        return self.access is Access.READ

    def lines(self, line_bytes: int) -> int:
        """Number of cache lines this request touches."""
        first = self.address // line_bytes
        last = (self.address + self.size - 1) // line_bytes
        return int(last - first + 1)
