"""Memory-trace export/import and trace statistics.

Lowered workloads (per-SM :class:`~repro.sim.sm.TileStep` streams) can be
dumped to a compact text format and replayed later — useful for diffing
scheme traffic, feeding external cache simulators, and regression-pinning
the trace generator.  One line per request:

    <sm> <step> R|W <address-hex> <size> E|P [tag]

Compute steps appear as ``<sm> <step> C <cycles> <instructions>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, TextIO

from .request import Access, MemRequest
from .sm import TileStep

__all__ = ["dump_streams", "load_streams", "TraceStats", "trace_stats"]


def dump_streams(streams: list[list[TileStep]], handle: TextIO) -> int:
    """Write streams to ``handle``; returns the number of lines written."""
    lines = 0
    for sm_id, stream in enumerate(streams):
        for step_index, step in enumerate(stream):
            handle.write(
                f"{sm_id} {step_index} C {step.compute_cycles} {step.instructions}\n"
            )
            lines += 1
            for request in step.reads:
                handle.write(_format_request(sm_id, step_index, request))
                lines += 1
            for request in step.writes:
                handle.write(_format_request(sm_id, step_index, request))
                lines += 1
    return lines


def _format_request(sm_id: int, step_index: int, request: MemRequest) -> str:
    kind = "R" if request.is_read else "W"
    criticality = "E" if request.encrypted else "P"
    tag = f" {request.tag}" if request.tag else ""
    return (
        f"{sm_id} {step_index} {kind} {request.address:#x} "
        f"{request.size} {criticality}{tag}\n"
    )


def load_streams(handle: TextIO) -> list[list[TileStep]]:
    """Parse a trace written by :func:`dump_streams`."""
    # (sm, step) -> [compute, instructions, reads, writes]
    pending: dict[tuple[int, int], list] = {}
    max_sm = -1
    for line_number, line in enumerate(handle, start=1):
        parts = line.split()
        if not parts:
            continue
        if len(parts) < 4:
            raise ValueError(f"line {line_number}: malformed trace line {line!r}")
        sm_id, step_index, kind = int(parts[0]), int(parts[1]), parts[2]
        max_sm = max(max_sm, sm_id)
        entry = pending.setdefault((sm_id, step_index), [0, 0, [], []])
        if kind == "C":
            entry[0] = int(parts[3])
            entry[1] = int(parts[4]) if len(parts) > 4 else int(parts[3])
        elif kind in ("R", "W"):
            if len(parts) < 6:
                raise ValueError(f"line {line_number}: malformed request {line!r}")
            request = MemRequest(
                address=int(parts[3], 16),
                size=int(parts[4]),
                access=Access.READ if kind == "R" else Access.WRITE,
                encrypted=parts[5] == "E",
                sm_id=sm_id,
                tag=parts[6] if len(parts) > 6 else "",
            )
            entry[2 if kind == "R" else 3].append(request)
        else:
            raise ValueError(f"line {line_number}: unknown record kind {kind!r}")

    streams: list[list[TileStep]] = [[] for _ in range(max_sm + 1)]
    for (sm_id, step_index) in sorted(pending):
        compute, instructions, reads, writes = pending[(sm_id, step_index)]
        streams[sm_id].append(
            TileStep(
                compute_cycles=compute,
                reads=tuple(reads),
                writes=tuple(writes),
                instructions=instructions,
            )
        )
    return streams


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of one lowered workload."""

    steps: int
    requests: int
    read_bytes: int
    write_bytes: int
    encrypted_bytes: int
    compute_cycles: int
    instructions: int

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def encrypted_fraction(self) -> float:
        total = self.total_bytes
        return self.encrypted_bytes / total if total else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """MAC-slot cycles per byte moved (roofline x-axis)."""
        total = self.total_bytes
        return self.compute_cycles / total if total else float("inf")


def trace_stats(streams: Iterable[list[TileStep]]) -> TraceStats:
    """Summarize a set of per-SM streams."""
    steps = requests = read_bytes = write_bytes = encrypted = 0
    compute = instructions = 0
    for stream in streams:
        for step in stream:
            steps += 1
            compute += step.compute_cycles
            instructions += step.instructions
            for request in step.reads:
                requests += 1
                read_bytes += request.size
                if request.encrypted:
                    encrypted += request.size
            for request in step.writes:
                requests += 1
                write_bytes += request.size
                if request.encrypted:
                    encrypted += request.size
    return TraceStats(
        steps=steps,
        requests=requests,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        encrypted_bytes=encrypted,
        compute_cycles=compute,
        instructions=instructions,
    )
