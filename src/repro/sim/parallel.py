"""Process-pool experiment runner with a content-addressed simulation cache.

Every figure of the paper's evaluation is a fan-out of *independent* layer
simulations: a :class:`SimUnit` is one ``(tagged LayerTraffic, GpuConfig,
tile)`` triple, and :func:`run_units` executes a batch of them either
inline or across a process pool, merging results deterministically in
submission order regardless of completion order or worker count.

Because a layer simulation is a pure function of its unit — the lowering
allocates a fresh :class:`~repro.core.memory.SecureHeap` every time and the
discrete-event simulation has no other state — identical units produce
bit-identical :class:`~repro.sim.gpu.SimResult` values.  That makes the
work content-addressable: :func:`cache_key` hashes the config, the traffic
record (minus its display name) and the tile size, and the
:class:`SimulationCache` returns the stored result for any repeat.  Two
kinds of repeats dominate in practice:

* repeated layers inside one model (ResNet's identical residual blocks),
* repeated baselines across a sweep (every encryption-ratio point shares
  the same Baseline/Direct/Counter traffic, since those schemes erase the
  plan's criticality split).

The display ``label`` is *not* part of the key; cached results are
re-labelled on the way out, so the output of a cached/parallel run is
field-for-field identical to a cold serial run (the golden suite in
``tests/sim/test_golden_ipc.py`` pins this).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..core.keys import canonical_encode, content_key
from ..core.memory import SecureHeap
from ..core.plan import LayerTraffic
from ..faults import CHAOS_ENV_VAR, RetryPolicy, chaos_probe, run_hardened
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.trace import get_tracer, worker_tracer
from .config import GpuConfig
from .gpu import GpuSimulator, SimResult
from .workloads import DEFAULT_TILE, layer_streams

__all__ = [
    "SimUnit",
    "SimulationCache",
    "cache_key",
    "default_cache",
    "clear_default_cache",
    "resolve_jobs",
    "simulate_unit",
    "run_units",
]


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def cache_key(config: GpuConfig, traffic: LayerTraffic, tile: int = DEFAULT_TILE) -> str:
    """Content hash of one simulation unit (via :mod:`repro.core.keys`).

    The key covers every input the simulation depends on — the full
    :class:`GpuConfig` (including encryption mode, engine spec and counter
    cache geometry), every byte/MAC/GEMM field of the traffic record, and
    the tile size.  ``traffic.name`` is excluded: it only feeds display
    labels and heap-region names, neither of which affects the simulated
    numbers, and excluding it is what lets repeated same-shape layers share
    one simulation.
    """
    traffic_fields = canonical_encode(traffic)
    assert isinstance(traffic_fields, dict)
    traffic_fields.pop("name", None)
    return content_key(
        {
            "config": canonical_encode(config),
            "traffic": traffic_fields,
            "tile": tile,
        }
    )


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimulationCache:
    """Bounded, thread-safe, content-addressed store of :class:`SimResult`.

    Keys come from :func:`cache_key`; eviction is FIFO on insertion order,
    which is good enough for the sweep workloads this serves (the working
    set of distinct layer shapes is small).
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[str, SimResult] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> SimResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return result

    def put(self, key: str, result: SimResult) -> None:
        with self._lock:
            self._entries[key] = result
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-global cache shared by default across ``run_units`` calls so
#: sweep re-runs (same model, different ratio/scheme) reuse prior work.
_DEFAULT_CACHE = SimulationCache()


def default_cache() -> SimulationCache:
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    _DEFAULT_CACHE.clear()


def _resolve_cache(cache: SimulationCache | None | bool) -> SimulationCache | None:
    """``None`` → process-global cache; ``False`` → caching disabled."""
    if cache is None:
        return _DEFAULT_CACHE
    if cache is False:
        return None
    if isinstance(cache, SimulationCache):
        return cache
    raise TypeError(f"cache must be a SimulationCache, None, or False, got {cache!r}")


# ----------------------------------------------------------------------
# Units and execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimUnit:
    """One independent simulation: a tagged traffic record on one config.

    ``traffic`` must already be scheme-tagged (see
    :func:`repro.sim.runner.traffic_for_scheme`); ``label`` is carried onto
    the resulting :class:`SimResult` and takes no part in caching.
    """

    traffic: LayerTraffic
    config: GpuConfig
    tile: int = DEFAULT_TILE
    label: str = ""

    def key(self) -> str:
        return cache_key(self.config, self.traffic, self.tile)


def simulate_unit(unit: SimUnit) -> SimResult:
    """Run one unit cold (no cache, current process)."""
    tracer = get_tracer()
    with tracer.span(
        "sim.unit", {"label": unit.label, "tile": unit.tile} if tracer.enabled else None
    ):
        simulator = GpuSimulator(unit.config)
        with tracer.span("sim.lower"):
            streams = layer_streams(
                unit.config, unit.traffic, tile=unit.tile, heap=SecureHeap()
            )
        return simulator.run(streams, label=unit.label)


def _pool_worker(
    unit: SimUnit,
) -> tuple[SimResult, dict[str, object], list[dict[str, object]]]:
    """Worker entry point: simulate, return (result, metrics, spans).

    Each task records into a fresh registry so the parent can merge worker
    instrumentation without double counting across pool task reuse; when
    the parent is tracing, a fresh per-task tracer captures the unit's
    span tree for re-rooting (empty list otherwise).  The chaos probe lets
    the fault-injection suite crash/hang/fail a chosen unit (no-op unless
    ``REPRO_CHAOS`` is set; the key hash is skipped on the production
    path).
    """
    if os.environ.get(CHAOS_ENV_VAR):
        chaos_probe(unit.key(), unit.label)
    local = MetricsRegistry()
    previous = set_metrics(local)
    try:
        with worker_tracer() as tracer:
            result = simulate_unit(unit)
    finally:
        set_metrics(previous)
    spans = tracer.span_dicts() if tracer is not None else []
    return result, local.snapshot(), spans


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` → CPU count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be a positive integer, 0, or None")
    return jobs


def run_units(
    units: list[SimUnit] | tuple[SimUnit, ...],
    *,
    jobs: int | None = 1,
    cache: SimulationCache | None | bool = None,
    metrics: MetricsRegistry | None = None,
    policy: RetryPolicy | None = None,
) -> list[SimResult]:
    """Execute simulation units, deduplicated and (optionally) in parallel.

    Results come back in submission order — ``results[i]`` belongs to
    ``units[i]`` — independent of worker count and completion order.  Units
    whose cache key already resolved (earlier in this batch, or in a prior
    call through ``cache``) are not re-simulated; their stored result is
    re-labelled with the unit's own label.  Per-unit hit/miss counts land
    in ``metrics`` under ``sim.cache.hits`` / ``sim.cache.misses``.

    Execution is hardened (see :mod:`repro.faults.runner`): ``policy``
    grants per-unit retries and timeouts, a crashed worker only charges the
    units that were in flight, and a unit that fails permanently raises a
    :class:`~repro.faults.UnitExecutionError` naming its cache key — after
    every other unit has completed and been written to ``cache``.
    """
    units = list(units)
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else get_metrics()
    tracer = get_tracer()
    store = _resolve_cache(cache)

    keys = [unit.key() for unit in units]
    resolved: dict[str, SimResult] = {}
    pending: "OrderedDict[str, SimUnit]" = OrderedDict()
    for unit, key in zip(units, keys):
        if key in resolved or key in pending:
            continue
        stored = store.get(key) if store is not None else None
        if stored is not None:
            resolved[key] = stored
        else:
            pending[key] = unit

    computed: set[str] = set(pending)
    if pending:
        todo = [(key, unit.label, unit) for key, unit in pending.items()]
        with metrics.timer("parallel.compute"), tracer.span(
            "parallel.run_units",
            {"units": len(units), "pending": len(todo), "jobs": jobs},
        ) as dispatch:
            if jobs == 1 or len(todo) == 1:

                def serial_worker(unit: SimUnit) -> SimResult:
                    with metrics.timer("parallel.unit"):
                        return simulate_unit(unit)

                def serial_deliver(key: str, unit: object, result: object) -> None:
                    assert isinstance(result, SimResult)
                    resolved[key] = result
                    if store is not None:
                        store.put(key, result)

                run_hardened(
                    serial_worker,
                    todo,
                    jobs=1,
                    policy=policy,
                    metrics=metrics,
                    on_result=serial_deliver,
                )
            else:
                metrics.count("parallel.pools")

                def pool_deliver(key: str, unit: object, outcome: object) -> None:
                    result, snapshot, spans = outcome  # type: ignore[misc]
                    resolved[key] = result
                    metrics.merge(snapshot)
                    if dispatch:
                        tracer.adopt(spans, parent=dispatch)
                    if store is not None:
                        store.put(key, result)

                run_hardened(
                    _pool_worker,
                    todo,
                    jobs=jobs,
                    policy=policy,
                    metrics=metrics,
                    on_result=pool_deliver,
                )

    first_compute_claimed: set[str] = set()
    merged: list[SimResult] = []
    for unit, key in zip(units, keys):
        if key in computed and key not in first_compute_claimed:
            first_compute_claimed.add(key)
            metrics.count("sim.cache.misses")
        else:
            metrics.count("sim.cache.hits")
        merged.append(replace(resolved[key], label=unit.label))
    metrics.count("parallel.units", len(units))
    return merged
