"""Vectorized batched simulator backend, pinned against the scalar engine.

The scalar engine (:meth:`repro.sim.gpu.GpuSimulator._run_scalar` driving
:class:`repro.sim.memctrl.MemoryController`) walks one
:class:`~repro.sim.request.MemRequest` object at a time through Python
method chains — readable, but the dominant self-time cost of every
performance figure now that the crypto fast path landed.  This module is
the ``vector`` backend of the same simulation: it **compiles** the per-SM
step streams into flat structure-of-arrays primitives up front (NumPy bulk
math for the address decode, server occupancies, line/counter-block
geometry, and every order-independent statistic), then advances the event
loop over those arrays — through the cc-compiled kernel of
:mod:`repro.sim._native` when a C toolchain is available, or an equivalent
pure-Python loop otherwise — with no per-request object traffic either way.

Two design rules make the backend trustworthy:

* **Identical event order.**  The engine replays the scalar engine's
  discrete-event schedule exactly — SMs advance in ``(next-ready time,
  sm_id)`` order, jumping straight from one scheduled event to the next
  (idle cycles between events are never stepped), waves are chunked by the
  same MSHR cap, and every memory controller sees its request subsequence
  in the same order.
* **Identical arithmetic.**  Each timing update replicates the scalar
  float expressions operation for operation (the same divisions, the same
  ``max``/truncation points; the native kernel is built with FP contraction
  off), so cycle counts, utilizations, counter-cache statistics and per-SM
  occupancy come out **bit-identical**, not merely close.  The differential
  suite (``tests/sim/test_backend_equivalence.py``) asserts exactly that
  over the golden workloads and randomized configs.

Backend selection mirrors :mod:`repro.crypto.fastpath`: consumers take
``backend="scalar" | "vector" | None``; ``None`` defers to the
:data:`ENV_VAR` environment variable (``REPRO_SIM_BACKEND``) and finally to
:data:`DEFAULT_BACKEND` (``vector``).  Within the vector backend,
``REPRO_SIM_NATIVE=0`` forces the pure-Python loop (results unchanged).

>>> resolve_sim_backend("scalar")
'scalar'
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict

import numpy as np

from ..crypto.counter_cache import _CacheLine
from .config import EncryptionMode, GpuConfig
from .memctrl import _COUNTER_BLOCK_BYTES, MemoryController
from .request import Access
from .sm import SmState, SmStats, TileStep

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "resolve_sim_backend",
    "CompiledKernel",
    "compile_streams",
    "run_vector",
]

#: Environment variable overriding the default backend for consumers that
#: were not given an explicit ``backend=``.
ENV_VAR = "REPRO_SIM_BACKEND"

#: Recognised backend names, in (reference, fast path) order.
BACKENDS = ("scalar", "vector")

#: Backend used when neither ``backend=`` nor the environment selects one.
DEFAULT_BACKEND = "vector"


def resolve_sim_backend(backend: str | None = None) -> str:
    """Resolve a simulator-backend request to a concrete name.

    Precedence: explicit ``backend`` argument, then the :data:`ENV_VAR`
    environment variable, then :data:`DEFAULT_BACKEND`.
    """
    if backend is None:
        backend = os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sim backend {backend!r}; choose from "
            f"{', '.join(BACKENDS)} (explicit backend= argument or the "
            f"{ENV_VAR} environment variable)"
        )
    return backend


# Per-request path codes (an encrypted request under mode X takes path X;
# plaintext requests always take the bypass path, as in the scalar engine).
_BYPASS, _DIRECT, _COUNTER = 0, 1, 2

_I64 = np.int64
_EMPTY_I64 = np.zeros(0, dtype=_I64)


class CompiledKernel:
    """Streams lowered to flat structure-of-arrays primitives.

    Requests are rows across parallel arrays, indexed the way the scalar
    engine would issue them: each step's reads and writes occupy contiguous
    index ranges (``step_read/write_[start|end]``), steps occupy contiguous
    ranges per SM (``sm_step_[start|end]``), and MSHR waves are implicit —
    every ``cap`` consecutive requests of a range form one wave.  Counter
    requests reference runs (one batched counter-cache lookup per covering
    counter block) in ``run_*``; write runs reference their per-line data
    addresses in ``run_addr``.  Statistics that cannot influence timing
    (request/byte counts per channel, engine line counts, per-SM
    instruction totals) are reduced once at compile time instead of being
    accumulated per request.
    """

    __slots__ = (
        # per-request arrays
        "path",
        "channel",
        "occ_dram",
        "bank",
        "row",
        "is_read",
        "occ_engine",
        "occ_mac",
        "tag_bank",
        "tag_row",
        "run_start",
        "run_count",
        # per-run arrays (counter mode)
        "run_block",
        "run_lines",
        "run_bank",
        "run_row",
        "run_channel",
        "run_write",
        "run_addr_start",
        "run_addr",
        # per-step / per-SM skeleton
        "step_cycles",
        "step_read_start",
        "step_read_end",
        "step_write_start",
        "step_write_end",
        "sm_step_start",
        "sm_step_end",
        "sm_stats",
        # order-independent statistics, per channel
        "read_requests",
        "write_requests",
        "data_bytes",
        "encrypted_bytes",
        "bypass_bytes",
        "mac_bytes",
        "engine_lines",
        "engine_bytes",
        # shape / mode
        "num_requests",
        "mode_code",
        "auth",
        "cap",
    )

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)


def compile_streams(
    config: GpuConfig, streams: list[list[TileStep]]
) -> CompiledKernel:
    """Lower per-SM step streams into the vector engine's flat arrays."""
    encryption = config.encryption
    mode = encryption.mode
    if mode is EncryptionMode.DIRECT:
        mode_code = _DIRECT
    elif mode is EncryptionMode.COUNTER:
        mode_code = _COUNTER
    else:
        mode_code = _BYPASS
    auth = bool(encryption.authenticate and mode_code != _BYPASS)
    cap = max(1, config.max_outstanding_per_sm)

    # Pass 1: flatten the step objects into parallel per-request and
    # per-step lists.  Everything here is a bulk list comprehension — no
    # per-step statement block — because this gather visits millions of
    # requests on real layer sets and per-step Python used to dominate the
    # whole backend.  ``Access.READ`` identity beats the ``is_read``
    # property for the same reason (the property is a Python call each).
    addr_l: list[int] = []
    size_l: list[int] = []
    read_l: list[bool] = []
    enc_l: list[bool] = []
    step_cc: list[float] = []
    nreads_l: list[int] = []
    nwrites_l: list[int] = []
    sm_start: list[int] = []
    sm_end: list[int] = []
    sm_stats: list[SmStats] = []
    _READ = Access.READ
    for stream in streams:
        sm_start.append(len(step_cc))
        nr = [len(s.reads) for s in stream]
        nw = [len(s.writes) for s in stream]
        cc = [s.compute_cycles for s in stream]
        stats = SmStats()
        stats.instructions = sum(s.instructions for s in stream)
        # Left-to-right sum == the scalar engine's per-step accumulation.
        stats.busy_cycles = sum(cc)
        stats.steps = len(stream)
        stats.read_requests = sum(nr)
        stats.write_requests = sum(nw)
        sm_stats.append(stats)
        step_cc += cc
        nreads_l += nr
        nwrites_l += nw
        # Flat request order: each step's reads, then its writes.
        reqs = [r for s in stream for r in s.reads + s.writes]
        addr_l += [r.address for r in reqs]
        size_l += [r.size for r in reqs]
        read_l += [r.access is _READ for r in reqs]
        enc_l += [r.encrypted for r in reqs]
        sm_end.append(len(step_cc))

    # Step boundaries as flat request indices, from one cumulative sum
    # (reads span [rs, re), writes [re, we) — writes start where reads end).
    nr_a = np.asarray(nreads_l, dtype=_I64)
    nw_a = np.asarray(nwrites_l, dtype=_I64)
    step_we_a = np.cumsum(nr_a + nw_a)
    step_rs_a = step_we_a - nr_a - nw_a
    step_re_a = step_rs_a + nr_a

    # Pass 2: bulk array math over every request at once.
    channels = config.num_channels
    line_bytes = config.line_bytes
    row_bytes = config.row_buffer_bytes
    banks = config.banks_per_channel
    dram_rate = config.channel_bytes_per_cycle
    n = len(addr_l)
    address = np.asarray(addr_l, dtype=_I64)
    sizes = np.asarray(size_l, dtype=_I64)
    enc_a = np.asarray(enc_l, dtype=bool)
    read_a = np.asarray(read_l, dtype=bool)
    channel = (address // line_bytes) % channels
    bank = (address // row_bytes) % banks
    row = address // (row_bytes * banks)
    occ_dram = sizes / dram_rate
    path = (
        np.where(enc_a, mode_code, 0).astype(_I64)
        if mode_code
        else np.zeros(n, dtype=_I64)
    )
    first_line = address // line_bytes
    last_line = (address + sizes - 1) // line_bytes
    nlines = last_line - first_line + 1
    occ_engine = (
        sizes / config.engine_bytes_per_cycle
        if encryption.enabled
        else np.zeros(n)
    )
    if auth:
        mac_size = nlines * encryption.mac_bytes
        tag_addr = address ^ (1 << 40)
        tag_bank = (tag_addr // row_bytes) % banks
        tag_row = tag_addr // (row_bytes * banks)
        occ_mac = mac_size / dram_rate
    else:
        mac_size = np.zeros(n, dtype=_I64)
        tag_bank = np.zeros(n, dtype=_I64)
        tag_row = np.zeros(n, dtype=_I64)
        occ_mac = np.zeros(n)

    # Counter-block runs: group each counter request's consecutive cache
    # lines by covering counter block.  The scalar engine looks the cache
    # up once per line; within one block only the *first* of those
    # consecutive lookups can miss (the block is resident afterwards and
    # nothing intervenes), so the vector engine performs one batched
    # lookup per run — CounterCache.access_run keeps statistics and LRU
    # state identical.  All ragged structure is built with cumsum/repeat
    # idioms; no per-request Python.
    run_start = np.zeros(n, dtype=_I64)
    run_count = np.zeros(n, dtype=_I64)
    run_block = run_lines = run_bank = run_row = _EMPTY_I64
    run_channel = run_addr_start = run_addr = _EMPTY_I64
    run_write = np.zeros(0, dtype=bool)
    if mode_code == _COUNTER and n:
        span = encryption.counter_cache.data_bytes_per_counter_block
        enc_idx = np.nonzero(enc_a)[0]
        first_block = (first_line[enc_idx] * line_bytes) // span
        last_block = (last_line[enc_idx] * line_bytes) // span
        nruns = last_block - first_block + 1
        starts = np.cumsum(nruns) - nruns
        run_count[enc_idx] = nruns
        run_start[enc_idx] = starts
        total = int(nruns.sum())
        owner = np.repeat(enc_idx, nruns)
        offsets = np.arange(total, dtype=_I64) - np.repeat(starts, nruns)
        run_block = np.repeat(first_block, nruns) + offsets
        # First/last data line of each run: the request's own span clipped
        # to the block (ceil/floor divisions, all operands non-negative).
        lo = np.maximum(
            first_line[owner],
            (run_block * span + line_bytes - 1) // line_bytes,
        )
        hi = np.minimum(
            last_line[owner], ((run_block + 1) * span - 1) // line_bytes
        )
        run_lines = hi - lo + 1
        first_addr = lo * line_bytes
        run_bank = (first_addr // row_bytes) % banks
        run_row = first_addr // (row_bytes * banks)
        run_channel = channel[owner]
        run_write = ~read_a[owner]
        addr_counts = np.where(run_write, run_lines, 0)
        run_addr_start = np.cumsum(addr_counts) - addr_counts
        write_lines = run_lines[run_write]
        addr_total = int(write_lines.sum())
        write_starts = np.cumsum(write_lines) - write_lines
        addr_offsets = np.arange(addr_total, dtype=_I64) - np.repeat(
            write_starts, write_lines
        )
        run_addr = (np.repeat(lo[run_write], write_lines) + addr_offsets) * line_bytes

    # Order-independent per-channel statistics, reduced once.  bincount
    # accumulates in float64, exact for byte totals far below 2**53.
    def _by_channel(mask, weights=None):
        if not n:
            return [0] * channels
        chan = channel[mask] if mask is not None else channel
        if weights is None:
            return np.bincount(chan, minlength=channels).tolist()
        w = weights[mask] if mask is not None else weights
        return (
            np.bincount(chan, weights=w, minlength=channels)
            .astype(_I64)
            .tolist()
        )

    enc_mask = path > 0
    data_bytes = _by_channel(None, sizes)
    encrypted_bytes = _by_channel(enc_mask, sizes)

    return CompiledKernel(
        path=path.astype(np.int8),
        channel=channel,
        occ_dram=occ_dram,
        bank=bank,
        row=row,
        is_read=read_a.astype(np.int8),
        occ_engine=occ_engine,
        occ_mac=occ_mac,
        tag_bank=tag_bank,
        tag_row=tag_row,
        run_start=run_start,
        run_count=run_count,
        run_block=run_block,
        run_lines=run_lines,
        run_bank=run_bank,
        run_row=run_row,
        run_channel=run_channel,
        run_write=run_write,
        run_addr_start=run_addr_start,
        run_addr=run_addr,
        step_cycles=np.asarray(step_cc, dtype=np.float64),
        step_read_start=step_rs_a,
        step_read_end=step_re_a,
        step_write_start=step_re_a,
        step_write_end=step_we_a,
        sm_step_start=np.asarray(sm_start, dtype=_I64),
        sm_step_end=np.asarray(sm_end, dtype=_I64),
        sm_stats=sm_stats,
        read_requests=_by_channel(read_a),
        write_requests=_by_channel(~read_a),
        data_bytes=data_bytes,
        encrypted_bytes=encrypted_bytes,
        bypass_bytes=[d - e for d, e in zip(data_bytes, encrypted_bytes)],
        mac_bytes=_by_channel(enc_mask, mac_size) if auth else [0] * channels,
        engine_lines=_by_channel(enc_mask),
        engine_bytes=encrypted_bytes,
        num_requests=n,
        mode_code=mode_code,
        auth=auth,
        cap=cap,
    )


def run_vector(
    config: GpuConfig,
    controllers: list[MemoryController],
    streams: list[list[TileStep]],
) -> tuple[float, list[SmState]]:
    """Execute streams on the vector backend; returns (finish, SM states).

    Mutates ``controllers`` (server clocks, statistics, counter caches) the
    same way a scalar run would, so the caller's collection and tracing
    paths are backend-agnostic.  Dispatches to the native kernel when it is
    loadable and the cache state is representable there, otherwise to the
    pure-Python loop — both consume the same compiled arrays and produce
    bit-identical results.
    """
    if len(streams) > config.num_sms:
        raise ValueError(f"{len(streams)} streams for {config.num_sms} SMs")
    compiled = compile_streams(config, streams)

    from . import _native

    outcome = None
    native = _native.load()
    if native is not None:
        outcome = _run_native(native, config, controllers, compiled)
    if outcome is None:
        outcome = _run_python(config, controllers, compiled)
    finish, ready, cend, wdone, next_abs, counter_fetch = outcome

    # Static statistics and post-run conditional stat snapshots (the
    # scalar engine refreshes the busy-cycle snapshots after every access;
    # net effect: updated iff the channel/engine was touched at all).
    for c, mc in enumerate(controllers):
        stats = mc.stats
        stats.read_requests += compiled.read_requests[c]
        stats.write_requests += compiled.write_requests[c]
        stats.data_bytes += compiled.data_bytes[c]
        stats.encrypted_bytes += compiled.encrypted_bytes[c]
        stats.bypass_bytes += compiled.bypass_bytes[c]
        stats.mac_bytes += compiled.mac_bytes[c]
        stats.counter_fetch_bytes += counter_fetch[c]
        if compiled.data_bytes[c] or counter_fetch[c]:
            stats.dram_busy_cycles = mc._dram.busy
        engine = mc.engine
        if engine is not None:
            engine.lines_processed += compiled.engine_lines[c]
            engine.bytes_processed += compiled.engine_bytes[c]
            if compiled.engine_lines[c]:
                stats.engine_busy_cycles = engine.busy_cycles

    sm_start = compiled.sm_step_start
    sms = []
    for sm_id, stats in enumerate(compiled.sm_stats):
        state = SmState(sm_id=sm_id, steps=[], stats=stats)
        state.next_step = int(next_abs[sm_id] - sm_start[sm_id])
        state.ready_time = float(ready[sm_id])
        state.compute_end = float(cend[sm_id])
        state.last_write_done = float(wdone[sm_id])
        sms.append(state)
    return finish, sms


# ----------------------------------------------------------------------
# Native kernel dispatch
# ----------------------------------------------------------------------

def _run_native(native, config, controllers, compiled):
    """Run the compiled arrays through the C kernel; None if ineligible.

    Eligibility is about representing the counter cache in dense arrays:
    line addresses must be aligned multiples of ``line_bytes`` within a
    block span that is a whole number of lines, and no functional
    re-encryption hook may be attached.  Anything else (including all
    non-counter modes) always qualifies.  The check never mutates state,
    so the caller can fall back to the Python loop cleanly.
    """
    ffi, lib = native
    channels = config.num_channels
    banks = config.banks_per_channel
    line_bytes = config.line_bytes
    encryption = config.encryption
    caches = [mc.counter_cache for mc in controllers]

    has_cache = compiled.mode_code == _COUNTER
    num_sets = assoc = lines_per_block = minor_limit = span = 1
    tags = dirty = order = setcount = present = values = None
    bkeys = bvals = bused = cache_stats = None
    bcap = 2
    if has_cache:
        if any(cache is None or cache._on_reencrypt is not None for cache in caches):
            return None
        first = caches[0]
        span = first._block_span
        if span % line_bytes or span <= 0:
            return None
        if any(
            cache._block_span != span
            or cache._num_sets != first._num_sets
            or cache._minor_limit != first._minor_limit
            or cache.config.associativity != first.config.associativity
            for cache in caches
        ):
            return None
        num_sets = first._num_sets
        assoc = first.config.associativity
        minor_limit = first._minor_limit
        lines_per_block = span // line_bytes

        tags = np.full(channels * num_sets * assoc, -1, dtype=_I64)
        dirty = np.zeros(channels * num_sets * assoc, dtype=np.int8)
        order = np.zeros(channels * num_sets * assoc, dtype=_I64)
        setcount = np.zeros(channels * num_sets, dtype=_I64)
        present = np.zeros(channels * num_sets * assoc * lines_per_block, np.int8)
        values = np.zeros(channels * num_sets * assoc * lines_per_block, _I64)
        cache_stats = np.zeros(channels * 6, dtype=_I64)
        imported = 0
        for c, cache in enumerate(caches):
            resident_counters = 0
            for set_index, cache_set in enumerate(cache._sets):
                if len(cache_set) > assoc:
                    return None
                base = (c * num_sets + set_index) * assoc
                for j, (tag, line) in enumerate(cache_set.items()):
                    tags[base + j] = tag
                    dirty[base + j] = 1 if line.dirty else 0
                    order[base + j] = j
                    low = (tag * num_sets + set_index) * span
                    slot = (base + j) * lines_per_block
                    resident_counters += len(line.counters)
                    for addr, value in line.counters.items():
                        offset = addr - low
                        if offset < 0 or offset >= span or offset % line_bytes:
                            return None
                        present[slot + offset // line_bytes] = 1
                        values[slot + offset // line_bytes] = value
                setcount[c * num_sets + set_index] = len(cache_set)
            if any(key < 0 for key in cache._backing):
                return None
            # Resident line counters can reach the backing store through
            # later writebacks even if never written this run.
            imported = max(imported, len(cache._backing) + resident_counters)
            stats = cache.stats
            cache_stats[c * 6 : c * 6 + 6] = (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.writebacks,
                stats.reencryptions,
                stats.reencrypted_lines,
            )
        # Backing store: open-addressed hash, sized so it can absorb every
        # imported key plus every distinct written line address with at
        # most 50% load (insert count is bounded by those two sets).
        max_addrs = 0
        if compiled.run_addr.size:
            max_addrs = int(
                np.bincount(
                    compiled.run_channel[compiled.run_write],
                    weights=compiled.run_lines[compiled.run_write],
                    minlength=channels,
                ).max()
            )
        need = imported + max_addrs + 16
        bcap = 1 << (2 * need - 1).bit_length()
        bkeys = np.full(channels * bcap, -1, dtype=_I64)
        bvals = np.zeros(channels * bcap, dtype=_I64)
        bused = np.zeros(channels, dtype=_I64)
        mask = bcap - 1
        for c, cache in enumerate(caches):
            base = c * bcap
            for key, value in cache._backing.items():
                h = (key * 0x9E3779B97F4A7C15) & mask
                while bkeys[base + h] != -1:
                    h = (h + 1) & mask
                bkeys[base + h] = key
                bvals[base + h] = value
            bused[c] = len(cache._backing)
    else:
        tags = _EMPTY_I64
        dirty = np.zeros(0, dtype=np.int8)
        order = setcount = values = _EMPTY_I64
        present = np.zeros(0, dtype=np.int8)
        bkeys = bvals = bused = cache_stats = _EMPTY_I64

    # Channel / engine timing state, lifted out of the controller objects.
    dram_nf = np.array([mc._dram.next_free for mc in controllers], np.float64)
    dram_busy = np.array([mc._dram.busy for mc in controllers], np.float64)
    last_row = np.full(channels * banks, -1, dtype=_I64)
    for c, mc in enumerate(controllers):
        for bank_id, row_id in mc._last_row.items():
            last_row[c * banks + bank_id] = row_id
    engines = [mc.engine for mc in controllers]
    eng_nf = np.array(
        [0.0 if e is None else e._next_free for e in engines], np.float64
    )
    eng_busy = np.array(
        [0.0 if e is None else e.busy_cycles for e in engines], np.float64
    )
    counter_fetch = np.zeros(channels, dtype=_I64)

    num_streams = len(compiled.sm_step_start)
    ready = np.zeros(num_streams, np.float64)
    cend = np.zeros(num_streams, np.float64)
    wdone = np.zeros(num_streams, np.float64)
    next_abs = np.zeros(num_streams, dtype=_I64)

    def f64(arr):
        return ffi.cast("double *", arr.ctypes.data)

    def i64(arr):
        return ffi.cast("long long *", arr.ctypes.data)

    def i8(arr):
        return ffi.cast("signed char *", arr.ctypes.data)

    finish = lib.seal_run(
        num_streams,
        channels,
        banks,
        float(config.row_miss_penalty_cycles),
        float(config.dram_latency_cycles),
        float(encryption.engine.latency_cycles),
        float(encryption.mac_verify_cycles),
        _COUNTER_BLOCK_BYTES / config.channel_bytes_per_cycle,
        _COUNTER_BLOCK_BYTES,
        1 if compiled.auth else 0,
        compiled.cap,
        i8(compiled.path),
        i64(compiled.channel),
        f64(compiled.occ_dram),
        i64(compiled.bank),
        i64(compiled.row),
        i8(compiled.is_read),
        f64(compiled.occ_engine),
        f64(compiled.occ_mac),
        i64(compiled.tag_bank),
        i64(compiled.tag_row),
        i64(compiled.run_start),
        i64(compiled.run_count),
        i64(compiled.run_block),
        i64(compiled.run_lines),
        i64(compiled.run_bank),
        i64(compiled.run_row),
        i64(compiled.run_addr_start),
        i64(compiled.run_addr),
        i64(compiled.sm_step_start),
        i64(compiled.sm_step_end),
        f64(compiled.step_cycles),
        i64(compiled.step_read_start),
        i64(compiled.step_read_end),
        i64(compiled.step_write_start),
        i64(compiled.step_write_end),
        f64(dram_nf),
        f64(dram_busy),
        i64(last_row),
        f64(eng_nf),
        f64(eng_busy),
        i64(counter_fetch),
        1 if has_cache else 0,
        num_sets,
        assoc,
        lines_per_block,
        minor_limit,
        span,
        line_bytes,
        i64(tags),
        i8(dirty),
        i64(order),
        i64(setcount),
        i8(present),
        i64(values),
        i64(bkeys),
        i64(bvals),
        bcap,
        i64(bused),
        i64(cache_stats),
        f64(ready),
        f64(cend),
        f64(wdone),
        i64(next_abs),
    )
    if finish < 0:
        raise MemoryError("native sim kernel failed to allocate scratch state")

    # Write the timing state back into the controller objects.
    for c, mc in enumerate(controllers):
        server = mc._dram
        server.next_free = float(dram_nf[c])
        server.busy = float(dram_busy[c])
        rows = last_row[c * banks : (c + 1) * banks]
        mc._last_row = {
            bank_id: int(row_id)
            for bank_id, row_id in enumerate(rows.tolist())
            if row_id >= 0
        }
        engine = engines[c]
        if engine is not None:
            engine._next_free = float(eng_nf[c])
            engine.busy_cycles = float(eng_busy[c])
    if has_cache:
        # One global sweep over the dense counter arrays; the per-way
        # counter slices become plain index ranges (``slot_bounds``)
        # instead of thousands of tiny numpy slice/nonzero calls per run.
        nz = np.nonzero(present)[0]
        nz_slot = nz // lines_per_block
        total_slots = channels * num_sets * assoc
        slot_bounds = np.searchsorted(
            nz_slot, np.arange(total_slots + 1)
        ).tolist()
        nz_offsets = ((nz - nz_slot * lines_per_block) * line_bytes).tolist()
        nz_values = values[nz].tolist()
        tags_l = tags.tolist()
        dirty_l = dirty.tolist()
        order_l = order.tolist()
        setcount_l = setcount.tolist()
        for c, cache in enumerate(caches):
            stats = cache.stats
            (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.writebacks,
                stats.reencryptions,
                stats.reencrypted_lines,
            ) = cache_stats[c * 6 : c * 6 + 6].tolist()
            new_sets = []
            for set_index in range(num_sets):
                cache_set: OrderedDict = OrderedDict()
                base = (c * num_sets + set_index) * assoc
                for j in range(int(setcount_l[c * num_sets + set_index])):
                    way = order_l[base + j]
                    slot = base + way
                    tag = tags_l[slot]
                    line = _CacheLine(tag=tag, dirty=bool(dirty_l[slot]))
                    lo_k, hi_k = slot_bounds[slot], slot_bounds[slot + 1]
                    if hi_k > lo_k:
                        low = (tag * num_sets + set_index) * span
                        line.counters = {
                            low + nz_offsets[k]: nz_values[k]
                            for k in range(lo_k, hi_k)
                        }
                    cache_set[tag] = line
                new_sets.append(cache_set)
            cache._sets = new_sets
            keys = bkeys[c * bcap : (c + 1) * bcap]
            occupied = np.nonzero(keys != -1)[0]
            cache._backing = dict(
                zip(
                    keys[occupied].tolist(),
                    bvals[c * bcap : (c + 1) * bcap][occupied].tolist(),
                )
            )

    return (
        float(finish),
        ready,
        cend,
        wdone,
        next_abs,
        counter_fetch.tolist(),
    )


# ----------------------------------------------------------------------
# Pure-Python fallback loop
# ----------------------------------------------------------------------

def _run_python(config, controllers, compiled):
    """Event loop over the compiled arrays without the native kernel.

    Identical schedule and arithmetic — this is the loop the C kernel is a
    transliteration of — so results do not depend on which one ran.
    """
    channels = config.num_channels
    banks = config.banks_per_channel
    dram_nf = [mc._dram.next_free for mc in controllers]
    dram_busy = [mc._dram.busy for mc in controllers]
    last_row: list[list[int]] = []
    for mc in controllers:
        rows = [-1] * banks
        for bank_id, row_id in mc._last_row.items():
            rows[bank_id] = row_id
        last_row.append(rows)
    engines = [mc.engine for mc in controllers]
    eng_nf = [0.0 if eng is None else eng._next_free for eng in engines]
    eng_busy = [0.0 if eng is None else eng.busy_cycles for eng in engines]
    caches = [mc.counter_cache for mc in controllers]
    counter_fetch = [0] * channels

    penalty = config.row_miss_penalty_cycles
    dram_latency = config.dram_latency_cycles
    eng_latency = config.encryption.engine.latency_cycles
    verify = config.encryption.mac_verify_cycles
    block_occ = _COUNTER_BLOCK_BYTES / config.channel_bytes_per_cycle
    auth = compiled.auth
    cap = compiled.cap

    # Per-request rows as tuples (one zip, no per-request math) plus the
    # per-request run slices resolved against the flat run arrays.
    n = compiled.num_requests
    runs_list: list = [None] * n
    if compiled.run_block.size:
        rs = compiled.run_start.tolist()
        rc = compiled.run_count.tolist()
        blocks = compiled.run_block.tolist()
        lines = compiled.run_lines.tolist()
        rbanks = compiled.run_bank.tolist()
        rrows = compiled.run_row.tolist()
        astarts = compiled.run_addr_start.tolist()
        addrs = compiled.run_addr.tolist()
        is_read_l = compiled.is_read.tolist()
        for i in np.nonzero(compiled.run_count)[0].tolist():
            runs = []
            for r in range(rs[i], rs[i] + rc[i]):
                if is_read_l[i]:
                    addresses = None
                else:
                    a0 = astarts[r]
                    addresses = tuple(addrs[a0 : a0 + lines[r]])
                runs.append((blocks[r], lines[r], rbanks[r], rrows[r], addresses))
            runs_list[i] = runs
    requests = list(
        zip(
            compiled.path.tolist(),
            compiled.channel.tolist(),
            compiled.occ_dram.tolist(),
            compiled.bank.tolist(),
            compiled.row.tolist(),
            compiled.is_read.tolist(),
            compiled.occ_engine.tolist(),
            runs_list,
            compiled.occ_mac.tolist(),
            compiled.tag_bank.tolist(),
            compiled.tag_row.tolist(),
        )
    )

    def issue(lo: int, hi: int, when: float) -> float:
        """Replay of ``GpuSimulator._issue`` + ``MemoryController.submit``
        over compiled request rows (same wave chunking, same arithmetic,
        same per-channel ordering — only the object traffic is gone)."""
        done = when
        for off in range(lo, hi, cap):
            T = when if off == lo else done
            wave_done = T
            for path, c, occ_d, bank, row, is_read, occ_e, runs, occ_m, t_bank, t_row in requests[
                off : min(off + cap, hi)
            ]:
                if path == _BYPASS:
                    rows = last_row[c]
                    if rows[bank] != row:
                        rows[bank] = row
                        arrival = T + penalty
                    else:
                        arrival = T
                    nf = dram_nf[c]
                    start = arrival if arrival > nf else nf
                    nf = start + occ_d
                    dram_nf[c] = nf
                    dram_busy[c] += occ_d
                    completion = nf + dram_latency
                elif path == _COUNTER:
                    available = T
                    cache = caches[c]
                    rows = last_row[c]
                    for block_id, count, f_bank, f_row, addresses in runs:
                        if not cache.access_run(block_id, count, addresses):
                            if rows[f_bank] != f_row:
                                rows[f_bank] = f_row
                                arrival = T + penalty
                            else:
                                arrival = T
                            nf = dram_nf[c]
                            start = arrival if arrival > nf else nf
                            nf = start + block_occ
                            dram_nf[c] = nf
                            dram_busy[c] += block_occ
                            counter_fetch[c] += _COUNTER_BLOCK_BYTES
                            fetched = nf + dram_latency
                            if fetched > available:
                                available = fetched
                    nf = eng_nf[c]
                    arrival = float(int(available))
                    start = arrival if arrival > nf else nf
                    nf = start + occ_e
                    eng_nf[c] = nf
                    eng_busy[c] += occ_e
                    pad_done = int(nf + eng_latency)
                    data_arrival = T if is_read else pad_done
                    if rows[bank] != row:
                        rows[bank] = row
                        data_arrival = data_arrival + penalty
                    nf = dram_nf[c]
                    start = data_arrival if data_arrival > nf else nf
                    nf = start + occ_d
                    dram_nf[c] = nf
                    dram_busy[c] += occ_d
                    data_done = nf + dram_latency
                    if is_read:
                        completion = (
                            data_done if data_done > pad_done else pad_done
                        ) + 1.0
                    else:
                        completion = data_done
                else:  # _DIRECT
                    rows = last_row[c]
                    if is_read:
                        if rows[bank] != row:
                            rows[bank] = row
                            arrival = T + penalty
                        else:
                            arrival = T
                        nf = dram_nf[c]
                        start = arrival if arrival > nf else nf
                        nf = start + occ_d
                        dram_nf[c] = nf
                        dram_busy[c] += occ_d
                        data_done = nf + dram_latency
                        nf = eng_nf[c]
                        arrival = float(int(data_done))
                        start = arrival if arrival > nf else nf
                        nf = start + occ_e
                        eng_nf[c] = nf
                        eng_busy[c] += occ_e
                        completion = int(nf + eng_latency)
                    else:
                        nf = eng_nf[c]
                        arrival = float(int(T))
                        start = arrival if arrival > nf else nf
                        nf = start + occ_e
                        eng_nf[c] = nf
                        eng_busy[c] += occ_e
                        cipher_done = int(nf + eng_latency)
                        if rows[bank] != row:
                            rows[bank] = row
                            arrival = cipher_done + penalty
                        else:
                            arrival = cipher_done
                        nf = dram_nf[c]
                        start = arrival if arrival > nf else nf
                        nf = start + occ_d
                        dram_nf[c] = nf
                        dram_busy[c] += occ_d
                        completion = nf + dram_latency
                if auth and path:
                    rows = last_row[c]
                    tag_arrival = T if is_read else completion
                    if rows[t_bank] != t_row:
                        rows[t_bank] = t_row
                        tag_arrival = tag_arrival + penalty
                    nf = dram_nf[c]
                    start = tag_arrival if tag_arrival > nf else nf
                    nf = start + occ_m
                    dram_nf[c] = nf
                    dram_busy[c] += occ_m
                    tag_done = nf + dram_latency
                    if is_read:
                        completion = (
                            completion if completion > tag_done else tag_done
                        ) + verify
                    else:
                        completion = tag_done
                if completion > wave_done:
                    wave_done = completion
            done = wave_done
        return done

    # The event loop: jump from one scheduled event to the next.
    step_cc = compiled.step_cycles.tolist()
    step_rs = compiled.step_read_start.tolist()
    step_re = compiled.step_read_end.tolist()
    step_ws = compiled.step_write_start.tolist()
    step_we = compiled.step_write_end.tolist()
    sm_start = compiled.sm_step_start.tolist()
    sm_end = compiled.sm_step_end.tolist()
    count = len(sm_start)
    ready_time = [0.0] * count
    compute_end = [0.0] * count
    write_done = [0.0] * count
    next_abs = list(sm_start)
    heap: list[tuple[float, int]] = []
    for sm_id in range(count):
        first_step = sm_start[sm_id]
        if first_step >= sm_end[sm_id]:
            continue
        ready = issue(step_rs[first_step], step_re[first_step], 0.0)
        ready_time[sm_id] = ready
        heapq.heappush(heap, (ready if ready > 0.0 else 0.0, sm_id))

    finish = 0.0
    while heap:
        start, sm_id = heapq.heappop(heap)
        step = next_abs[sm_id]
        end = start + step_cc[step]
        if step_ws[step] < step_we[step]:
            done = issue(step_ws[step], step_we[step], end)
            if done > write_done[sm_id]:
                write_done[sm_id] = done
        compute_end[sm_id] = end
        step += 1
        next_abs[sm_id] = step
        if step < sm_end[sm_id]:
            ready = issue(step_rs[step], step_re[step], start)
            ready_time[sm_id] = ready
            heapq.heappush(heap, (ready if ready > end else end, sm_id))
        else:
            if end > finish:
                finish = end
            if write_done[sm_id] > finish:
                finish = write_done[sm_id]

    for sm_id in range(count):
        if compute_end[sm_id] > finish:
            finish = compute_end[sm_id]
        if write_done[sm_id] > finish:
            finish = write_done[sm_id]

    # Write the timing state back into the controller objects.
    for c, mc in enumerate(controllers):
        server = mc._dram
        server.next_free = dram_nf[c]
        server.busy = dram_busy[c]
        mc._last_row = {
            bank_id: row_id
            for bank_id, row_id in enumerate(last_row[c])
            if row_id >= 0
        }
        engine = engines[c]
        if engine is not None:
            engine._next_free = eng_nf[c]
            engine.busy_cycles = eng_busy[c]

    return finish, ready_time, compute_end, write_done, next_abs, counter_fetch
