"""Streaming-multiprocessor execution model.

A kernel is lowered (by :mod:`repro.sim.workloads`) into one stream of
:class:`TileStep` items per SM.  A tile step is the unit GPU kernels
naturally pipeline: fetch the operand tiles for one unit of work, compute
on them, write results.  The SM model executes steps with double buffering
— while computing step *i* it prefetches the reads of step *i+1* — so
compute and memory overlap exactly as far as the memory system allows,
which is what makes the simulated kernels bandwidth-bound (or not) for the
same reasons the real ones are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .request import MemRequest

__all__ = ["TileStep", "SmState", "SmStats"]


@dataclass(frozen=True, slots=True)
class TileStep:
    """One pipelined unit of SM work.

    ``compute_cycles`` is how long the SM's datapath is busy once operands
    arrived; ``instructions`` is the issue-slot count it retires (defaults
    to ``compute_cycles`` at issue width 1).
    """

    compute_cycles: int
    reads: tuple[MemRequest, ...] = ()
    writes: tuple[MemRequest, ...] = ()
    instructions: int = -1

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")
        if self.instructions < 0:
            object.__setattr__(self, "instructions", self.compute_cycles)


@dataclass
class SmStats:
    """Per-SM execution accounting."""

    instructions: int = 0
    busy_cycles: int = 0
    steps: int = 0
    read_requests: int = 0
    write_requests: int = 0


@dataclass
class SmState:
    """Progress of one SM through its step stream (driven by GpuSimulator)."""

    sm_id: int
    steps: list[TileStep]
    next_step: int = 0
    ready_time: float = 0.0  # when the next step's operands are available
    compute_end: float = 0.0  # when the previous step's compute finishes
    last_write_done: float = 0.0
    stats: SmStats = field(default_factory=SmStats)

    @property
    def done(self) -> bool:
        return self.next_step >= len(self.steps)

    @property
    def next_event_time(self) -> float:
        """Earliest time the next step can start computing."""
        return max(self.ready_time, self.compute_end)
