"""Simulator configuration: the paper's GTX480 + encryption-engine setup.

Section IV-A: *"We model the microarchitecture for NVIDIA GeForce GTX480
GPU with 15 streaming multiprocessors ... a GDDR5 memory bus with 1848 MHz,
384-bit bus bandwidth, and 6 channels ... a pipeline AES encryption engine
with 128-bit block, in which the overall AES encryption latency for a cache
line is 20 cycles and the bandwidth of each AES engine is 8 GB/s"* — one
engine per memory controller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..crypto.counter_cache import CounterCacheConfig
from ..crypto.engine import PAPER_ENGINE, EngineSpec

__all__ = [
    "EncryptionMode",
    "EncryptionConfig",
    "GpuConfig",
    "GTX480_CONFIG",
    "gtx480_config",
]


class EncryptionMode(enum.Enum):
    """Which memory-encryption scheme the memory controllers apply."""

    NONE = "none"
    DIRECT = "direct"
    COUNTER = "counter"


@dataclass(frozen=True)
class EncryptionConfig:
    """Encryption-engine and counter-cache parameters.

    ``selective`` distinguishes SEAL (criticality-tagged requests bypass the
    engine) from full encryption (every request is treated as critical).
    ``authenticate`` additionally models per-line MACs (the integrity half
    of Yan et al. [24]; an extension beyond the paper's confidentiality
    focus): each encrypted line carries ``mac_bytes`` of tag traffic and a
    short verification stage after decryption.
    """

    mode: EncryptionMode = EncryptionMode.NONE
    selective: bool = False
    engine: EngineSpec = PAPER_ENGINE
    counter_cache: CounterCacheConfig = field(default_factory=CounterCacheConfig)
    authenticate: bool = False
    mac_bytes: int = 8
    mac_verify_cycles: int = 4

    @property
    def enabled(self) -> bool:
        return self.mode is not EncryptionMode.NONE

    def label(self) -> str:
        """The scheme name used in the paper's figures."""
        if not self.enabled:
            return "Baseline"
        base = "Direct" if self.mode is EncryptionMode.DIRECT else "Counter"
        if self.selective:
            return "SEAL-D" if self.mode is EncryptionMode.DIRECT else "SEAL-C"
        return base


@dataclass(frozen=True)
class GpuConfig:
    """Cycle-level GPU model parameters (all cycle values in core cycles).

    The defaults model the GTX480 of the paper.  Derived properties convert
    the GDDR5 and AES-engine bandwidths into bytes per core cycle, which is
    the unit the rate-server components operate in.
    """

    name: str = "GTX480"
    num_sms: int = 15
    core_clock_ghz: float = 0.7
    macs_per_sm_per_cycle: int = 32  # 32 CUDA cores per GTX480 SM
    issue_width: int = 1  # retired instructions per SM cycle while busy
    line_bytes: int = 128
    num_channels: int = 6
    # GDDR5 @ 1848 MHz, 384-bit total bus → 64-bit per channel, DDR:
    # 1.848 GHz × 2 × 8 B = 29.568 GB/s per channel (177.4 GB/s total).
    channel_bandwidth_gbps: float = 29.568
    dram_latency_cycles: int = 220
    row_buffer_bytes: int = 2048
    row_miss_penalty_cycles: int = 12
    banks_per_channel: int = 16
    max_outstanding_per_sm: int = 48  # MSHR-style cap on in-flight requests
    encryption: EncryptionConfig = field(default_factory=EncryptionConfig)

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.num_channels <= 0:
            raise ValueError("num_sms and num_channels must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if self.core_clock_ghz <= 0 or self.channel_bandwidth_gbps <= 0:
            raise ValueError("clocks and bandwidths must be positive")

    # -- derived rates (bytes per core cycle) ---------------------------
    @property
    def channel_bytes_per_cycle(self) -> float:
        return self.channel_bandwidth_gbps / self.core_clock_ghz

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.channel_bandwidth_gbps * self.num_channels

    @property
    def engine_bytes_per_cycle(self) -> float:
        return self.encryption.engine.bytes_per_cycle(self.core_clock_ghz)

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.num_sms * self.macs_per_sm_per_cycle

    @property
    def peak_ipc(self) -> float:
        return self.num_sms * self.issue_width

    def with_encryption(self, encryption: EncryptionConfig) -> "GpuConfig":
        """Copy of this config with a different encryption scheme."""
        return replace(self, encryption=encryption)


#: The paper's evaluated configuration.
GTX480_CONFIG = GpuConfig()


def gtx480_config(
    mode: EncryptionMode | str = EncryptionMode.NONE,
    *,
    selective: bool = False,
    counter_cache_kb: int = 96,
    engine: EngineSpec = PAPER_ENGINE,
) -> GpuConfig:
    """Convenience factory: GTX480 with a chosen encryption scheme.

    ``counter_cache_kb`` is the *total* on-chip counter-cache budget, split
    evenly over the memory controllers (Figure 1 sweeps 24–1536 KB).
    """
    if isinstance(mode, str):
        mode = EncryptionMode(mode)
    per_mc = max(
        CounterCacheConfig().block_bytes * 8,
        counter_cache_kb * 1024 // GTX480_CONFIG.num_channels,
    )
    cache = CounterCacheConfig(size_bytes=per_mc)
    return GTX480_CONFIG.with_encryption(
        EncryptionConfig(mode=mode, selective=selective, engine=engine, counter_cache=cache)
    )
