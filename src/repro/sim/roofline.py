"""Analytical roofline model — a cross-check on the event simulator.

The paper's bandwidth-gap argument is a roofline argument: a kernel's
steady-state time is bounded below by its compute time, its DRAM time, and
(when encrypted) its AES-engine time, and the largest bound wins.  This
module computes those bounds from a lowered workload's trace statistics,
so the discrete-event results in :mod:`repro.sim.gpu` can be validated
against first principles (see ``tests/sim/test_roofline.py``): in the
saturated regimes the DES must approach the roofline, and it can never
beat it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import EncryptionMode, GpuConfig
from .sm import TileStep
from .trace import TraceStats, trace_stats

__all__ = ["RooflinePrediction", "predict", "predict_streams"]


@dataclass(frozen=True)
class RooflinePrediction:
    """Lower-bound execution time and the binding resource."""

    compute_cycles: float
    dram_cycles: float
    engine_cycles: float
    instructions: int

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.dram_cycles, self.engine_cycles)

    @property
    def bottleneck(self) -> str:
        bounds = {
            "compute": self.compute_cycles,
            "dram": self.dram_cycles,
            "engine": self.engine_cycles,
        }
        return max(bounds, key=bounds.get)

    @property
    def ipc(self) -> float:
        cycles = self.cycles
        return self.instructions / cycles if cycles else 0.0


def predict(stats: TraceStats, config: GpuConfig, *, active_sms: int | None = None) -> RooflinePrediction:
    """Roofline bounds for a workload with the given trace statistics.

    * compute: total busy cycles spread over the active SMs;
    * DRAM: total bytes (plus counter-fetch overhead in counter mode,
      approximated as one 64-byte block per 4 KB of encrypted data) over
      aggregate channel bandwidth;
    * engine: encrypted bytes over aggregate engine bandwidth (zero when
      encryption is off).
    """
    active = active_sms or config.num_sms
    compute = stats.compute_cycles / active

    dram_bytes = float(stats.total_bytes)
    encryption = config.encryption
    engine = 0.0
    if encryption.enabled:
        engine_rate = config.engine_bytes_per_cycle * config.num_channels
        engine = stats.encrypted_bytes / engine_rate
        if encryption.mode is EncryptionMode.COUNTER:
            dram_bytes += stats.encrypted_bytes / 4096 * 64
        if encryption.authenticate:
            dram_bytes += (
                stats.encrypted_bytes
                / config.line_bytes
                * encryption.mac_bytes
            )
    dram_rate = config.channel_bytes_per_cycle * config.num_channels
    dram = dram_bytes / dram_rate
    return RooflinePrediction(
        compute_cycles=compute,
        dram_cycles=dram,
        engine_cycles=engine,
        instructions=stats.instructions,
    )


def predict_streams(
    streams: list[list[TileStep]], config: GpuConfig
) -> RooflinePrediction:
    """Roofline prediction straight from lowered per-SM streams."""
    active = sum(1 for stream in streams if stream)
    return predict(trace_stats(streams), config, active_sms=active or None)
