"""Kernel lowering: turn layers into per-SM memory/compute step streams.

CONV and FC layers are lowered to tiled GEMM — the same im2col lowering the
functional library in :mod:`repro.nn.functional` performs, and the dominant
way GPUs of the GTX480 era executed convolutions.  POOL layers are lowered
to a streaming read/reduce/write kernel.  Each lowered step carries real
addresses from a :class:`repro.core.memory.SecureHeap`, where encrypted and
plaintext data live in separate ``emalloc``/``malloc`` regions so requests
inherit exact criticality tags.

Tile size is the arithmetic-intensity knob: a GEMM with ``tile`` = 32 moves
``2·tile²·tile_k`` operand bytes per ``tile²·tile_k`` MACs, which puts CONV
layers in the moderately bandwidth-bound regime and 1024³ matmul near the
compute/bandwidth balance point — the regimes the paper's Figures 1 and 5
report.  POOL layers are almost pure streaming and therefore the most
bandwidth-bound (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory import Allocation, SecureHeap
from ..core.plan import LayerTraffic
from .config import GpuConfig
from .request import Access, MemRequest
from .sm import TileStep

__all__ = [
    "DEFAULT_TILE",
    "POOL_OPS_PER_ELEMENT",
    "matmul_traffic",
    "matmul_streams",
    "gemm_layer_streams",
    "pool_layer_streams",
    "layer_streams",
]

DEFAULT_TILE = 32
#: Retired instructions per pooled element (loads, compares, indexing) —
#: a calibration constant of the pooling-kernel model.
POOL_OPS_PER_ELEMENT = 8
#: Cap on steps materialised per SM per layer; larger layers merge
#: consecutive k-steps (same byte/MAC totals, coarser pipelining).
MAX_STEPS_PER_SM = 4096


@dataclass
class _RegionCursor:
    """Sequentially walks an allocation, wrapping at the end.

    Wrapping models operand reuse: a second sweep revisits the same
    addresses, which is what gives the counter cache its hits.
    """

    allocation: Allocation | None
    offset: int = 0

    def take(self, nbytes: int, line_bytes: int) -> int:
        """Line-aligned address for the next ``nbytes`` chunk."""
        if self.allocation is None or nbytes <= 0:
            raise ValueError("cursor has no backing region")
        usable = max(self.allocation.size, line_bytes)
        address = self.allocation.address + (self.offset % usable) // line_bytes * line_bytes
        self.offset += nbytes
        return address


def _split_requests(
    cursor: _RegionCursor,
    nbytes: int,
    *,
    access: Access,
    encrypted: bool,
    sm_id: int,
    line_bytes: int,
    parts: int,
    tag: str,
) -> list[MemRequest]:
    """Spread ``nbytes`` over ``parts`` requests at line-stepped addresses.

    Splitting keeps the channel interleave realistic (consecutive lines map
    to consecutive channels) without materialising one request per line.
    """
    if nbytes <= 0:
        return []
    parts = max(1, min(parts, nbytes // line_bytes or 1))
    share = nbytes // parts
    remainder = nbytes - share * parts
    requests = []
    for index in range(parts):
        size = share + (remainder if index == parts - 1 else 0)
        if size <= 0:
            continue
        address = cursor.take(size, line_bytes)
        requests.append(
            MemRequest(
                address=address,
                size=size,
                access=access,
                encrypted=encrypted,
                sm_id=sm_id,
                tag=tag,
            )
        )
    return requests


@dataclass
class _OperandRegions:
    """Encrypted/plaintext region pair for one operand, with split ratio."""

    encrypted: _RegionCursor | None
    plain: _RegionCursor | None
    encrypted_fraction: float

    @classmethod
    def allocate(
        cls,
        heap: SecureHeap,
        name: str,
        encrypted_bytes: int,
        plain_bytes: int,
    ) -> "_OperandRegions":
        total = encrypted_bytes + plain_bytes
        fraction = encrypted_bytes / total if total else 0.0
        enc = (
            _RegionCursor(heap.emalloc(f"{name}.enc", encrypted_bytes))
            if encrypted_bytes
            else None
        )
        plain = (
            _RegionCursor(heap.malloc(f"{name}.plain", plain_bytes))
            if plain_bytes
            else None
        )
        return cls(enc, plain, fraction)

    def requests(
        self,
        nbytes: int,
        *,
        access: Access,
        sm_id: int,
        line_bytes: int,
        parts: int,
        tag: str,
    ) -> list[MemRequest]:
        """Reads/writes for ``nbytes`` of this operand, split by criticality."""
        encrypted_bytes = int(round(nbytes * self.encrypted_fraction))
        plain_bytes = nbytes - encrypted_bytes
        requests: list[MemRequest] = []
        if encrypted_bytes and self.encrypted is not None:
            requests += _split_requests(
                self.encrypted,
                encrypted_bytes,
                access=access,
                encrypted=True,
                sm_id=sm_id,
                line_bytes=line_bytes,
                parts=parts,
                tag=tag,
            )
        elif encrypted_bytes and self.plain is not None:
            plain_bytes += encrypted_bytes
        if plain_bytes and self.plain is not None:
            requests += _split_requests(
                self.plain,
                plain_bytes,
                access=access,
                encrypted=False,
                sm_id=sm_id,
                line_bytes=line_bytes,
                parts=parts,
                tag=tag,
            )
        elif plain_bytes and self.encrypted is not None:
            requests += _split_requests(
                self.encrypted,
                plain_bytes,
                access=access,
                encrypted=True,
                sm_id=sm_id,
                line_bytes=line_bytes,
                parts=parts,
                tag=tag,
            )
        return requests


def _tile_sizes(extent: int, tile: int) -> list[int]:
    """Split ``extent`` into tile-sized pieces (last piece may be short)."""
    if extent <= 0:
        return []
    full, rest = divmod(extent, tile)
    return [tile] * full + ([rest] if rest else [])


def _gemm_streams(
    config: GpuConfig,
    *,
    name: str,
    m: int,
    n: int,
    k: int,
    a_regions: _OperandRegions,
    b_regions: _OperandRegions,
    c_regions: _OperandRegions,
    macs_total: int,
    tile: int,
    element_bytes: int = 4,
) -> list[list[TileStep]]:
    """Lower C[m,n] = A[m,k] @ B[k,n] into per-SM tile-step streams.

    Output tiles are distributed round-robin over SMs; each output tile
    iterates the K dimension in ``tile``-sized chunks, reading one A tile
    and one B tile per chunk and writing the C tile at the end.
    ``macs_total`` lets CONV layers charge their exact MAC count even when
    the lowered GEMM is padded.
    """
    line = config.line_bytes
    parts = config.num_channels
    m_tiles = _tile_sizes(m, tile)
    n_tiles = _tile_sizes(n, tile)
    k_tiles = _tile_sizes(k, tile)

    # Merge k-chunks if the stream would exceed the step budget.
    total_steps = len(m_tiles) * len(n_tiles) * len(k_tiles)
    budget = MAX_STEPS_PER_SM * config.num_sms
    merge = max(1, -(-total_steps // budget))  # ceil division
    if merge > 1:
        merged: list[int] = []
        for start in range(0, len(k_tiles), merge):
            merged.append(sum(k_tiles[start : start + merge]))
        k_tiles = merged

    gemm_macs = m * n * k
    scale = macs_total / gemm_macs if gemm_macs else 1.0
    streams: list[list[TileStep]] = [[] for _ in range(config.num_sms)]
    sm_id = 0
    for tile_m in m_tiles:
        for tile_n in n_tiles:
            stream = streams[sm_id]
            for index, tile_k in enumerate(k_tiles):
                reads = a_regions.requests(
                    tile_m * tile_k * element_bytes,
                    access=Access.READ,
                    sm_id=sm_id,
                    line_bytes=line,
                    parts=parts,
                    tag=f"{name}.A",
                )
                reads += b_regions.requests(
                    tile_k * tile_n * element_bytes,
                    access=Access.READ,
                    sm_id=sm_id,
                    line_bytes=line,
                    parts=parts,
                    tag=f"{name}.B",
                )
                writes: list[MemRequest] = []
                if index == len(k_tiles) - 1:
                    writes = c_regions.requests(
                        tile_m * tile_n * element_bytes,
                        access=Access.WRITE,
                        sm_id=sm_id,
                        line_bytes=line,
                        parts=parts,
                        tag=f"{name}.C",
                    )
                macs = int(tile_m * tile_n * tile_k * scale)
                cycles = max(1, -(-macs // config.macs_per_sm_per_cycle))
                stream.append(
                    TileStep(
                        compute_cycles=cycles,
                        reads=tuple(reads),
                        writes=tuple(writes),
                    )
                )
            sm_id = (sm_id + 1) % config.num_sms
    return streams


# ----------------------------------------------------------------------
# Public workload builders
# ----------------------------------------------------------------------
def matmul_traffic(
    m: int, n: int, k: int, *, encrypted: bool = True, element_bytes: int = 4
) -> LayerTraffic:
    """Describe a plain matrix multiplication as a layer-traffic record.

    Used by the Figure 1 experiment (matmul is "the most common operation
    in DL algorithms"); ``encrypted`` applies full encryption to all three
    matrices, as the straightforward Direct/Counter schemes do.
    """
    a_bytes = m * k * element_bytes
    b_bytes = k * n * element_bytes
    c_bytes = m * n * element_bytes
    return LayerTraffic(
        name=f"matmul{m}x{n}x{k}",
        kind="fc",
        macs=m * n * k,
        weight_bytes_encrypted=b_bytes if encrypted else 0,
        weight_bytes_plain=0 if encrypted else b_bytes,
        input_bytes_encrypted=a_bytes if encrypted else 0,
        input_bytes_plain=0 if encrypted else a_bytes,
        output_bytes_encrypted=c_bytes if encrypted else 0,
        output_bytes_plain=0 if encrypted else c_bytes,
        gemm_m=m,
        gemm_n=n,
        gemm_k=k,
    )


def matmul_streams(
    config: GpuConfig,
    m: int,
    n: int,
    k: int,
    *,
    encrypted: bool = True,
    tile: int = DEFAULT_TILE,
    heap: SecureHeap | None = None,
) -> list[list[TileStep]]:
    """Per-SM streams for a tiled matrix multiplication."""
    return gemm_layer_streams(
        config,
        matmul_traffic(m, n, k, encrypted=encrypted),
        tile=tile,
        heap=heap,
    )


def gemm_layer_streams(
    config: GpuConfig,
    traffic: LayerTraffic,
    *,
    tile: int = DEFAULT_TILE,
    heap: SecureHeap | None = None,
) -> list[list[TileStep]]:
    """Per-SM streams for one CONV or FC layer (im2col GEMM lowering)."""
    if traffic.kind not in ("conv", "fc"):
        raise ValueError(f"gemm lowering needs a conv/fc layer, got {traffic.kind}")
    if not (traffic.gemm_m and traffic.gemm_n and traffic.gemm_k):
        raise ValueError(f"{traffic.name}: missing GEMM dimensions")
    if heap is None:  # empty heaps are falsy via __len__, so test identity
        heap = SecureHeap()
    # The im2col operand is ~k² larger than the feature map; criticality
    # fractions carry over because im2col replicates channels uniformly.
    a_regions = _OperandRegions.allocate(
        heap,
        f"{traffic.name}.in",
        traffic.input_bytes_encrypted,
        traffic.input_bytes_plain,
    )
    b_regions = _OperandRegions.allocate(
        heap,
        f"{traffic.name}.w",
        traffic.weight_bytes_encrypted,
        traffic.weight_bytes_plain,
    )
    c_regions = _OperandRegions.allocate(
        heap,
        f"{traffic.name}.out",
        traffic.output_bytes_encrypted,
        traffic.output_bytes_plain,
    )
    return _gemm_streams(
        config,
        name=traffic.name,
        m=traffic.gemm_m,
        n=traffic.gemm_n,
        k=traffic.gemm_k,
        a_regions=a_regions,
        b_regions=b_regions,
        c_regions=c_regions,
        macs_total=traffic.macs,
        tile=tile,
        element_bytes=traffic.element_bytes,
    )


def pool_layer_streams(
    config: GpuConfig,
    traffic: LayerTraffic,
    *,
    lines_per_step: int = 16,
    ops_per_element: int = POOL_OPS_PER_ELEMENT,
    heap: SecureHeap | None = None,
    element_bytes: int | None = None,
) -> list[list[TileStep]]:
    """Per-SM streams for a POOL layer: streaming read/reduce/write."""
    if traffic.kind != "pool":
        raise ValueError(f"pool lowering needs a pool layer, got {traffic.kind}")
    if element_bytes is None:
        element_bytes = traffic.element_bytes
    if heap is None:  # empty heaps are falsy via __len__, so test identity
        heap = SecureHeap()
    in_regions = _OperandRegions.allocate(
        heap,
        f"{traffic.name}.in",
        traffic.input_bytes_encrypted,
        traffic.input_bytes_plain,
    )
    out_regions = _OperandRegions.allocate(
        heap,
        f"{traffic.name}.out",
        traffic.output_bytes_encrypted,
        traffic.output_bytes_plain,
    )
    line = config.line_bytes
    in_bytes = traffic.input_bytes_encrypted + traffic.input_bytes_plain
    out_bytes = traffic.output_bytes_encrypted + traffic.output_bytes_plain
    if in_bytes <= 0:
        return [[] for _ in range(config.num_sms)]

    step_in_bytes = lines_per_step * line
    total_steps = max(1, -(-in_bytes // step_in_bytes))
    budget = MAX_STEPS_PER_SM * config.num_sms
    if total_steps > budget:
        step_in_bytes = -(-in_bytes // budget)
        total_steps = max(1, -(-in_bytes // step_in_bytes))
    out_ratio = out_bytes / in_bytes
    streams: list[list[TileStep]] = [[] for _ in range(config.num_sms)]
    consumed = 0
    for step in range(total_steps):
        sm_id = step % config.num_sms
        this_in = min(step_in_bytes, in_bytes - consumed)
        consumed += this_in
        reads = in_regions.requests(
            this_in,
            access=Access.READ,
            sm_id=sm_id,
            line_bytes=line,
            parts=config.num_channels,
            tag=f"{traffic.name}.in",
        )
        this_out = int(round(this_in * out_ratio))
        writes = (
            out_regions.requests(
                this_out,
                access=Access.WRITE,
                sm_id=sm_id,
                line_bytes=line,
                parts=config.num_channels,
                tag=f"{traffic.name}.out",
            )
            if this_out
            else []
        )
        elements = this_in // element_bytes
        ops = elements * ops_per_element
        cycles = max(
            1, -(-ops // (config.macs_per_sm_per_cycle))
        )
        streams[sm_id].append(
            TileStep(compute_cycles=cycles, reads=tuple(reads), writes=tuple(writes))
        )
    return streams


def layer_streams(
    config: GpuConfig,
    traffic: LayerTraffic,
    *,
    tile: int = DEFAULT_TILE,
    heap: SecureHeap | None = None,
) -> list[list[TileStep]]:
    """Lower any layer-traffic record into per-SM streams."""
    if traffic.kind == "pool":
        return pool_layer_streams(config, traffic, heap=heap)
    return gemm_layer_streams(config, traffic, tile=tile, heap=heap)
