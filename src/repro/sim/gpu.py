"""Top-level GPU simulator: SMs + address-interleaved memory controllers.

A discrete-event simulation over continuous time: SM events are processed
in global time order from a heap, so memory controllers see request streams
interleaved the way concurrently executing SMs would interleave them.  The
result is an IPC figure comparable across encryption schemes — exactly the
measurement the paper's Figures 1 and 5–8 report (always normalized to the
unencrypted baseline).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .config import EncryptionMode, GpuConfig
from .engine import resolve_sim_backend, run_vector
from .memctrl import MemoryController
from .request import MemRequest
from .sm import SmState, SmStats, TileStep

__all__ = ["SimResult", "GpuSimulator"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one kernel (or layer-sequence) simulation."""

    label: str
    cycles: float
    instructions: int
    num_sms: int
    data_bytes: int
    counter_fetch_bytes: int
    encrypted_bytes: int
    bypass_bytes: int
    dram_utilization: float
    engine_utilization: float
    counter_hit_rate: float
    sm_stats: tuple[SmStats, ...] = field(repr=False, default=())

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def achieved_bandwidth_fraction(self) -> float:
        return self.dram_utilization

    def normalized_ipc(self, baseline: "SimResult") -> float:
        """IPC relative to an unencrypted baseline run of the same work."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def latency_ratio(self, baseline: "SimResult") -> float:
        """Execution-time ratio versus the baseline (same work assumed)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles


class GpuSimulator:
    """Simulate one GPU configuration executing per-SM step streams.

    Two interchangeable engines drive the same simulation: the ``scalar``
    backend walks request objects through the controller models one at a
    time (the readable reference), while the ``vector`` backend
    (:mod:`repro.sim.engine`) compiles the streams into flat arrays and
    replays the identical event schedule with primitive operations only —
    bit-identical results, an order of magnitude faster.  ``backend=None``
    defers to ``REPRO_SIM_BACKEND`` and then the vector default.
    """

    def __init__(self, config: GpuConfig, backend: str | None = None) -> None:
        self.config = config
        self.backend = resolve_sim_backend(backend)
        self.controllers = [
            MemoryController(channel, config) for channel in range(config.num_channels)
        ]

    # ------------------------------------------------------------------
    def _route(self, request: MemRequest) -> MemoryController:
        """Line-interleaved address mapping across channels."""
        channel = (request.address // self.config.line_bytes) % self.config.num_channels
        return self.controllers[channel]

    def _issue(self, requests: tuple[MemRequest, ...], when: float) -> float:
        """Submit requests; return the time the last response arrives.

        At most ``max_outstanding_per_sm`` requests are in flight per SM
        (the MSHR limit); excess requests wait for the previous wave.
        """
        cap = max(1, self.config.max_outstanding_per_sm)
        done = when
        for start in range(0, len(requests), cap):
            wave_start = done if start else when
            wave_done = wave_start
            for request in requests[start : start + cap]:
                wave_done = max(
                    wave_done, self._route(request).submit(request, wave_start)
                )
            done = wave_done
        return done

    # ------------------------------------------------------------------
    def run(self, streams: list[list[TileStep]], label: str = "") -> SimResult:
        """Execute one stream of tile steps per SM to completion.

        ``streams`` shorter than ``num_sms`` leave the remaining SMs idle
        (small kernels do not fill the machine, exactly as on hardware).
        """
        metrics = get_metrics()
        metrics.count("sim.kernel_runs")
        metrics.count(f"sim.backend.{self.backend}")
        tracer = get_tracer()
        with tracer.span("sim.kernel") as span:
            wall_start = time.time()
            with metrics.timer("sim.kernel"):
                result = self._run(streams, label)
            if span:
                self._annotate_span(span, result, wall_start)
        metrics.count("sim.data_bytes", result.data_bytes)
        return result

    def _annotate_span(self, span, result: SimResult, wall_start: float) -> None:
        """Attach the kernel's attrs, AES-engine occupancy and counter-cache
        events, and per-SM occupancy child spans (tracing-enabled only).

        SM rows live in the cycle domain; for the wall-clock trace each SM
        gets a child span scaled to its busy-cycle share of the kernel, so
        Perfetto shows relative occupancy without pretending the simulator
        replayed real time.
        """
        tracer = get_tracer()
        span.set_attr("label", result.label)
        span.set_attr("cycles", result.cycles)
        span.set_attr("instructions", result.instructions)
        span.set_attr("encryption", self.config.encryption.mode.name)
        span.set_attr("sim_backend", self.backend)
        span.set_attr("dram_utilization", round(result.dram_utilization, 6))
        for controller in self.controllers:
            for name, attrs in controller.trace_events(result.cycles):
                span.event(name, attrs)
        wall = time.time() - wall_start
        for sm_id, stats in enumerate(result.sm_stats):
            share = stats.busy_cycles / result.cycles if result.cycles else 0.0
            tracer.add_span(
                "sim.sm",
                wall_start,
                wall * share,
                attrs={
                    "sm": sm_id,
                    "lane": True,
                    "busy_cycles": round(stats.busy_cycles, 3),
                    "instructions": stats.instructions,
                },
                tid=f"sm{sm_id}",
                parent=span,
            )

    def _run(self, streams: list[list[TileStep]], label: str = "") -> SimResult:
        if self.backend == "vector":
            finish_time, sms = run_vector(self.config, self.controllers, streams)
            return self._collect(label, finish_time, sms)
        return self._run_scalar(streams, label)

    def _run_scalar(self, streams: list[list[TileStep]], label: str = "") -> SimResult:
        if len(streams) > self.config.num_sms:
            raise ValueError(
                f"{len(streams)} streams for {self.config.num_sms} SMs"
            )
        sms = [SmState(sm_id=i, steps=list(stream)) for i, stream in enumerate(streams)]

        event_heap: list[tuple[float, int]] = []
        for sm in sms:
            if sm.done:
                continue
            # Prefetch the first step's operands at t=0.
            sm.ready_time = self._issue(sm.steps[0].reads, 0.0)
            sm.stats.read_requests += len(sm.steps[0].reads)
            heapq.heappush(event_heap, (sm.next_event_time, sm.sm_id))

        finish_time = 0.0
        while event_heap:
            event_time, sm_id = heapq.heappop(event_heap)
            sm = sms[sm_id]
            if sm.done:
                continue
            step = sm.steps[sm.next_step]
            start = max(event_time, sm.next_event_time)
            end = start + step.compute_cycles
            sm.stats.instructions += step.instructions
            sm.stats.busy_cycles += step.compute_cycles
            sm.stats.steps += 1
            # Results are written back when compute finishes.
            if step.writes:
                sm.last_write_done = max(
                    sm.last_write_done, self._issue(step.writes, end)
                )
                sm.stats.write_requests += len(step.writes)
            sm.compute_end = end
            sm.next_step += 1
            if not sm.done:
                # Double buffering: prefetch the next step during compute.
                next_step = sm.steps[sm.next_step]
                sm.ready_time = self._issue(next_step.reads, start)
                sm.stats.read_requests += len(next_step.reads)
                heapq.heappush(event_heap, (sm.next_event_time, sm.sm_id))
            else:
                finish_time = max(finish_time, end, sm.last_write_done)

        for sm in sms:
            finish_time = max(finish_time, sm.compute_end, sm.last_write_done)

        return self._collect(label, finish_time, sms)

    # ------------------------------------------------------------------
    def _collect(self, label: str, cycles: float, sms: list[SmState]) -> SimResult:
        data_bytes = sum(mc.stats.data_bytes for mc in self.controllers)
        counter_bytes = sum(mc.stats.counter_fetch_bytes for mc in self.controllers)
        encrypted = sum(mc.stats.encrypted_bytes for mc in self.controllers)
        bypass = sum(mc.stats.bypass_bytes for mc in self.controllers)
        dram_util = (
            sum(mc.utilization(cycles) for mc in self.controllers)
            / len(self.controllers)
            if cycles
            else 0.0
        )
        engine_util = 0.0
        if self.config.encryption.enabled and cycles:
            engine_util = sum(
                mc.engine.utilization(int(cycles))
                for mc in self.controllers
                if mc.engine is not None
            ) / len(self.controllers)
        hit_rate = float("nan")
        if self.config.encryption.mode is EncryptionMode.COUNTER:
            hits = sum(
                mc.counter_cache.stats.hits
                for mc in self.controllers
                if mc.counter_cache
            )
            accesses = sum(
                mc.counter_cache.stats.accesses
                for mc in self.controllers
                if mc.counter_cache
            )
            hit_rate = hits / accesses if accesses else 0.0
        return SimResult(
            label=label or self.config.encryption.label(),
            cycles=cycles,
            instructions=sum(sm.stats.instructions for sm in sms),
            num_sms=len(sms),
            data_bytes=data_bytes,
            counter_fetch_bytes=counter_bytes,
            encrypted_bytes=encrypted,
            bypass_bytes=bypass,
            dram_utilization=dram_util,
            engine_utilization=engine_util,
            counter_hit_rate=hit_rate,
            sm_stats=tuple(sm.stats for sm in sms),
        )
