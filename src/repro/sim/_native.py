"""Native (cc-compiled) kernel for the vector simulator backend.

The vector backend's event loop is a few dozen primitive float/int
operations per memory request; at that granularity the CPython interpreter
itself is the bottleneck.  This module carries a single-file C
implementation of the loop — a line-for-line transliteration of the
Python fallback in :mod:`repro.sim.engine`, operating on the same
structure-of-arrays produced by ``compile_streams`` — and compiles it
on demand with the system C compiler via :mod:`cffi`'s ABI mode.

Determinism and exactness:

* All timestamps are IEEE-754 doubles and every arithmetic step mirrors
  the scalar engine's Python expressions one for one (same additions,
  same ``max`` comparisons, same truncation points).  x86-64 C doubles
  use SSE2 and the build passes ``-ffp-contract=off``, so no
  fused-multiply-add or extended precision can creep in: the C kernel,
  the Python fallback, and the scalar engine produce bit-identical
  cycle counts.
* Integer math (addresses, counter values, set indices) is ``int64_t``
  with non-negative operands, where C ``/``/``%`` agree with Python
  ``//``/``%``.

Availability is best-effort: no compiler, no cffi, or a failed build
simply leaves :func:`load` returning ``None`` and the vector backend
falls back to its pure-Python loop (identical results, just slower).
Set ``REPRO_SIM_NATIVE=0`` to force the fallback; the compiled library
is cached by source hash under ``$REPRO_SIMKERNEL_CACHE`` (default: a
``repro-simkernel`` directory in the system temp dir).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

__all__ = ["load", "SIGNATURE"]

#: Env var: set to ``0`` to disable the native kernel (forces the
#: pure-Python vector loop; results are identical either way).
ENV_NATIVE = "REPRO_SIM_NATIVE"

#: Env var overriding where compiled kernels are cached.
ENV_CACHE = "REPRO_SIMKERNEL_CACHE"

SIGNATURE = """
double seal_run(
    long long n_sms, long long n_channels, long long n_banks,
    double penalty, double dram_latency, double eng_latency, double verify,
    double block_occ, long long counter_block_bytes, long long auth,
    long long cap,
    const signed char *path, const long long *channel, const double *occ_d,
    const long long *bank, const long long *row, const signed char *is_read,
    const double *occ_e, const double *occ_m,
    const long long *tag_bank, const long long *tag_row,
    const long long *run_start, const long long *run_count,
    const long long *run_block, const long long *run_lines,
    const long long *run_bank, const long long *run_row,
    const long long *run_addr_start, const long long *run_addr,
    const long long *sm_step_start, const long long *sm_step_end,
    const double *step_cc,
    const long long *step_read_start, const long long *step_read_end,
    const long long *step_write_start, const long long *step_write_end,
    double *dram_nf, double *dram_busy, long long *last_row,
    double *eng_nf, double *eng_busy, long long *counter_fetch,
    long long has_cache, long long num_sets, long long assoc,
    long long lpb, long long minor_limit, long long span,
    long long line_bytes,
    long long *tags, signed char *dirty, long long *order,
    long long *setcount, signed char *present, long long *vals,
    long long *bkeys, long long *bvals, long long bcap, long long *bused,
    long long *cache_stats,
    double *ready, double *cend, double *wdone, long long *next_step
);
"""

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* One channel's counter cache: set-associative LRU, exact model of
 * repro.crypto.counter_cache.CounterCache (access_run path).  Ways are
 * fixed slots; `order` holds the LRU->MRU permutation per set.  Line
 * counters live in a dense [assoc][lines_per_block] array (line
 * addresses are aligned multiples of line_bytes, validated on import);
 * the DRAM backing store is an open-addressed int64 hash map. */
typedef struct {
    int64_t num_sets, assoc, lpb, minor_limit, span, line_bytes;
    int64_t *tags;      /* [num_sets*assoc], way-indexed */
    int8_t  *dirty;     /* [num_sets*assoc] */
    int64_t *order;     /* [num_sets*assoc]: first setcount entries valid */
    int64_t *setcount;  /* [num_sets] */
    int8_t  *present;   /* [num_sets*assoc*lpb] */
    int64_t *vals;      /* [num_sets*assoc*lpb] */
    int64_t *bkeys;     /* [bcap], -1 = empty */
    int64_t *bvals;     /* [bcap] */
    int64_t bcap;       /* power of two */
    int64_t bused;
    int64_t *stats;     /* hits, misses, evictions, writebacks,
                           reencryptions, reencrypted_lines */
    int8_t  *scratch;   /* [lpb] re-encryption tracking mask */
} Cache;

static int backing_find(const Cache *ca, int64_t key, int64_t *val) {
    uint64_t mask = (uint64_t)ca->bcap - 1;
    uint64_t h = ((uint64_t)key * 0x9E3779B97F4A7C15ULL) & mask;
    for (;;) {
        int64_t k = ca->bkeys[h];
        if (k == key) { *val = ca->bvals[h]; return 1; }
        if (k == -1) return 0;
        h = (h + 1) & mask;
    }
}

static void backing_put(Cache *ca, int64_t key, int64_t val) {
    uint64_t mask = (uint64_t)ca->bcap - 1;
    uint64_t h = ((uint64_t)key * 0x9E3779B97F4A7C15ULL) & mask;
    for (;;) {
        int64_t k = ca->bkeys[h];
        if (k == key) { ca->bvals[h] = val; return; }
        if (k == -1) {
            ca->bkeys[h] = key;
            ca->bvals[h] = val;
            ca->bused += 1;
            return;
        }
        h = (h + 1) & mask;
    }
}

/* CounterCache._reencrypt_block: every tracked line of the block jumps
 * to a fresh epoch base strictly above all current counters. */
static int64_t cache_reencrypt(Cache *ca, int64_t block, int64_t set,
                               int64_t way) {
    int64_t slot = set * ca->assoc + way;
    int64_t *v = ca->vals + slot * ca->lpb;
    int8_t *pr = ca->present + slot * ca->lpb;
    int64_t base_addr = block * ca->span;
    int64_t top = 0, tracked = 0;
    for (int64_t i = 0; i < ca->lpb; i++) {
        int64_t val;
        int have = 0;
        if (pr[i]) { val = v[i]; have = 1; }
        else if (backing_find(ca, base_addr + i * ca->line_bytes, &val)) have = 1;
        ca->scratch[i] = (int8_t)have;
        if (have) {
            tracked += 1;
            if (val > top) top = val;
        }
    }
    int64_t base = (top / ca->minor_limit + 1) * ca->minor_limit;
    for (int64_t i = 0; i < ca->lpb; i++) {
        if (ca->scratch[i]) { v[i] = base; pr[i] = 1; }
    }
    ca->dirty[slot] = 1;
    ca->stats[4] += 1;
    ca->stats[5] += tracked;
    return base;
}

/* CounterCache.access_run: one batched lookup covering `nlines`
 * consecutive line accesses inside one counter block; `addrs` carries
 * the per-line data addresses for write runs (NULL = read run). */
static int cache_access_run(Cache *ca, int64_t block, int64_t nlines,
                            const int64_t *addrs, int64_t naddrs) {
    int64_t set = block % ca->num_sets;
    int64_t tag = block / ca->num_sets;
    int64_t *order = ca->order + set * ca->assoc;
    int64_t *tags = ca->tags + set * ca->assoc;
    int8_t *dirty = ca->dirty + set * ca->assoc;
    int64_t cnt = ca->setcount[set];
    int64_t w = -1, pos = -1;
    for (int64_t j = 0; j < cnt; j++) {
        if (tags[order[j]] == tag) { pos = j; w = order[j]; break; }
    }
    int hit;
    if (pos >= 0) {
        memmove(order + pos, order + pos + 1,
                (size_t)(cnt - pos - 1) * sizeof(int64_t));
        order[cnt - 1] = w;
        ca->stats[0] += nlines;
        hit = 1;
    } else {
        ca->stats[1] += 1;
        ca->stats[0] += nlines - 1;
        if (cnt >= ca->assoc) {
            w = order[0];
            memmove(order, order + 1, (size_t)(cnt - 1) * sizeof(int64_t));
            cnt -= 1;
            ca->stats[2] += 1;
            if (dirty[w]) {
                ca->stats[3] += 1;
                int64_t evicted = tags[w] * ca->num_sets + set;
                int64_t base_addr = evicted * ca->span;
                int64_t slot = set * ca->assoc + w;
                int64_t *v = ca->vals + slot * ca->lpb;
                int8_t *pr = ca->present + slot * ca->lpb;
                for (int64_t i = 0; i < ca->lpb; i++) {
                    if (pr[i])
                        backing_put(ca, base_addr + i * ca->line_bytes, v[i]);
                }
            }
        } else {
            w = cnt;
        }
        tags[w] = tag;
        dirty[w] = 0;
        memset(ca->present + (set * ca->assoc + w) * ca->lpb, 0,
               (size_t)ca->lpb);
        order[cnt] = w;
        ca->setcount[set] = cnt + 1;
        hit = 0;
    }
    if (naddrs > 0) {
        int64_t slot = set * ca->assoc + w;
        int64_t *v = ca->vals + slot * ca->lpb;
        int8_t *pr = ca->present + slot * ca->lpb;
        int64_t base_addr = block * ca->span;
        for (int64_t k = 0; k < naddrs; k++) {
            int64_t addr = addrs[k];
            int64_t idx = (addr - base_addr) / ca->line_bytes;
            int64_t value;
            if (pr[idx]) value = v[idx];
            else if (!backing_find(ca, addr, &value)) value = 0;
            value += 1;
            if (value % ca->minor_limit == 0)
                value = cache_reencrypt(ca, block, set, w) + 1;
            v[idx] = value;
            pr[idx] = 1;
        }
        dirty[w] = 1;
    }
    return hit;
}

typedef struct {
    const int8_t *path;
    const int64_t *channel;
    const double *occ_d;
    const int64_t *bank, *row;
    const int8_t *is_read;
    const double *occ_e, *occ_m;
    const int64_t *tag_bank, *tag_row;
    const int64_t *run_start, *run_count;
    const int64_t *run_block, *run_lines, *run_bank, *run_row;
    const int64_t *run_addr_start, *run_addr;
    double penalty, dram_latency, eng_latency, verify, block_occ;
    int64_t counter_block_bytes, n_banks, auth, cap;
    double *dram_nf, *dram_busy, *eng_nf, *eng_busy;
    int64_t *last_row, *counter_fetch;
    Cache *caches; /* NULL outside counter mode */
} Ctx;

/* GpuSimulator._issue + MemoryController.submit over one contiguous
 * request range [rs, re): wave-chunked by the MSHR cap, every float
 * expression in scalar-engine order. */
static double issue_range(Ctx *cx, int64_t rs, int64_t re, double when) {
    double done = when;
    for (int64_t off = rs; off < re; off += cx->cap) {
        double T = (off == rs) ? when : done;
        int64_t hi = off + cx->cap < re ? off + cx->cap : re;
        double wave_done = T;
        for (int64_t i = off; i < hi; i++) {
            int64_t c = cx->channel[i];
            int8_t p = cx->path[i];
            int64_t *lr = cx->last_row + c * cx->n_banks;
            double completion;
            if (p == 0) { /* bypass: DRAM only */
                double arrival = T;
                if (lr[cx->bank[i]] != cx->row[i]) {
                    lr[cx->bank[i]] = cx->row[i];
                    arrival = T + cx->penalty;
                }
                double nf = cx->dram_nf[c];
                double start = arrival > nf ? arrival : nf;
                nf = start + cx->occ_d[i];
                cx->dram_nf[c] = nf;
                cx->dram_busy[c] += cx->occ_d[i];
                completion = nf + cx->dram_latency;
            } else if (p == 2) { /* counter mode */
                double avail = T;
                Cache *ca = cx->caches + c;
                int64_t r0 = cx->run_start[i];
                int64_t r1 = r0 + cx->run_count[i];
                int rd = cx->is_read[i];
                for (int64_t r = r0; r < r1; r++) {
                    const int64_t *addrs =
                        rd ? NULL : cx->run_addr + cx->run_addr_start[r];
                    int64_t naddrs = rd ? 0 : cx->run_lines[r];
                    if (!cache_access_run(ca, cx->run_block[r],
                                          cx->run_lines[r], addrs, naddrs)) {
                        double arrival = T;
                        if (lr[cx->run_bank[r]] != cx->run_row[r]) {
                            lr[cx->run_bank[r]] = cx->run_row[r];
                            arrival = T + cx->penalty;
                        }
                        double nf = cx->dram_nf[c];
                        double start = arrival > nf ? arrival : nf;
                        nf = start + cx->block_occ;
                        cx->dram_nf[c] = nf;
                        cx->dram_busy[c] += cx->block_occ;
                        cx->counter_fetch[c] += cx->counter_block_bytes;
                        double fetched = nf + cx->dram_latency;
                        if (fetched > avail) avail = fetched;
                    }
                }
                double nf = cx->eng_nf[c];
                double arrival = (double)(int64_t)avail;
                double start = arrival > nf ? arrival : nf;
                nf = start + cx->occ_e[i];
                cx->eng_nf[c] = nf;
                cx->eng_busy[c] += cx->occ_e[i];
                double pad = (double)(int64_t)(nf + cx->eng_latency);
                double data_arrival = rd ? T : pad;
                if (lr[cx->bank[i]] != cx->row[i]) {
                    lr[cx->bank[i]] = cx->row[i];
                    data_arrival = data_arrival + cx->penalty;
                }
                nf = cx->dram_nf[c];
                start = data_arrival > nf ? data_arrival : nf;
                nf = start + cx->occ_d[i];
                cx->dram_nf[c] = nf;
                cx->dram_busy[c] += cx->occ_d[i];
                double data_done = nf + cx->dram_latency;
                if (rd)
                    completion = (data_done > pad ? data_done : pad) + 1.0;
                else
                    completion = data_done;
            } else { /* direct mode */
                if (cx->is_read[i]) {
                    double arrival = T;
                    if (lr[cx->bank[i]] != cx->row[i]) {
                        lr[cx->bank[i]] = cx->row[i];
                        arrival = T + cx->penalty;
                    }
                    double nf = cx->dram_nf[c];
                    double start = arrival > nf ? arrival : nf;
                    nf = start + cx->occ_d[i];
                    cx->dram_nf[c] = nf;
                    cx->dram_busy[c] += cx->occ_d[i];
                    double data_done = nf + cx->dram_latency;
                    nf = cx->eng_nf[c];
                    arrival = (double)(int64_t)data_done;
                    start = arrival > nf ? arrival : nf;
                    nf = start + cx->occ_e[i];
                    cx->eng_nf[c] = nf;
                    cx->eng_busy[c] += cx->occ_e[i];
                    completion = (double)(int64_t)(nf + cx->eng_latency);
                } else {
                    double nf = cx->eng_nf[c];
                    double arrival = (double)(int64_t)T;
                    double start = arrival > nf ? arrival : nf;
                    nf = start + cx->occ_e[i];
                    cx->eng_nf[c] = nf;
                    cx->eng_busy[c] += cx->occ_e[i];
                    double cipher = (double)(int64_t)(nf + cx->eng_latency);
                    arrival = cipher;
                    if (lr[cx->bank[i]] != cx->row[i]) {
                        lr[cx->bank[i]] = cx->row[i];
                        arrival = cipher + cx->penalty;
                    }
                    nf = cx->dram_nf[c];
                    start = arrival > nf ? arrival : nf;
                    nf = start + cx->occ_d[i];
                    cx->dram_nf[c] = nf;
                    cx->dram_busy[c] += cx->occ_d[i];
                    completion = nf + cx->dram_latency;
                }
            }
            if (cx->auth && p) { /* per-line MAC traffic + verification */
                double tag_arrival = cx->is_read[i] ? T : completion;
                if (lr[cx->tag_bank[i]] != cx->tag_row[i]) {
                    lr[cx->tag_bank[i]] = cx->tag_row[i];
                    tag_arrival = tag_arrival + cx->penalty;
                }
                double nf = cx->dram_nf[c];
                double start = tag_arrival > nf ? tag_arrival : nf;
                nf = start + cx->occ_m[i];
                cx->dram_nf[c] = nf;
                cx->dram_busy[c] += cx->occ_m[i];
                double tag_done = nf + cx->dram_latency;
                if (cx->is_read[i])
                    completion =
                        (completion > tag_done ? completion : tag_done)
                        + cx->verify;
                else
                    completion = tag_done;
            }
            if (completion > wave_done) wave_done = completion;
        }
        done = wave_done;
    }
    return done;
}

double seal_run(
    int64_t n_sms, int64_t n_channels, int64_t n_banks,
    double penalty, double dram_latency, double eng_latency, double verify,
    double block_occ, int64_t counter_block_bytes, int64_t auth,
    int64_t cap,
    const int8_t *path, const int64_t *channel, const double *occ_d,
    const int64_t *bank, const int64_t *row, const int8_t *is_read,
    const double *occ_e, const double *occ_m,
    const int64_t *tag_bank, const int64_t *tag_row,
    const int64_t *run_start, const int64_t *run_count,
    const int64_t *run_block, const int64_t *run_lines,
    const int64_t *run_bank, const int64_t *run_row,
    const int64_t *run_addr_start, const int64_t *run_addr,
    const int64_t *sm_step_start, const int64_t *sm_step_end,
    const double *step_cc,
    const int64_t *step_read_start, const int64_t *step_read_end,
    const int64_t *step_write_start, const int64_t *step_write_end,
    double *dram_nf, double *dram_busy, int64_t *last_row,
    double *eng_nf, double *eng_busy, int64_t *counter_fetch,
    int64_t has_cache, int64_t num_sets, int64_t assoc,
    int64_t lpb, int64_t minor_limit, int64_t span, int64_t line_bytes,
    int64_t *tags, int8_t *dirty, int64_t *order,
    int64_t *setcount, int8_t *present, int64_t *vals,
    int64_t *bkeys, int64_t *bvals, int64_t bcap, int64_t *bused,
    int64_t *cache_stats,
    double *ready, double *cend, double *wdone, int64_t *next_step)
{
    Cache *caches = NULL;
    int8_t *scratch = NULL;
    if (has_cache) {
        caches = (Cache *)malloc((size_t)n_channels * sizeof(Cache));
        scratch = (int8_t *)malloc((size_t)lpb);
        if (!caches || !scratch) { free(caches); free(scratch); return -1.0; }
        for (int64_t c = 0; c < n_channels; c++) {
            Cache *ca = caches + c;
            ca->num_sets = num_sets;
            ca->assoc = assoc;
            ca->lpb = lpb;
            ca->minor_limit = minor_limit;
            ca->span = span;
            ca->line_bytes = line_bytes;
            ca->tags = tags + c * num_sets * assoc;
            ca->dirty = dirty + c * num_sets * assoc;
            ca->order = order + c * num_sets * assoc;
            ca->setcount = setcount + c * num_sets;
            ca->present = present + c * num_sets * assoc * lpb;
            ca->vals = vals + c * num_sets * assoc * lpb;
            ca->bkeys = bkeys + c * bcap;
            ca->bvals = bvals + c * bcap;
            ca->bcap = bcap;
            ca->bused = bused[c];
            ca->stats = cache_stats + c * 6;
            ca->scratch = scratch;
        }
    }
    Ctx cx = {
        path, channel, occ_d, bank, row, is_read, occ_e, occ_m,
        tag_bank, tag_row, run_start, run_count,
        run_block, run_lines, run_bank, run_row,
        run_addr_start, run_addr,
        penalty, dram_latency, eng_latency, verify, block_occ,
        counter_block_bytes, n_banks, auth, cap,
        dram_nf, dram_busy, eng_nf, eng_busy,
        last_row, counter_fetch, caches,
    };
    int8_t *active = (int8_t *)calloc((size_t)n_sms, 1);
    if (!active) { free(caches); free(scratch); return -1.0; }

    for (int64_t s = 0; s < n_sms; s++) {
        ready[s] = 0.0;
        cend[s] = 0.0;
        wdone[s] = 0.0;
        next_step[s] = sm_step_start[s];
        if (sm_step_start[s] < sm_step_end[s]) {
            int64_t st = sm_step_start[s];
            ready[s] = issue_range(&cx, step_read_start[st],
                                   step_read_end[st], 0.0);
            active[s] = 1;
        }
    }
    double finish = 0.0;
    for (;;) {
        /* heap pop: min (next event time, sm id); each SM holds at most
         * one pending event, so a linear scan is the same order. */
        int64_t best = -1;
        double bt = 0.0;
        for (int64_t s = 0; s < n_sms; s++) {
            if (!active[s]) continue;
            double t = ready[s] > cend[s] ? ready[s] : cend[s];
            if (best < 0 || t < bt) { best = s; bt = t; }
        }
        if (best < 0) break;
        int64_t st = next_step[best];
        double start = bt;
        double end = start + step_cc[st];
        if (step_write_start[st] < step_write_end[st]) {
            double wd = issue_range(&cx, step_write_start[st],
                                    step_write_end[st], end);
            if (wd > wdone[best]) wdone[best] = wd;
        }
        cend[best] = end;
        next_step[best] += 1;
        if (next_step[best] < sm_step_end[best]) {
            int64_t ns = next_step[best];
            ready[best] = issue_range(&cx, step_read_start[ns],
                                      step_read_end[ns], start);
        } else {
            active[best] = 0;
            if (end > finish) finish = end;
            if (wdone[best] > finish) finish = wdone[best];
        }
    }
    for (int64_t s = 0; s < n_sms; s++) {
        if (cend[s] > finish) finish = cend[s];
        if (wdone[s] > finish) finish = wdone[s];
    }
    if (has_cache) {
        for (int64_t c = 0; c < n_channels; c++) bused[c] = caches[c].bused;
    }
    free(active);
    free(caches);
    free(scratch);
    return finish;
}
"""

_lock = threading.Lock()
_cached = None
_attempted = False


def _compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _build(cc: str, cache_dir: Path, digest: str) -> Path:
    library = cache_dir / f"simkernel-{digest}.so"
    if library.exists():
        return library
    cache_dir.mkdir(parents=True, exist_ok=True)
    source = cache_dir / f"simkernel-{digest}.c"
    source.write_text(_SOURCE)
    scratch = cache_dir / f"simkernel-{digest}.{os.getpid()}.tmp.so"
    subprocess.run(
        [
            cc,
            "-O2",
            "-fPIC",
            "-shared",
            # No FMA contraction / extended precision: the kernel must be
            # bit-identical to the Python engines.
            "-ffp-contract=off",
            "-o",
            str(scratch),
            str(source),
        ],
        check=True,
        capture_output=True,
    )
    os.replace(scratch, library)
    return library


def load():
    """Compile (once) and dlopen the kernel; returns (ffi, lib) or None.

    Never raises: any failure (no cffi, no compiler, sandboxed tmp, bad
    toolchain) disables the native path for the process and the caller
    uses the pure-Python loop instead.
    """
    global _cached, _attempted
    with _lock:
        if _attempted:
            return _cached
        _attempted = True
        if os.environ.get(ENV_NATIVE, "").strip() == "0":
            return None
        try:
            import cffi

            cc = _compiler()
            if cc is None:
                return None
            digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
            cache_dir = Path(
                os.environ.get(ENV_CACHE)
                or Path(tempfile.gettempdir()) / "repro-simkernel"
            )
            library = _build(cc, cache_dir, digest)
            ffi = cffi.FFI()
            ffi.cdef(SIGNATURE)
            _cached = (ffi, ffi.dlopen(str(library)))
        except Exception:
            _cached = None
        return _cached
