"""GPU + encrypted-memory-system simulator (GPGPU-Sim-style substrate)."""

from .config import (
    GTX480_CONFIG,
    EncryptionConfig,
    EncryptionMode,
    GpuConfig,
    gtx480_config,
)
from .engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledKernel,
    compile_streams,
    resolve_sim_backend,
    run_vector,
)
from .gpu import GpuSimulator, SimResult
from .memctrl import MemoryController, MemoryControllerStats
from .parallel import (
    SimUnit,
    SimulationCache,
    cache_key,
    clear_default_cache,
    default_cache,
    run_units,
    simulate_unit,
)
from .request import Access, MemRequest
from .runner import (
    SCHEMES,
    ModelRunResult,
    compare_schemes,
    fully_encrypted,
    layer_unit,
    plaintext_traffic,
    run_layer,
    run_model,
    scheme_config,
)
from .sm import SmState, SmStats, TileStep
from .roofline import RooflinePrediction, predict_streams
from .trace import TraceStats, dump_streams, load_streams, trace_stats
from .workloads import (
    DEFAULT_TILE,
    gemm_layer_streams,
    layer_streams,
    matmul_streams,
    matmul_traffic,
    pool_layer_streams,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "CompiledKernel",
    "compile_streams",
    "resolve_sim_backend",
    "run_vector",
    "GTX480_CONFIG",
    "EncryptionConfig",
    "EncryptionMode",
    "GpuConfig",
    "gtx480_config",
    "GpuSimulator",
    "SimResult",
    "MemoryController",
    "MemoryControllerStats",
    "Access",
    "MemRequest",
    "SimUnit",
    "SimulationCache",
    "cache_key",
    "clear_default_cache",
    "default_cache",
    "run_units",
    "simulate_unit",
    "SCHEMES",
    "ModelRunResult",
    "compare_schemes",
    "fully_encrypted",
    "layer_unit",
    "plaintext_traffic",
    "run_layer",
    "run_model",
    "scheme_config",
    "RooflinePrediction",
    "predict_streams",
    "TraceStats",
    "dump_streams",
    "load_streams",
    "trace_stats",
    "SmState",
    "SmStats",
    "TileStep",
    "DEFAULT_TILE",
    "gemm_layer_streams",
    "layer_streams",
    "matmul_streams",
    "matmul_traffic",
    "pool_layer_streams",
]
