"""Optimizers and learning-rate schedules for the numpy framework."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer over an explicit parameter list.

    Substitute-model fine-tuning (Section III-B of the paper) freezes the
    *known* plaintext weights and updates only the unknown ones; passing a
    filtered parameter list — or per-parameter ``freeze_mask`` arrays via
    :meth:`set_freeze_mask` — implements both styles.
    """

    def __init__(self, params: list[Tensor], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self._freeze_masks: dict[int, np.ndarray] = {}

    def set_freeze_mask(self, param: Tensor, mask: np.ndarray) -> None:
        """Freeze the entries of ``param`` where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != param.shape:
            raise ValueError(f"mask shape {mask.shape} != param shape {param.shape}")
        self._freeze_masks[id(param)] = mask

    def _effective_grad(self, param: Tensor) -> np.ndarray | None:
        if param.grad is None:
            return None
        mask = self._freeze_masks.get(id(param))
        if mask is None:
            return param.grad
        return np.where(mask, 0.0, param.grad)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            update = grad + self.momentum * velocity if self.nesterov else velocity
            mask = self._freeze_masks.get(id(param))
            if mask is not None:
                update = np.where(mask, 0.0, update)
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            mask = self._freeze_masks.get(id(param))
            if mask is not None:
                update = np.where(mask, 0.0, update)
            param.data -= self.lr * update


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        cos = 0.5 * (1.0 + np.cos(np.pi * self.epoch / self.total_epochs))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
