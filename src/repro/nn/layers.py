"""Layer/module abstraction on top of the autograd tensor.

Modules record the shapes they last saw (``last_input_shape`` /
``last_output_shape``) so the SEAL planner and the GPU trace generator can
introspect a model's geometry after a single shape-probing forward pass.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "Module",
    "trace_dataflow",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
    "BasicBlock",
]


# When not None, Module.__call__ appends (module, input, output) records and
# BasicBlock appends ("residual_add", a, b, out) records.  Holding strong
# tensor references keeps ids stable for dataflow analysis (repro.core.plan).
_TRACE_LOG: list | None = None


class trace_dataflow:
    """Context manager that records every module call and residual add."""

    def __enter__(self) -> list:
        global _TRACE_LOG
        self._previous = _TRACE_LOG
        _TRACE_LOG = []
        return _TRACE_LOG

    def __exit__(self, *exc_info: object) -> None:
        global _TRACE_LOG
        _TRACE_LOG = self._previous


class Module:
    """Base class: parameter registration, train/eval mode, iteration."""

    def __init__(self) -> None:
        self.training = True
        self.last_input_shape: tuple[int, ...] | None = None
        self.last_output_shape: tuple[int, ...] | None = None

    # -- override points ------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    # -- shared machinery -----------------------------------------------
    def __call__(self, x: Tensor) -> Tensor:
        self.last_input_shape = tuple(x.shape)
        out = self.forward(x)
        self.last_output_shape = tuple(out.shape)
        if _TRACE_LOG is not None:
            _TRACE_LOG.append((self, x, out))
        return out

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors, depth-first."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{prefix}{name}.{index}.")

    def modules(self) -> Iterator["Module"]:
        """This module and all submodules, depth-first pre-order."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{prefix}{name}.{index}.")

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters plus batch-norm running statistics."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, module in self.named_modules():
            if isinstance(module, BatchNorm2d):
                state[f"{name}.running_mean"] = module.running_mean.copy()
                state[f"{name}.running_var"] = module.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, module in self.named_modules():
            if isinstance(module, BatchNorm2d):
                if f"{name}.running_mean" in state:
                    module.running_mean[...] = state[f"{name}.running_mean"]
                if f"{name}.running_var" in state:
                    module.running_var[...] = state[f"{name}.running_var"]
        for name, value in state.items():
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].shape} vs {value.shape}"
                    )
                params[name].data[...] = value


def _he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He (Kaiming) normal initialisation [7] — also what the paper's
    adversary uses to fill unknown weights."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


_GLOBAL_RNG = np.random.default_rng(0)


def set_init_rng(seed: int) -> None:
    """Re-seed the parameter-initialisation RNG (for reproducible models)."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


class Conv2d(Module):
    """2-D convolution layer; ``weight[:, j]`` is kernel row ``j``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            _he_normal(_GLOBAL_RNG, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def kernel_matrix(self) -> np.ndarray:
        """The paper's kernel-matrix view: shape (n_x, n_y) of kernels.

        Row ``j`` (input channel), column ``i`` (output channel) holds the
        k×k kernel ``weight[i, j]``; returned as (in_ch, out_ch, k, k).
        """
        return self.weight.data.transpose(1, 0, 2, 3)


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``; rows of ``W.T`` are the
    FC analogue of kernel rows (one per input feature)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _he_normal(_GLOBAL_RNG, (out_features, in_features), in_features),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Ordered container applying submodules in sequence."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.layers:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def append(self, module: Module) -> None:
        self.layers.append(module)


class BasicBlock(Module):
    """ResNet basic residual block (two 3×3 convolutions)."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        shortcut = self.shortcut(x)
        merged = out + shortcut
        if _TRACE_LOG is not None:
            _TRACE_LOG.append(("residual_add", out, shortcut, merged))
        return self.relu2(merged)
