"""CNN model zoo: VGG-16, ResNet-18, ResNet-34 (the paper's three models).

All three are built for CIFAR-10-style 32×32×3 inputs (the paper trains on
CIFAR-10).  A ``width_scale`` parameter produces channel-scaled variants
used by the security experiments so that substitute-model retraining is
feasible in pure numpy; geometry-dependent experiments (the performance
figures) use the full-width models, whose layer shapes are what the GPU
trace generator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from .tensor import Tensor

__all__ = [
    "vgg16",
    "resnet18",
    "resnet34",
    "build_model",
    "MODEL_BUILDERS",
    "LayerGeometry",
    "model_geometry",
    "probe_shapes",
]

# VGG-16 configuration: channel counts with 'M' marking 2×2 max-pool.
_VGG16_CFG = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"]


def _scaled(channels: int, width_scale: float) -> int:
    """Scale a channel count, keeping at least 8 and divisibility by 4."""
    scaled = max(8, int(round(channels * width_scale)))
    return max(4, (scaled // 4) * 4)


def vgg16(
    num_classes: int = 10,
    width_scale: float = 1.0,
    in_channels: int = 3,
    input_size: int = 32,
) -> Module:
    """VGG-16 [22] for square inputs of ``input_size`` (13 CONV + 3 FC).

    The paper notes 13/16 layers of VGG-16 are CONV layers; this builder
    preserves that structure (the three FC layers follow the final pool).
    ``input_size`` must be a multiple of 32 (the five 2×2 pools); 32 is the
    CIFAR-10 geometry the paper trains on, 224 the ImageNet geometry.
    """
    if input_size % 32:
        raise ValueError("input_size must be a multiple of 32")
    layers: list[Module] = []
    channels = in_channels
    for item in _VGG16_CFG:
        if item == "M":
            layers.append(MaxPool2d(2))
        else:
            out = _scaled(int(item), width_scale)
            layers.append(Conv2d(channels, out, 3, padding=1, bias=False))
            layers.append(BatchNorm2d(out))
            layers.append(ReLU())
            channels = out
    final_spatial = input_size // 32
    hidden = _scaled(512, width_scale) * final_spatial * final_spatial
    classifier_width = _scaled(512, width_scale)
    layers.extend(
        [
            Flatten(),
            Linear(hidden, classifier_width),
            ReLU(),
            Linear(classifier_width, classifier_width),
            ReLU(),
            Linear(classifier_width, num_classes),
        ]
    )
    model = Sequential(*layers)
    model.name = "VGG-16" if width_scale == 1.0 else f"VGG-16(x{width_scale:g})"
    return model


class _ResNet(Module):
    """CIFAR-style ResNet: 3×3 stem then four stages of BasicBlocks."""

    def __init__(
        self,
        blocks_per_stage: list[int],
        num_classes: int,
        width_scale: float,
        in_channels: int,
        name: str,
    ) -> None:
        super().__init__()
        self.name = name
        widths = [_scaled(w, width_scale) for w in (64, 128, 256, 512)]
        self.stem_conv = Conv2d(in_channels, widths[0], 3, padding=1, bias=False)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stem_relu = ReLU()
        stages: list[Module] = []
        in_ch = widths[0]
        for stage_index, (width, depth) in enumerate(zip(widths, blocks_per_stage)):
            stride = 1 if stage_index == 0 else 2
            blocks: list[Module] = [BasicBlock(in_ch, width, stride=stride)]
            for _ in range(depth - 1):
                blocks.append(BasicBlock(width, width))
            stages.append(Sequential(*blocks))
            in_ch = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[-1], num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)


def resnet18(num_classes: int = 10, width_scale: float = 1.0, in_channels: int = 3) -> Module:
    """ResNet-18 [8]: 17 CONV + 1 FC (the paper's 17/18 CONV count)."""
    name = "ResNet-18" if width_scale == 1.0 else f"ResNet-18(x{width_scale:g})"
    return _ResNet([2, 2, 2, 2], num_classes, width_scale, in_channels, name)


def resnet34(num_classes: int = 10, width_scale: float = 1.0, in_channels: int = 3) -> Module:
    """ResNet-34 [8]: 33 CONV + 1 FC (the paper's 33/34 CONV count)."""
    name = "ResNet-34" if width_scale == 1.0 else f"ResNet-34(x{width_scale:g})"
    return _ResNet([3, 4, 6, 3], num_classes, width_scale, in_channels, name)


def mlp(
    num_classes: int = 10,
    hidden_sizes: tuple[int, ...] = (256, 256, 128),
    in_features: int = 3 * 32 * 32,
    width_scale: float = 1.0,
) -> Module:
    """Fully-connected network (flatten + FC stack).

    The paper notes the SE scheme "can also be applied to full-connected
    (FC) layers since each FC layer also includes a kernel matrix", and
    hence to RNN-style models built from FC layers.  This builder provides
    that model class; the planner treats each FC input feature as a kernel
    row.
    """
    layers: list[Module] = [Flatten()]
    previous = in_features
    for width in hidden_sizes:
        width = _scaled(width, width_scale)
        layers.append(Linear(previous, width))
        layers.append(ReLU())
        previous = width
    layers.append(Linear(previous, num_classes))
    model = Sequential(*layers)
    model.name = "MLP" if width_scale == 1.0 else f"MLP(x{width_scale:g})"
    return model


MODEL_BUILDERS = {
    "vgg16": vgg16,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "mlp": mlp,
}


def build_model(name: str, **kwargs: object) -> Module:
    """Build a model by canonical name (``vgg16``/``resnet18``/``resnet34``)."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[key](**kwargs)


# ----------------------------------------------------------------------
# Geometry extraction for the GPU trace generator and the SEAL planner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerGeometry:
    """Shape summary of one layer as the simulator sees it.

    ``kind`` is one of ``conv``/``fc``/``pool``; spatial sizes refer to the
    layer's *output* feature map.  ``weight_bytes`` / ``input_bytes`` /
    ``output_bytes`` assume 4-byte elements (fp32 inference).
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    in_height: int
    in_width: int
    out_height: int
    out_width: int
    batch: int = 1
    element_bytes: int = 4

    @property
    def weight_count(self) -> int:
        if self.kind == "conv":
            return self.in_channels * self.out_channels * self.kernel_size**2
        if self.kind == "fc":
            return self.in_channels * self.out_channels
        return 0

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * self.element_bytes

    @property
    def input_bytes(self) -> int:
        return self.batch * self.in_channels * self.in_height * self.in_width * self.element_bytes

    @property
    def output_bytes(self) -> int:
        return self.batch * self.out_channels * self.out_height * self.out_width * self.element_bytes

    @property
    def macs(self) -> int:
        """Multiply-accumulate count for one forward pass."""
        if self.kind == "conv":
            return (
                self.batch
                * self.out_channels
                * self.out_height
                * self.out_width
                * self.in_channels
                * self.kernel_size**2
            )
        if self.kind == "fc":
            return self.batch * self.in_channels * self.out_channels
        # Pooling: one op per input element in each window.
        return (
            self.batch
            * self.out_channels
            * self.out_height
            * self.out_width
            * self.kernel_size**2
        )


def probe_shapes(model: Module, input_shape: tuple[int, int, int] = (3, 32, 32)) -> None:
    """Run one tiny forward pass so every module records its shapes."""
    from .tensor import no_grad

    model.eval()
    with no_grad():
        model(Tensor(np.zeros((1, *input_shape), dtype=np.float32)))


def model_geometry(
    model: Module,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    batch: int = 1,
) -> list[LayerGeometry]:
    """Extract per-layer geometry (conv/fc/pool) in execution order.

    Performs a shape-probing forward pass, then walks the recorded shapes.
    Layers appear in module pre-order, which for our Sequential-style models
    coincides with execution order.
    """
    from .layers import AvgPool2d, GlobalAvgPool2d as _GAP, Linear as _Linear, MaxPool2d as _MaxPool

    probe_shapes(model, input_shape)
    geometry: list[LayerGeometry] = []
    for name, module in model.named_modules():
        in_shape = module.last_input_shape
        out_shape = module.last_output_shape
        if in_shape is None or out_shape is None:
            continue
        if isinstance(module, Conv2d):
            geometry.append(
                LayerGeometry(
                    name=name or "conv",
                    kind="conv",
                    in_channels=module.in_channels,
                    out_channels=module.out_channels,
                    kernel_size=module.kernel_size,
                    stride=module.stride,
                    in_height=in_shape[2],
                    in_width=in_shape[3],
                    out_height=out_shape[2],
                    out_width=out_shape[3],
                    batch=batch,
                )
            )
        elif isinstance(module, _Linear):
            geometry.append(
                LayerGeometry(
                    name=name or "fc",
                    kind="fc",
                    in_channels=module.in_features,
                    out_channels=module.out_features,
                    kernel_size=1,
                    stride=1,
                    in_height=1,
                    in_width=1,
                    out_height=1,
                    out_width=1,
                    batch=batch,
                )
            )
        elif isinstance(module, (_MaxPool, AvgPool2d)):
            geometry.append(
                LayerGeometry(
                    name=name or "pool",
                    kind="pool",
                    in_channels=in_shape[1],
                    out_channels=out_shape[1],
                    kernel_size=module.kernel_size,
                    stride=module.stride,
                    in_height=in_shape[2],
                    in_width=in_shape[3],
                    out_height=out_shape[2],
                    out_width=out_shape[3],
                    batch=batch,
                )
            )
        elif isinstance(module, _GAP):
            geometry.append(
                LayerGeometry(
                    name=name or "pool",
                    kind="pool",
                    in_channels=in_shape[1],
                    out_channels=out_shape[1],
                    kernel_size=in_shape[2],
                    stride=in_shape[2],
                    in_height=in_shape[2],
                    in_width=in_shape[3],
                    out_height=1,
                    out_width=1,
                    batch=batch,
                )
            )
    return geometry
