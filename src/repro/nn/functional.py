"""Neural-network operators (conv, pool, batchnorm, losses) with autograd.

Convolution is implemented by im2col + GEMM — the same lowering the paper's
GPU workloads use (Section IV models CONV layers as tiled matrix
multiplication), which keeps the performance model in :mod:`repro.sim`
faithful to the functional model here.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def _sliding_windows(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """View of shape (N, C, H_out, W_out, kernel, kernel) over ``x``.

    Zero-copy via stride tricks; callers must not write through the view.
    """
    n, c, h, w = x.shape
    h_out = (h - kernel) // stride + 1
    w_out = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, h_out, w_out, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Lower an image batch into the GEMM operand matrix.

    Returns an array of shape ``(N * H_out * W_out, C * kernel * kernel)``
    whose rows are flattened receptive fields.
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = _sliding_windows(x, kernel, stride)
    n, c, h_out, w_out, _, _ = windows.shape
    # (N, H_out, W_out, C, k, k) -> rows are receptive fields.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * h_out * w_out, c * kernel * kernel
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col` (used by conv backward)."""
    n, c, h, w = x_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    h_out = (h_pad - kernel) // stride + 1
    w_out = (w_pad - kernel) // stride + 1
    x_pad = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, h_out, w_out, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    # cols6: (N, C, k, k, H_out, W_out); add each kernel offset in bulk.
    for ki in range(kernel):
        i_max = ki + stride * h_out
        for kj in range(kernel):
            j_max = kj + stride * w_out
            x_pad[:, :, ki:i_max:stride, kj:j_max:stride] += cols6[:, :, ki, kj]
    if padding:
        return x_pad[:, :, padding:-padding, padding:-padding]
    return x_pad


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution, NCHW layout, square kernels.

    ``weight`` has shape ``(out_channels, in_channels, k, k)`` — in the
    paper's terminology each ``weight[:, j]`` slice is *kernel row j* (the
    row of the kernel matrix corresponding to input channel ``j``).
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kernel, kernel2 = weight.shape
    if kernel != kernel2:
        raise ValueError("only square kernels are supported")
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)

    cols = im2col(x.data, kernel, stride, padding)  # (N*H_out*W_out, C_in*k*k)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*k*k)
    out_mat = cols @ w_mat.T  # (N*H_out*W_out, C_out)
    if bias is not None:
        out_mat = out_mat + bias.data
    out_data = out_mat.reshape(n, h_out, w_out, c_out).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if weight.requires_grad:
            grad_w = (grad_mat.T @ cols).reshape(weight.shape)
            Tensor._accumulate(weight, grad_w)
        if bias is not None and bias.requires_grad:
            Tensor._accumulate(bias, grad_mat.sum(axis=0))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat
            Tensor._accumulate(x, col2im(grad_cols, x.shape, kernel, stride, padding))

    return Tensor._make(out_data, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    windows = _sliding_windows(x.data, kernel, stride)
    n_, c_, h_out, w_out, _, _ = windows.shape
    flat = windows.reshape(n, c, h_out, w_out, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel)
        n_idx, c_idx, i_idx, j_idx = np.indices(arg.shape)
        rows = i_idx * stride + ki
        cols_ = j_idx * stride + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols_), grad)
        Tensor._accumulate(x, grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    windows = _sliding_windows(x.data, kernel, stride)
    out_data = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        h_out, w_out = grad.shape[2], grad.shape[3]
        for ki in range(kernel):
            for kj in range(kernel):
                grad_x[:, :, ki : ki + stride * h_out : stride,
                       kj : kj + stride * w_out : stride] += grad * scale
        Tensor._accumulate(x, grad_x)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    *,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    ``running_mean``/``running_var`` are updated in place while training,
    matching the standard exponential-moving-average semantics.
    """
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        count = n * h * w
        unbiased = var * count / max(count - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out_data = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            Tensor._accumulate(gamma, (grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            Tensor._accumulate(beta, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = grad * gamma.data[None, :, None, None]
            if training:
                count = n * h * w
                sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
                sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                grad_x = (
                    inv_std[None, :, None, None]
                    * (g - sum_g / count - x_hat * sum_gx / count)
                )
            else:
                grad_x = g * inv_std[None, :, None, None]
            Tensor._accumulate(x, grad_x)

    return Tensor._make(out_data, (x, gamma, beta), backward)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            grad_sum = grad.sum(axis=axis, keepdims=True)
            Tensor._accumulate(logits, grad - softmax_data * grad_sum)

    return Tensor._make(out_data, (logits,), backward)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax probabilities."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    *,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Mean cross-entropy between logits and integer (or one-hot) targets."""
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    n, num_classes = logits.shape
    if targets.ndim == 1:
        one_hot = np.zeros((n, num_classes))
        one_hot[np.arange(n), targets.astype(int)] = 1.0
    else:
        one_hot = targets.astype(np.float64)
    if label_smoothing:
        one_hot = (
            one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
        )
    target_tensor = Tensor(one_hot)
    return -(log_probs * target_tensor).sum() * (1.0 / n)
