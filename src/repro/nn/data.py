"""Synthetic CIFAR-10 substitute dataset and data utilities.

The paper trains on CIFAR-10 (50,000 train / 10,000 test 32×32×3 images,
10 classes), splits the training set 90%/10% between victim and adversary,
and lets the adversary grow its 10% via Jacobian-based augmentation.

No network access is available here, so :class:`SyntheticCIFAR10` generates
a *class-structured* synthetic dataset with the same tensor geometry:

* each class has a smooth low-frequency template image (random Fourier
  coefficients) — classes are therefore separable but not trivially so;
* every sample is its class template under a random spatial shift, a random
  per-sample low-frequency distortion, and pixel noise, so within-class
  variation forces real feature learning;
* generation is fully deterministic given the seed.

What the security experiments need from the dataset is (a) learnability,
(b) a victim/adversary information gap, and (c) label information flowing
through query access — all preserved.  See DESIGN.md §2 for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Dataset", "SyntheticCIFAR10", "batch_iterator", "train_adversary_split"]

IMAGE_SHAPE = (3, 32, 32)
NUM_CLASSES = 10


@dataclass
class Dataset:
    """A labelled image set: ``images`` (N,3,32,32) float32 in [0,1]."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have equal length")
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.images[indices], self.labels[indices])

    def split(self, fraction: float, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Shuffle-split into (first ``fraction``, remainder)."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])


def _low_frequency_field(
    rng: np.random.Generator, size: int, num_modes: int, amplitude: float
) -> np.ndarray:
    """Random smooth 2-D field built from a few low-frequency cosines."""
    ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    field = np.zeros((size, size))
    for _ in range(num_modes):
        fy, fx = rng.integers(1, 4, size=2)
        phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
        weight = rng.normal(0, amplitude)
        field += weight * np.cos(2 * np.pi * fy * ys + phase_y) * np.cos(
            2 * np.pi * fx * xs + phase_x
        )
    return field


class SyntheticCIFAR10:
    """Deterministic generator of a CIFAR-10-shaped synthetic dataset.

    Parameters
    ----------
    seed:
        Seed for the whole dataset (templates and samples).
    noise:
        Per-pixel Gaussian noise sigma.  Larger values make the task harder
        (more samples/epochs needed), smaller values make class templates
        easy to recover.
    distortion:
        Amplitude of the per-sample smooth distortion field.
    max_shift:
        Maximum absolute spatial shift (circular) in pixels.
    """

    def __init__(
        self,
        seed: int = 7,
        noise: float = 0.25,
        distortion: float = 0.35,
        max_shift: int = 3,
    ) -> None:
        self.seed = seed
        self.noise = noise
        self.distortion = distortion
        self.max_shift = max_shift
        template_rng = np.random.default_rng(seed)
        c, h, w = IMAGE_SHAPE
        self.templates = np.zeros((NUM_CLASSES, c, h, w), dtype=np.float64)
        for class_index in range(NUM_CLASSES):
            for channel in range(c):
                self.templates[class_index, channel] = _low_frequency_field(
                    template_rng, h, num_modes=6, amplitude=0.5
                )
        # Normalise templates to zero mean / unit max-abs per class.
        for class_index in range(NUM_CLASSES):
            t = self.templates[class_index]
            t -= t.mean()
            peak = np.abs(t).max()
            if peak > 0:
                t /= peak

    def sample(self, count: int, seed: int) -> Dataset:
        """Generate ``count`` labelled samples deterministically."""
        if count <= 0:
            raise ValueError("count must be positive")
        rng = np.random.default_rng((self.seed, seed))
        labels = rng.integers(0, NUM_CLASSES, size=count)
        c, h, w = IMAGE_SHAPE
        images = np.empty((count, c, h, w), dtype=np.float32)
        for index, label in enumerate(labels):
            base = self.templates[label].copy()
            shift_y, shift_x = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
            base = np.roll(base, (int(shift_y), int(shift_x)), axis=(1, 2))
            if self.distortion:
                warp = _low_frequency_field(rng, h, num_modes=3, amplitude=self.distortion)
                base += warp[None, :, :]
            base += rng.normal(0, self.noise, size=base.shape)
            images[index] = (0.5 + 0.5 * np.clip(base, -1.5, 1.5) / 1.5).astype(np.float32)
        return Dataset(images, labels)

    def standard_splits(
        self,
        train_size: int = 2000,
        test_size: int = 500,
    ) -> tuple[Dataset, Dataset]:
        """(train, test) with disjoint sample seeds, scaled-down CIFAR sizes."""
        return self.sample(train_size, seed=1), self.sample(test_size, seed=2)


def train_adversary_split(
    train: Dataset, victim_fraction: float = 0.9, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """The paper's split: 90% of the training set for the victim, 10% for
    the adversary's initial query seed (Section III-B.1)."""
    return train.split(victim_fraction, seed=seed)


def batch_iterator(
    dataset: Dataset,
    batch_size: int,
    *,
    shuffle: bool = True,
    seed: int = 0,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (images, labels) minibatches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(dataset))
    if shuffle:
        np.random.default_rng(seed).shuffle(indices)
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        yield dataset.images[chunk], dataset.labels[chunk]
