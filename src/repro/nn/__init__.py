"""Numpy deep-learning substrate: autograd, layers, models, training, data."""

from . import functional
from .data import Dataset, SyntheticCIFAR10, batch_iterator, train_adversary_split
from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    AvgPool2d,
    Module,
    ReLU,
    Sequential,
)
from .layers import set_init_rng, trace_dataflow
from .models import (
    LayerGeometry,
    MODEL_BUILDERS,
    build_model,
    mlp,
    model_geometry,
    probe_shapes,
    resnet18,
    resnet34,
    vgg16,
)
from .optim import Adam, CosineLR, Optimizer, SGD, StepLR
from .tensor import Tensor, no_grad
from .training import TrainReport, evaluate, fit, predict_labels, predict_logits, train_epoch

__all__ = [
    "functional",
    "Dataset",
    "SyntheticCIFAR10",
    "batch_iterator",
    "train_adversary_split",
    "BasicBlock",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "AvgPool2d",
    "Module",
    "ReLU",
    "Sequential",
    "set_init_rng",
    "trace_dataflow",
    "LayerGeometry",
    "MODEL_BUILDERS",
    "build_model",
    "mlp",
    "model_geometry",
    "probe_shapes",
    "resnet18",
    "resnet34",
    "vgg16",
    "Adam",
    "CosineLR",
    "Optimizer",
    "SGD",
    "StepLR",
    "Tensor",
    "no_grad",
    "TrainReport",
    "evaluate",
    "fit",
    "predict_labels",
    "predict_logits",
    "train_epoch",
]
