"""Training and evaluation loops for the numpy framework."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from . import functional as F
from .data import Dataset, batch_iterator
from .layers import Module
from .optim import Optimizer
from .tensor import Tensor, no_grad

__all__ = ["TrainReport", "train_epoch", "evaluate", "fit", "predict_logits", "predict_labels"]


@dataclass
class TrainReport:
    """Per-epoch loss/accuracy history from :func:`fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    eval_accuracy: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.eval_accuracy[-1] if self.eval_accuracy else float("nan")


def train_epoch(
    model: Module,
    dataset: Dataset,
    optimizer: Optimizer,
    *,
    batch_size: int = 64,
    seed: int = 0,
    label_smoothing: float = 0.0,
) -> tuple[float, float]:
    """One pass over ``dataset``; returns (mean loss, accuracy)."""
    model.train()
    total_loss = 0.0
    correct = 0
    seen = 0
    for images, labels in batch_iterator(dataset, batch_size, seed=seed):
        x = Tensor(images.astype(np.float32))
        logits = model(x)
        loss = F.cross_entropy(logits, labels, label_smoothing=label_smoothing)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        batch = len(labels)
        total_loss += loss.item() * batch
        correct += int((logits.data.argmax(axis=1) == labels).sum())
        seen += batch
    return total_loss / max(seen, 1), correct / max(seen, 1)


def predict_logits(model: Module, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Forward-only logits for an image array (no graph construction)."""
    model.eval()
    outputs = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            x = Tensor(images[start : start + batch_size].astype(np.float32))
            outputs.append(model(x).data.copy())
    return np.concatenate(outputs, axis=0)


def predict_labels(model: Module, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Hard label predictions — what the paper's query interface exposes."""
    return predict_logits(model, images, batch_size).argmax(axis=1)


def evaluate(model: Module, dataset: Dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy on ``dataset``."""
    predictions = predict_labels(model, dataset.images, batch_size)
    return float((predictions == dataset.labels).mean())


def fit(
    model: Module,
    train_set: Dataset,
    optimizer: Optimizer,
    *,
    epochs: int,
    eval_set: Dataset | None = None,
    batch_size: int = 64,
    scheduler: object | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> TrainReport:
    """Train for ``epochs`` epochs, optionally evaluating each epoch."""
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    metrics = get_metrics()
    tracer = get_tracer()
    report = TrainReport()
    with metrics.timer("train.fit"), tracer.span(
        "train.fit", {"epochs": epochs, "batch_size": batch_size}
    ):
        for epoch in range(epochs):
            with tracer.span("train.epoch", {"epoch": epoch}) as span:
                loss, accuracy = train_epoch(
                    model, train_set, optimizer, batch_size=batch_size, seed=seed + epoch
                )
                metrics.count("train.epochs")
                if span:
                    span.set_attr("loss", round(loss, 6))
                    span.set_attr("accuracy", round(accuracy, 6))
            report.train_loss.append(loss)
            report.train_accuracy.append(accuracy)
            if eval_set is not None:
                report.eval_accuracy.append(evaluate(model, eval_set))
            if scheduler is not None:
                scheduler.step()
            if verbose:
                eval_txt = (
                    f" eval_acc={report.eval_accuracy[-1]:.3f}" if eval_set is not None else ""
                )
                print(f"epoch {epoch + 1}/{epochs} loss={loss:.4f} acc={accuracy:.3f}{eval_txt}")
    return report
